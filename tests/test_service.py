"""End-to-end service tests: an in-process daemon behind a real socket.

Each test boots a :class:`~repro.service.server.QuestService` on a Unix
socket (asyncio loop in a background thread — the same topology as a
real deployment, minus process isolation, which
``tests/test_service_kill.py`` covers) and drives it through the
synchronous :class:`~repro.service.client.ServiceClient`.

The headline contract: **served results are bit-identical to solo**
``run_quest`` — including under concurrent duplicate submissions, where
the shared substrate dedups blocks across jobs.
"""

from __future__ import annotations

import asyncio
import contextlib
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.algorithms import qft, tfim
from repro.circuits import circuit_to_qasm
from repro.core.quest import QuestConfig, run_quest
from repro.exceptions import AdmissionRejected, ServiceError
from repro.service import QuestService, ServiceClient

FAST = dict(
    seed=11,
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)


def _config() -> QuestConfig:
    return QuestConfig(**FAST, workers=1, cache=True)


def _payload_signature(payload: dict) -> dict:
    return {
        "choices": payload["choices"],
        "bounds": payload["bounds"],
        "cnot_counts": payload["cnot_counts"],
        "circuits": payload["circuits"],
    }


def _solo_signature(result) -> dict:
    return {
        "choices": [[int(i) for i in c] for c in result.selection.choices],
        "bounds": [float(b) for b in result.selection.bounds],
        "cnot_counts": result.cnot_counts,
        "circuits": [circuit_to_qasm(c) for c in result.circuits],
    }


@contextlib.contextmanager
def running_service(ledger_dir, **kwargs):
    """Boot a daemon on a short /tmp socket; always drain on exit.

    The socket lives in its own mkdtemp under /tmp (not pytest's
    tmp_path) because ``AF_UNIX`` paths are capped at ~108 bytes.
    """
    sock_dir = tempfile.mkdtemp(dir="/tmp", prefix="qsvc-")
    socket_path = str(Path(sock_dir) / "s.sock")
    kwargs.setdefault("config", _config())
    service = QuestService(socket_path, ledger_dir, **kwargs)
    thread = threading.Thread(
        target=lambda: asyncio.run(service.run()), daemon=True
    )
    thread.start()
    client = ServiceClient(socket_path)
    try:
        client.wait_until_ready(timeout=30.0)
        yield service, client
    finally:
        with contextlib.suppress(ServiceError):
            client.shutdown()
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "daemon failed to shut down cleanly"


@pytest.fixture(scope="module")
def solo_reference():
    config = _config()
    return {
        "tfim": run_quest(tfim(4, steps=2), config),
        "qft": run_quest(qft(4), config),
    }


def _assert_no_stranded(client: ServiceClient) -> None:
    assert client.status()["stranded_joiners"] == 0


# ----------------------------------------------------------------------
# Bit-identity
# ----------------------------------------------------------------------
def test_served_results_bit_identical_to_solo(tmp_path, solo_reference):
    with running_service(tmp_path / "ledger") as (service, client):
        for name, circuit in (("tfim", tfim(4, steps=2)), ("qft", qft(4))):
            payload = client.submit_and_wait(
                circuit_to_qasm(circuit), timeout=300.0
            )
            assert not payload["degraded"]
            assert _payload_signature(payload) == _solo_signature(
                solo_reference[name]
            )
            # The Σε certificate travels with the ensemble.
            assert len(payload["claims"]) == len(payload["circuits"])
            for manifest, bound in zip(payload["claims"], payload["bounds"]):
                assert manifest["total_epsilon"] == pytest.approx(bound)
        _assert_no_stranded(client)


def test_concurrent_duplicate_submissions_dedupe_and_stay_identical(
    tmp_path, solo_reference
):
    """Four copies of one circuit at once: every result bit-identical to
    solo, and the shared substrate serves duplicates without fresh
    synthesis (cache hits and/or in-flight joins)."""
    qasm = circuit_to_qasm(tfim(4, steps=2))
    want = _solo_signature(solo_reference["tfim"])
    with running_service(
        tmp_path / "ledger", max_concurrency=2
    ) as (service, client):
        with ThreadPoolExecutor(max_workers=4) as pool:
            payloads = list(
                pool.map(
                    lambda _: client.submit_and_wait(qasm, timeout=300.0),
                    range(4),
                )
            )
        for payload in payloads:
            assert _payload_signature(payload) == want
        reused = sum(
            p["cache_hits"] + p["dedup_joins"] for p in payloads
        )
        assert reused > 0, "duplicate jobs never shared substrate work"
        _assert_no_stranded(client)


# ----------------------------------------------------------------------
# Admission control and backpressure
# ----------------------------------------------------------------------
def test_overload_yields_structured_queue_full_rejections(tmp_path):
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_service(
        tmp_path / "ledger", capacity=1, max_concurrency=1
    ) as (service, client):
        accepted, rejections = [], []
        for _ in range(6):
            try:
                accepted.append(client.submit(qasm))
            except AdmissionRejected as exc:
                rejections.append(exc)
        assert rejections, "saturating a capacity-1 queue never rejected"
        for exc in rejections:
            assert exc.reason == "queue_full"
            assert exc.capacity == 1
            assert exc.queue_depth is not None
        # Accepted jobs all complete despite the overload.
        for job_id in accepted:
            reply = client.wait(job_id, timeout=300.0)
            assert reply["state"] == "done"
        status = client.status()
        assert status["rejected"]["queue_full"] == len(rejections)
        _assert_no_stranded(client)


def test_tenant_quota_isolates_noisy_tenants(tmp_path):
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_service(
        tmp_path / "ledger",
        capacity=8,
        max_concurrency=1,
        tenant_quotas={"noisy": 1},
    ) as (service, client):
        jobs = [client.submit(qasm, tenant="noisy")]  # occupies the slot
        jobs.append(client.submit(qasm, tenant="noisy"))  # fills the quota
        with pytest.raises(AdmissionRejected) as excinfo:
            client.submit(qasm, tenant="noisy")
        assert excinfo.value.reason == "tenant_quota"
        # A quiet tenant still gets in.
        jobs.append(client.submit(qasm, tenant="quiet"))
        for job_id in jobs:
            assert client.wait(job_id, timeout=300.0)["state"] == "done"
        _assert_no_stranded(client)


def test_invalid_requests_are_rejected_structurally(tmp_path):
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_service(tmp_path / "ledger") as (service, client):
        for bad_submit in (
            lambda: client.submit(""),
            lambda: client.submit(qasm, config={"no_such_field": 1}),
            lambda: client.submit(qasm, config={"workers": 8}),
            lambda: client.submit(qasm, deadline_seconds="soon"),
        ):
            with pytest.raises(AdmissionRejected) as excinfo:
                bad_submit()
            assert excinfo.value.reason == "invalid_request"
        # Unparseable QASM is admitted (content is inspected in the job,
        # not the accept path) but fails structurally, not silently.
        job_id = client.submit("OPENQASM 2.0;\nnot a gate;")
        reply = client.wait(job_id, timeout=60.0)
        assert reply["state"] == "failed"
        assert reply["error"]["kind"] == "invalid_request"


def test_wait_for_unknown_job_is_an_error(tmp_path):
    with running_service(tmp_path / "ledger") as (service, client):
        with pytest.raises(ServiceError, match="unknown job"):
            client.wait("job999999", timeout=1.0)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def test_expired_deadline_fails_structurally_without_compiling(tmp_path):
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_service(tmp_path / "ledger") as (service, client):
        job_id = client.submit(qasm, deadline_seconds=0.0)
        reply = client.wait(job_id, timeout=60.0)
        assert reply["state"] == "failed"
        assert reply["error"]["kind"] == "deadline_expired"


def test_generous_deadline_does_not_perturb_results(
    tmp_path, solo_reference
):
    """The deadline contextvar wraps the pipeline; an ample budget must
    leave the selection untouched (deadline checks never touch RNGs)."""
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_service(tmp_path / "ledger") as (service, client):
        payload = client.submit_and_wait(
            qasm, deadline_seconds=600.0, timeout=300.0
        )
        assert _payload_signature(payload) == _solo_signature(
            solo_reference["tfim"]
        )


# ----------------------------------------------------------------------
# Circuit breaker and degradation
# ----------------------------------------------------------------------
def test_open_breaker_degrades_to_flagged_exact_reassembly(
    tmp_path, solo_reference
):
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_service(tmp_path / "ledger") as (service, client):
        for _ in range(service.breaker.failure_threshold):
            service.breaker.record_failure()
        assert service.breaker.state == "open"
        payload = client.submit_and_wait(qasm, timeout=120.0)
        # Flagged, correct, conservative: the exact reassembly carries
        # zero epsilon claims and the baseline CNOT count.
        assert payload["degraded"] is True
        assert payload["cnot_counts"] == [payload["original_cnot_count"]]
        assert payload["claims"][0]["total_epsilon"] == 0.0
        assert payload["bounds"] == [0.0]
        status = client.status()
        assert status["degraded_jobs"] == 1
        assert status["breaker"]["state"] == "open"
        # Recovery: a success closes the breaker and full fidelity is back.
        service.breaker.record_success()
        payload = client.submit_and_wait(qasm, timeout=300.0)
        assert payload["degraded"] is False
        assert _payload_signature(payload) == _solo_signature(
            solo_reference["tfim"]
        )
        _assert_no_stranded(client)


# ----------------------------------------------------------------------
# Warm restart (in-process variant; process-kill in test_service_kill)
# ----------------------------------------------------------------------
def test_warm_restart_answers_old_jobs_and_resumes_numbering(
    tmp_path, solo_reference
):
    qasm = circuit_to_qasm(tfim(4, steps=2))
    ledger_dir = tmp_path / "ledger"
    with running_service(ledger_dir) as (service, client):
        done_id = client.submit(qasm)
        assert client.wait(done_id, timeout=300.0)["state"] == "done"
    # New daemon, same ledger: terminal jobs stay answerable, fresh ids
    # never collide with recovered ones.
    with running_service(ledger_dir) as (service, client):
        reply = client.wait(done_id, timeout=10.0)
        assert reply["state"] == "done"
        assert _payload_signature(reply["result"]) == _solo_signature(
            solo_reference["tfim"]
        )
        new_id = client.submit(qasm)
        assert new_id != done_id
        assert client.wait(new_id, timeout=300.0)["state"] == "done"
        _assert_no_stranded(client)


def test_shutdown_drains_and_preserves_queued_jobs(tmp_path):
    """Jobs still queued at drain survive in the ledger as pending and
    complete after the next start — a graceful stop loses nothing."""
    qasm = circuit_to_qasm(tfim(4, steps=2))
    ledger_dir = tmp_path / "ledger"
    with running_service(
        ledger_dir, capacity=8, max_concurrency=1
    ) as (service, client):
        job_ids = [client.submit(qasm) for _ in range(3)]
        client.shutdown()  # drains: some jobs likely still queued
    with running_service(ledger_dir, max_concurrency=2) as (service, client):
        for job_id in job_ids:
            reply = client.wait(job_id, timeout=300.0)
            assert reply["state"] == "done", reply
        _assert_no_stranded(client)


# ----------------------------------------------------------------------
# Status endpoint
# ----------------------------------------------------------------------
def test_status_reports_health_and_accounting(tmp_path):
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_service(tmp_path / "ledger") as (service, client):
        status = client.status()
        assert status["healthy"] and status["ready"]
        assert status["queue_depth"] == 0
        assert status["capacity"] == 64
        assert status["breaker"]["state"] == "closed"
        assert status["ledger"]["corrupt_entries"] == 0
        client.submit_and_wait(qasm, tenant="alice", timeout=300.0)
        status = client.status()
        assert status["jobs_by_state"]["done"] == 1
        assert status["tenants"]["alice"]["dispatched"] == 1
        counters = status["metrics"]["counters"]
        assert counters["service.jobs_admitted"] == 1
        assert counters["service.jobs_done"] == 1
        histograms = status["metrics"]["histograms"]
        assert "service.latency_seconds.alice" in histograms
        _assert_no_stranded(client)
