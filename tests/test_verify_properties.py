"""Property-based tests for the certification layer.

Three invariants hold for *any* circuit pair, so we let hypothesis pick
the circuits: the independent exact path agrees with the production
metric to near machine precision, the stimulus lower bound never claims
more distance than actually exists, and the stimulus evidence is a pure
function of its seed.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.linalg.unitary import hs_distance
from repro.verify import (
    certify_equivalence,
    circuit_hs_distance,
    independent_unitary,
    stimulus_evidence,
)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 3),
    depth=st.integers(1, 5),
)
def test_independent_distance_matches_production_metric(seed, n, depth):
    """Exact HS agreement to 1e-10 between the two contraction paths."""
    a = random_circuit(n, depth, rng=seed)
    b = random_circuit(n, depth, rng=seed + 1)
    via_production = hs_distance(a.unitary(), b.unitary())
    via_certifier = circuit_hs_distance(a, b)
    assert abs(via_certifier - via_production) < 1e-10


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 3),
    depth=st.integers(1, 4),
)
def test_stimulus_bound_never_exceeds_exact_distance(seed, n, depth):
    """Probing can only *under*-estimate distance, never overshoot it."""
    a = random_circuit(n, depth, rng=seed)
    b = random_circuit(n, depth, rng=seed + 7)
    exact = circuit_hs_distance(a, b)
    evidence = stimulus_evidence(
        a, b, haar_stimuli=8, basis_stimuli=4, rng=seed
    )
    assert evidence.distance_bound <= exact + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 3),
)
def test_stimulus_evidence_is_deterministic_in_the_seed(seed, n):
    a = random_circuit(n, 3, rng=seed)
    b = random_circuit(n, 3, rng=seed + 13)
    first = stimulus_evidence(a, b, haar_stimuli=6, basis_stimuli=3, rng=seed)
    second = stimulus_evidence(a, b, haar_stimuli=6, basis_stimuli=3, rng=seed)
    assert first == second


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 3),
    depth=st.integers(1, 4),
)
def test_a_circuit_always_certifies_against_itself(seed, n, depth):
    circuit = random_circuit(n, depth, rng=seed)
    report = certify_equivalence(circuit, circuit, budget=0.0)
    assert report.ok


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 3),
    depth=st.integers(1, 4),
)
def test_independent_unitary_is_unitary(seed, n, depth):
    import numpy as np

    circuit = random_circuit(n, depth, rng=seed)
    matrix = independent_unitary(circuit)
    dim = 2**n
    assert np.allclose(matrix.conj().T @ matrix, np.eye(dim), atol=1e-10)
