"""Tests for two-qubit local invariants and CNOT-class estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, gate_matrix, random_unitary
from repro.exceptions import ReproError
from repro.linalg import (
    MAGIC,
    decompose_tensor_product,
    estimated_cnot_class,
    is_tensor_product,
    magic_rep,
    makhlin_invariants,
)


def _dressed(rng, cnots: int) -> np.ndarray:
    """Random local gates around ``cnots`` alternating CNOTs."""
    circuit = Circuit(2)
    placements = [(0, 1), (1, 0), (0, 1)]
    for q in range(2):
        circuit.u3(*rng.uniform(-3, 3, 3), q)
    for i in range(cnots):
        circuit.cx(*placements[i])
        for q in range(2):
            circuit.u3(*rng.uniform(-3, 3, 3), q)
    return circuit.unitary()


def test_magic_basis_is_unitary():
    assert np.allclose(MAGIC.conj().T @ MAGIC, np.eye(4), atol=1e-12)


def test_magic_rep_maps_locals_to_orthogonal(rng):
    a, b = random_unitary(2, rng), random_unitary(2, rng)
    rep = magic_rep(np.kron(b, a))
    assert np.allclose(rep.imag @ rep.real.T, rep.real @ rep.imag.T, atol=1e-8)
    # An SO(4) matrix (up to phase) satisfies M M^T proportional to I.
    product = rep @ rep.T
    assert np.allclose(product, product[0, 0] * np.eye(4), atol=1e-7)


def test_makhlin_invariants_identity():
    g1, g2 = makhlin_invariants(np.eye(4, dtype=complex))
    assert g1 == pytest.approx(1.0, abs=1e-9)
    assert g2 == pytest.approx(3.0, abs=1e-9)


def test_makhlin_invariants_cnot():
    g1, g2 = makhlin_invariants(gate_matrix("cx"))
    assert abs(g1) == pytest.approx(0.0, abs=1e-9)
    assert g2 == pytest.approx(1.0, abs=1e-9)


def test_makhlin_invariants_swap():
    g1, g2 = makhlin_invariants(gate_matrix("swap"))
    assert g1.real == pytest.approx(-1.0, abs=1e-9)
    assert g2 == pytest.approx(-3.0, abs=1e-9)


def test_makhlin_local_invariance(rng):
    base = gate_matrix("cx")
    locals_ = np.kron(random_unitary(2, rng), random_unitary(2, rng))
    g_base = makhlin_invariants(base)
    g_dressed = makhlin_invariants(locals_ @ base)
    assert abs(g_base[0]) == pytest.approx(abs(g_dressed[0]), abs=1e-8)
    assert g_base[1] == pytest.approx(g_dressed[1], abs=1e-8)


def test_tensor_product_detection(rng):
    a, b = random_unitary(2, rng), random_unitary(2, rng)
    assert is_tensor_product(np.kron(b, a))
    assert not is_tensor_product(gate_matrix("cx"))


def test_tensor_product_split(rng):
    for _ in range(10):
        a, b = random_unitary(2, rng), random_unitary(2, rng)
        u = np.kron(b, a)
        a2, b2, phase = decompose_tensor_product(u)
        assert np.allclose(phase * np.kron(b2, a2), u, atol=1e-8)


def test_tensor_split_rejects_entangling():
    with pytest.raises(ReproError):
        decompose_tensor_product(gate_matrix("cx"))


@pytest.mark.parametrize("cnots", [0, 1, 2])
def test_cnot_class_of_dressed_circuits(rng, cnots):
    for _ in range(5):
        u = _dressed(rng, cnots)
        assert estimated_cnot_class(u) == cnots


def test_cnot_class_named_gates():
    assert estimated_cnot_class(gate_matrix("cx")) == 1
    assert estimated_cnot_class(gate_matrix("cz")) == 1
    assert estimated_cnot_class(gate_matrix("swap")) == 3
    assert estimated_cnot_class(np.eye(4, dtype=complex)) == 0


def test_cnot_class_random_is_three(rng):
    # Haar-random unitaries almost surely need 3 CNOTs.
    classes = [estimated_cnot_class(random_unitary(4, rng)) for _ in range(10)]
    assert all(c == 3 for c in classes)


def test_magic_rep_rejects_bad_input():
    with pytest.raises(ReproError):
        magic_rep(np.eye(2))
