"""Tests for the Algorithm-1 objective function."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool, Candidate
from repro.exceptions import SelectionError
from repro.partition.blocks import CircuitBlock


def _phase_circuit(angle: float) -> Circuit:
    circuit = Circuit(2)
    circuit.cx(0, 1)
    circuit.rz(angle, 1)
    circuit.cx(0, 1)
    return circuit


def _make_pool(index: int, qubits: tuple[int, int], angles_cnots) -> BlockPool:
    original = _phase_circuit(0.5)
    block = CircuitBlock(index=index, qubits=qubits, circuit=original)
    original_unitary = original.unitary()
    pool = BlockPool(block=block, original_unitary=original_unitary)
    from repro.linalg import hs_distance

    for angle, cnots in angles_cnots:
        circuit = _phase_circuit(angle)
        unitary = circuit.unitary()
        pool.candidates.append(
            Candidate(
                circuit=circuit,
                unitary=unitary,
                distance=hs_distance(unitary, original_unitary),
                cnot_count=cnots,
            )
        )
    return pool


@pytest.fixture
def pools():
    # Candidate 0: the original (distance 0, 2 CNOTs).
    # Candidate 1: slight over-rotation, 1 CNOT (cheap approximation).
    # Candidate 2: slight under-rotation, 1 CNOT (dissimilar to 1).
    spec = [(0.5, 2), (0.8, 1), (0.2, 1)]
    return [
        _make_pool(0, (0, 1), spec),
        _make_pool(1, (2, 3), spec),
    ]


def _objective(pools, threshold=1.0, weight=0.5):
    return SelectionObjective(
        pools=pools,
        threshold=threshold,
        original_cnot_count=4,
        weight=weight,
    )


def test_first_sample_scored_by_cnots_only(pools):
    objective = _objective(pools)
    cheap = np.array([1.0, 1.0])
    expensive = np.array([0.0, 0.0])
    assert objective(cheap) == pytest.approx(2 / 4)
    assert objective(expensive) == pytest.approx(4 / 4)


def test_threshold_rejection(pools):
    objective = _objective(pools, threshold=1e-6)
    # Any choice with nonzero distance breaches a tiny threshold.
    assert objective(np.array([1.0, 1.0])) == 1.0
    # The exact original always passes the bound check (its normalized
    # CNOT score is 1.0 by definition, but it is feasible).
    assert objective.choice_bound(np.array([0, 0])) <= 1e-6


def test_similarity_term_activates(pools):
    objective = _objective(pools)
    first = objective.decode(np.array([1.0, 1.0]))
    objective.selected.append(first)
    same_again = objective(np.array([1.0, 1.0]))
    dissimilar = objective(np.array([2.0, 2.0]))
    # Re-proposing the identical choice is penalized by similarity 1.0.
    assert same_again == pytest.approx(0.5 * 1.0 + 0.5 * 0.5)
    assert dissimilar < same_again


def test_decode_floors_and_clips(pools):
    objective = _objective(pools)
    assert list(objective.decode(np.array([0.9, 2.7]))) == [0, 2]
    assert list(objective.decode(np.array([-3.0, 99.0]))) == [0, 2]


def test_bounds_cover_candidates(pools):
    objective = _objective(pools)
    bounds = objective.bounds()
    assert len(bounds) == 2
    assert bounds[0][0] == 0.0
    assert bounds[0][1] < 3.0


def test_choice_accounting(pools):
    objective = _objective(pools)
    choice = np.array([0, 2])
    assert objective.choice_cnot_count(choice) == 3
    assert objective.choice_bound(choice) == pytest.approx(
        pools[1].candidates[2].distance
    )


def test_validation():
    with pytest.raises(SelectionError):
        SelectionObjective(pools=[], threshold=1.0, original_cnot_count=4)
