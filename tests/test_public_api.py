"""Smoke tests for the public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("name", repro.__all__)
def test_top_level_exports_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize(
    "module",
    [
        "repro.circuits",
        "repro.linalg",
        "repro.sim",
        "repro.noise",
        "repro.transpile",
        "repro.partition",
        "repro.synthesis",
        "repro.core",
        "repro.algorithms",
        "repro.metrics",
        "repro.parallel",
        "repro.resilience",
        "repro.observability",
        "repro.store",
    ],
)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert getattr(mod, name) is not None, f"{module}.{name}"


def test_exception_hierarchy():
    from repro import exceptions

    subclasses = [
        exceptions.CircuitError,
        exceptions.GateError,
        exceptions.QasmError,
        exceptions.SimulationError,
        exceptions.NoiseModelError,
        exceptions.TranspilerError,
        exceptions.PartitionError,
        exceptions.SynthesisError,
        exceptions.SelectionError,
        exceptions.ValidationError,
        exceptions.CheckpointError,
        exceptions.BlockTimeoutError,
        exceptions.StoreError,
    ]
    for exc in subclasses:
        assert issubclass(exc, exceptions.ReproError)
        assert issubclass(exc, Exception)
