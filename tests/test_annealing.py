"""Tests for the dual-annealing selection engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core.annealing import select_approximations
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool, Candidate
from repro.exceptions import SelectionError
from repro.linalg import hs_distance
from repro.partition.blocks import CircuitBlock


def _phase_circuit(angle: float, cnots: int = 1) -> Circuit:
    circuit = Circuit(2)
    circuit.cx(0, 1)
    circuit.rz(angle, 1)
    circuit.cx(0, 1)
    for _ in range(cnots - 2):
        pass
    return circuit


def _pool(index: int, qubits, angles_cnots) -> BlockPool:
    original = _phase_circuit(0.5)
    block = CircuitBlock(index=index, qubits=qubits, circuit=original)
    original_unitary = original.unitary()
    pool = BlockPool(block=block, original_unitary=original_unitary)
    for angle, cnots in angles_cnots:
        circuit = _phase_circuit(angle)
        unitary = circuit.unitary()
        pool.candidates.append(
            Candidate(
                circuit=circuit,
                unitary=unitary,
                distance=hs_distance(unitary, original_unitary),
                cnot_count=cnots,
            )
        )
    return pool


def _objective(threshold=1.0, blocks=2, spec=None):
    spec = spec or [(0.5, 2), (0.8, 1), (0.2, 1)]
    pools = [
        _pool(i, (2 * i, 2 * i + 1), spec) for i in range(blocks)
    ]
    return SelectionObjective(
        pools=pools, threshold=threshold, original_cnot_count=2 * blocks
    )


def test_first_selection_minimizes_cnots():
    objective = _objective()
    result = select_approximations(objective, max_samples=1, seed=0)
    assert result.num_selected == 1
    assert result.cnot_counts[0] == 2  # one 1-CNOT candidate per block


def test_selection_collects_dissimilar_samples():
    objective = _objective()
    result = select_approximations(objective, max_samples=8, seed=0)
    assert result.num_selected >= 2
    # No duplicates among selections.
    seen = {tuple(c) for c in result.choices}
    assert len(seen) == result.num_selected


def test_selection_stops_on_duplicate():
    # With a single candidate per block only one selection is possible.
    objective = _objective(spec=[(0.5, 2)])
    result = select_approximations(objective, max_samples=8, seed=0)
    assert result.num_selected == 1
    assert result.annealer_runs == 2  # second run returned a duplicate


def test_infeasible_threshold_raises():
    # Threshold below zero rejects even the exact original.
    objective = _objective(threshold=-1.0)
    with pytest.raises(SelectionError):
        select_approximations(objective, max_samples=4, seed=0)


def test_max_samples_respected():
    objective = _objective(blocks=3)
    result = select_approximations(objective, max_samples=2, seed=0)
    assert result.num_selected <= 2


def test_bounds_and_objectives_recorded():
    objective = _objective()
    result = select_approximations(objective, max_samples=4, seed=0)
    assert len(result.bounds) == result.num_selected
    assert len(result.objective_values) == result.num_selected
    for bound in result.bounds:
        assert bound <= objective.threshold


def test_annealer_path_matches_exhaustive():
    # Force the dual-annealing path by disabling exhaustive search; it
    # should find the same first (lowest-CNOT) selection.
    objective_a = _objective()
    exact = select_approximations(
        objective_a, max_samples=1, seed=0, exhaustive_cutoff=512
    )
    objective_b = _objective()
    annealed = select_approximations(
        objective_b, max_samples=1, seed=0, exhaustive_cutoff=0, maxiter=200
    )
    assert exact.cnot_counts[0] == annealed.cnot_counts[0]


def test_bad_max_samples():
    with pytest.raises(SelectionError):
        select_approximations(_objective(), max_samples=0)
