"""Guard the single-source-of-truth rule for numerical tolerances.

Modules that have been converted to :mod:`repro.metrics.tolerances`
must not grow new inline scientific-notation literals (``1e-6`` and
friends) — every tolerance they use has to be imported from the shared
module so a future retuning happens in exactly one place.
"""

from __future__ import annotations

import io
import re
import tokenize
from pathlib import Path

import pytest

from repro.metrics import tolerances

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules already converted to the shared tolerance constants.  Add a
#: module here once its literals are hoisted; never remove one.
CONVERTED_MODULES = [
    "core/bounds.py",
    "metrics/distances.py",
    "resilience/validation.py",
    "sim/statevector.py",
    "verify/__init__.py",
    "verify/certifier.py",
    "verify/independent.py",
]

#: Scientific notation only — matches ``1e-6``/``2.5E+3`` but not hex
#: literals like ``0xCE27`` (whose digits happen to contain an ``e``).
_SCIENTIFIC = re.compile(r"^[0-9][0-9_.]*[eE][-+]?[0-9]+$")


def _scientific_literals(path: Path) -> list[str]:
    found = []
    stream = io.StringIO(path.read_text())
    for token in tokenize.generate_tokens(stream.readline):
        if token.type == tokenize.NUMBER and _SCIENTIFIC.match(token.string):
            found.append(f"{path.name}:{token.start[0]}: {token.string}")
    return found


@pytest.mark.parametrize("module", CONVERTED_MODULES)
def test_converted_modules_have_no_inline_tolerances(module):
    strays = _scientific_literals(SRC / module)
    assert not strays, (
        "inline scientific-notation literals found; import them from "
        "repro.metrics.tolerances instead:\n" + "\n".join(strays)
    )


def test_tolerances_module_is_the_single_source():
    # the shared module itself is where the literals live
    assert _scientific_literals(SRC / "metrics" / "tolerances.py")


def test_every_exported_tolerance_is_a_positive_float():
    for name in tolerances.__all__:
        value = getattr(tolerances, name)
        assert isinstance(value, float), name
        assert 0 < value < 1, name


def test_validation_aliases_point_at_the_shared_constants():
    from repro.resilience import validation

    assert validation.DEFAULT_UNITARITY_TOL is tolerances.UNITARITY_TOL
    assert validation.DEFAULT_DISTANCE_TOL is tolerances.DISTANCE_CONSISTENCY_TOL
