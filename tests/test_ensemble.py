"""Tests for ensemble output averaging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core import ensemble_distribution
from repro.exceptions import SelectionError
from repro.noise import NoiseModel, run_density
from repro.sim import ideal_distribution


def _rx_circuit(angle: float) -> Circuit:
    circuit = Circuit(1)
    circuit.rx(angle, 0)
    return circuit


def test_empty_ensemble_rejected():
    with pytest.raises(SelectionError):
        ensemble_distribution([])


def test_single_circuit_is_its_distribution(bell_circuit):
    assert np.allclose(
        ensemble_distribution([bell_circuit]),
        ideal_distribution(bell_circuit),
    )


def test_symmetric_over_under_rotation_averages_out():
    # RX(t +/- d) outputs average close to RX(t)'s output: the Fig. 6
    # mechanism in one dimension.
    target = _rx_circuit(1.0)
    truth = ideal_distribution(target)
    over = _rx_circuit(1.3)
    under = _rx_circuit(0.7)
    averaged = ensemble_distribution([over, under])
    single_error = np.abs(ideal_distribution(over) - truth).sum()
    averaged_error = np.abs(averaged - truth).sum()
    assert averaged_error < single_error


def test_custom_runner_used(bell_circuit):
    noise = NoiseModel.from_noise_level(0.02)
    noisy = ensemble_distribution(
        [bell_circuit], runner=lambda c: run_density(c, noise)
    )
    assert not np.allclose(noisy, ideal_distribution(bell_circuit))
    assert noisy.sum() == pytest.approx(1.0)


def test_normalization(rng):
    from repro.circuits import random_circuit

    circuits = [random_circuit(3, 3, rng=rng) for _ in range(4)]
    out = ensemble_distribution(circuits)
    assert out.sum() == pytest.approx(1.0)
    assert np.all(out >= 0.0)
