"""Unit tests for the sharded multi-tenant artifact store."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import StoreError
from repro.store import (
    DEFAULT_NAMESPACE,
    ENTRY_SUFFIX,
    SHARD_CHARS,
    TMP_SUFFIX,
    ArtifactStore,
    namespace_for_tenant,
    shard_of,
    validate_namespace,
)

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "07" + "c" * 62


def _age(store, key, mtime):
    os.utime(store.path_for(key), (mtime, mtime))


# ----------------------------------------------------------------------
# Namespace rules
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name", ["default", "tenant-a", "A.b_c-9", "x", "a" * 64]
)
def test_valid_namespaces(name):
    assert validate_namespace(name) == name


@pytest.mark.parametrize(
    "name",
    ["", ".", "..", "../up", "a/b", "a\\b", "-lead", ".hidden", "a" * 65,
     "sp ace", "nul\0"],
)
def test_invalid_namespaces_rejected(name):
    with pytest.raises(StoreError, match="invalid store namespace"):
        validate_namespace(name)


@pytest.mark.parametrize(
    ("tenant", "expected"),
    [
        ("alice", "alice"),
        ("team/blue", "team_blue"),
        ("..sneaky", "sneaky"),
        ("--", DEFAULT_NAMESPACE),
        ("", DEFAULT_NAMESPACE),
        (None, DEFAULT_NAMESPACE),
        # The leading non-alphanumeric is stripped after substitution,
        # then the remainder is capped at 64 characters.
        ("Ä" + "x" * 70, "x" * 64),
    ],
)
def test_namespace_for_tenant(tenant, expected):
    derived = namespace_for_tenant(tenant)
    assert derived == expected
    # Whatever comes out is always itself valid.
    assert validate_namespace(derived) == derived


def test_namespace_for_tenant_is_deterministic():
    assert namespace_for_tenant("team/blue") == namespace_for_tenant(
        "team/blue"
    )


# ----------------------------------------------------------------------
# Sharded layout
# ----------------------------------------------------------------------
def test_shard_of_uses_key_prefix():
    assert shard_of(KEY_A) == "a" * SHARD_CHARS
    assert shard_of("ABCD" + "0" * 60) == "ab"
    assert shard_of("f") == "f0"  # short keys are padded, not crashed


def test_publish_lands_in_shard_directory(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.publish(KEY_C, b"payload")
    expected = (
        tmp_path / DEFAULT_NAMESPACE / "07" / f"{KEY_C}{ENTRY_SUFFIX}"
    )
    assert store.path_for(KEY_C) == expected
    assert expected.read_bytes() == b"payload"
    # No temp files linger after a successful publish.
    assert not list(tmp_path.rglob(f"*{TMP_SUFFIX}"))


def test_load_roundtrip_and_counters(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.load(KEY_A) is None
    store.publish(KEY_A, b"blob")
    assert store.load(KEY_A) == b"blob"
    assert store.counters() == {
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "publishes": 1,
        "orphans_swept": 0,
    }


def test_republish_overwrites_atomically(tmp_path):
    store = ArtifactStore(tmp_path)
    store.publish(KEY_A, b"old")
    store.publish(KEY_A, b"new")
    assert store.load(KEY_A) == b"new"
    assert store.entry_count() == 1


def test_cross_instance_reuse(tmp_path):
    ArtifactStore(tmp_path).publish(KEY_A, b"persisted")
    assert ArtifactStore(tmp_path).load(KEY_A) == b"persisted"


def test_namespaces_are_isolated(tmp_path):
    alice = ArtifactStore(tmp_path, namespace="alice")
    bob = ArtifactStore(tmp_path, namespace="bob")
    alice.publish(KEY_A, b"alice-data")
    assert bob.load(KEY_A) is None
    assert alice.load(KEY_A) == b"alice-data"
    assert bob.misses == 1 and alice.hits == 1


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError, match="max_entries"):
        ArtifactStore(tmp_path, max_entries=0)
    with pytest.raises(ValueError, match="grace_seconds"):
        ArtifactStore(tmp_path, grace_seconds=-1.0)
    with pytest.raises(StoreError):
        ArtifactStore(tmp_path, namespace="../evil")


# ----------------------------------------------------------------------
# Orphan sweep
# ----------------------------------------------------------------------
def test_open_sweeps_stale_orphans_only(tmp_path):
    store = ArtifactStore(tmp_path)
    shard_dir = store.path_for(KEY_A).parent
    shard_dir.mkdir(parents=True, exist_ok=True)
    stale = shard_dir / f".{KEY_A[:16]}-stale{TMP_SUFFIX}"
    stale.write_bytes(b"abandoned")
    os.utime(stale, (100, 100))
    fresh = shard_dir / f".{KEY_A[:16]}-fresh{TMP_SUFFIX}"
    fresh.write_bytes(b"mid-publish")

    reopened = ArtifactStore(tmp_path)
    assert not stale.exists()
    assert fresh.exists()
    assert reopened.orphans_swept == 1


def test_sweep_never_touches_entries(tmp_path):
    store = ArtifactStore(tmp_path)
    store.publish(KEY_A, b"entry")
    _age(store, KEY_A, 100)  # far older than any grace window
    reopened = ArtifactStore(tmp_path)
    assert reopened.load(KEY_A) == b"entry"
    assert reopened.orphans_swept == 0


# ----------------------------------------------------------------------
# Quota eviction
# ----------------------------------------------------------------------
def test_eviction_respects_grace_window(tmp_path):
    """Freshly published entries are never evicted, even over quota."""
    store = ArtifactStore(tmp_path, max_entries=1)
    store.publish(KEY_A, b"one")
    store.publish(KEY_B, b"two")
    # Both entries are younger than the grace window: the bound is
    # allowed to overshoot rather than delete what a concurrent
    # replica may be mid-publish on.
    assert store.evictions == 0
    assert store.load(KEY_A) == b"one"
    assert store.load(KEY_B) == b"two"


def test_eviction_targets_globally_oldest_across_shards(tmp_path):
    store = ArtifactStore(tmp_path)  # unbounded seeder: no early evicts
    keys = ["1" + "a" * 63, "2" + "b" * 63, "3" + "c" * 63]
    for index, key in enumerate(keys):
        store.publish(key, b"x")
        _age(store, key, 100 + index)
    # Keys live in three different shards; a fresh bounded instance
    # must still pick the globally-oldest victim.
    bounded = ArtifactStore(tmp_path, max_entries=2)
    assert bounded.evict() == 1
    assert not bounded.path_for(keys[0]).exists()
    assert bounded.path_for(keys[1]).exists()
    assert bounded.path_for(keys[2]).exists()


def test_touch_protects_from_eviction(tmp_path):
    store = ArtifactStore(tmp_path)
    keys = ["4" + "d" * 63, "5" + "e" * 63]
    for index, key in enumerate(keys):
        store.publish(key, b"x")
        _age(store, key, 100 + index)
    store.touch(keys[0])  # now young again -> keys[1] is the victim
    fresh = ArtifactStore(tmp_path, max_entries=1)
    assert fresh.evict() == 1
    assert fresh.path_for(keys[0]).exists()
    assert not fresh.path_for(keys[1]).exists()


def test_unbounded_store_never_evicts(tmp_path):
    store = ArtifactStore(tmp_path)
    for index in range(6):
        key = f"{index:x}" + "f" * 63
        store.publish(key, b"x")
        _age(store, key, 100 + index)
    assert store.evict() == 0
    assert store.entry_count() == 6


def test_quota_is_per_namespace(tmp_path):
    """One tenant filling its quota cannot evict another's entries."""
    bob = ArtifactStore(tmp_path, namespace="bob", max_entries=1)
    bob.publish(KEY_B, b"bob-data")
    _age(bob, KEY_B, 100)  # bob's single entry is old AND over no quota
    seeder = ArtifactStore(tmp_path, namespace="alice")
    for index in range(3):
        key = f"{index:x}" + "0" * 63
        seeder.publish(key, b"x")
        _age(seeder, key, 200 + index)
    alice = ArtifactStore(tmp_path, namespace="alice", max_entries=1)
    assert alice.evict() == 2
    assert bob.load(KEY_B) == b"bob-data"
    assert bob.evictions == 0


def test_entry_count_tracks_disk(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.entry_count() == 0
    store.publish(KEY_A, b"x")
    store.publish(KEY_B, b"y")
    assert store.entry_count() == 2
    # A second instance over the same dir agrees (full scan).
    assert ArtifactStore(tmp_path).entry_count() == 2
