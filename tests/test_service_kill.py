"""SIGKILL the daemon mid-job: a warm restart resumes from the ledger.

A child process runs a real daemon (socket, dispatcher, the works) with
a scheduled ``kill`` fault that fires partway through the submitted
job's synthesis.  The parent verifies the kill landed mid-compile — the
ledger holds the job in ``running`` with a partial per-job checkpoint
journal — then restarts a daemon on the *same ledger* with no injector
and asserts the job is re-admitted, resumes from the journal (nonzero
``checkpoint_hits``), and lands bit-identical to an uninterrupted solo
:func:`run_quest`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

import pytest

from repro.algorithms import heisenberg
from repro.circuits import circuit_to_qasm
from repro.core.quest import QuestConfig, run_quest
from repro.exceptions import ServiceError
from repro.service import JobLedger, QuestService, ServiceClient

FAST = dict(
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)
SEED = 5

# heisenberg(4, steps=1) runs 3 distinct synthesis jobs in block order;
# killing at job 2 leaves the service job's checkpoint journal holding
# blocks 0-1 and its ledger record stuck in "running".
KILL_BLOCK = 2

_CHILD_SCRIPT = """\
import asyncio
import sys
import threading

from repro.algorithms import heisenberg
from repro.circuits import circuit_to_qasm
from repro.core.quest import QuestConfig
from repro.resilience import FaultInjector, FaultSpec
from repro.service import QuestService, ServiceClient

config = QuestConfig(seed={seed}, **{fast!r})
injector = FaultInjector(specs=(FaultSpec("kill", {kill_block}, 0),))
service = QuestService(
    {socket_path!r},
    {ledger_dir!r},
    config=config,
    fault_injector=injector,
)


def submit():
    client = ServiceClient({socket_path!r})
    client.wait_until_ready(timeout=30.0)
    job_id = client.submit(circuit_to_qasm(heisenberg(4, steps=1)))
    print("SUBMITTED", job_id, flush=True)
    client.wait(job_id, timeout=300.0)


threading.Thread(target=submit, daemon=True).start()
asyncio.run(service.run())
print("UNREACHABLE: the kill fault did not fire", file=sys.stderr)
sys.exit(3)
"""


def _dump_artifacts(name: str, payload: dict) -> None:
    """Persist diagnostics for CI's failure-artifact upload."""
    artifact_dir = os.environ.get("FAULT_ARTIFACT_DIR")
    if not artifact_dir:
        return
    directory = Path(artifact_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_text(json.dumps(payload, indent=1))


@pytest.mark.slow
def test_daemon_resumes_killed_job_from_ledger_bit_identically(tmp_path):
    ledger_dir = tmp_path / "ledger"
    sock_dir = tempfile.mkdtemp(dir="/tmp", prefix="qkil-")
    script = tmp_path / "killed_daemon.py"
    script.write_text(
        _CHILD_SCRIPT.format(
            seed=SEED,
            fast=FAST,
            kill_block=KILL_BLOCK,
            socket_path=str(Path(sock_dir) / "child.sock"),
            ledger_dir=str(ledger_dir),
        )
    )
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    ledger = JobLedger(ledger_dir)
    records = ledger.load_all()
    journaled = []
    if records:
        journaled = sorted(
            p.name
            for p in ledger.checkpoint_dir(records[0].job_id).glob(
                "block_*.qckpt"
            )
        )
    _dump_artifacts(
        "sigkill_daemon_child",
        {
            "returncode": proc.returncode,
            "stdout": proc.stdout,
            "stderr": proc.stderr,
            "ledger_states": {r.job_id: r.state for r in records},
            "journaled": journaled,
        },
    )

    # The child died by SIGKILL mid-job, not by finishing or erroring.
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert "SUBMITTED" in proc.stdout
    job_id = proc.stdout.split()[1]
    # The ledger survived the crash: the job is durably mid-flight, with
    # a partial checkpoint journal short of the killed block.
    assert [r.job_id for r in records] == [job_id]
    assert records[0].state == "running"
    assert records[0].attempts == 1
    assert journaled, "no blocks were journaled before the kill"
    assert f"block_{KILL_BLOCK:04d}.qckpt" not in journaled

    # Warm restart on the same ledger, injector gone: the job re-admits,
    # resumes from its journal, and completes bit-identically to a solo
    # uninterrupted run.
    config = QuestConfig(seed=SEED, **FAST)
    service = QuestService(
        str(Path(sock_dir) / "restart.sock"), ledger_dir, config=config
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(service.run()), daemon=True
    )
    thread.start()
    client = ServiceClient(str(Path(sock_dir) / "restart.sock"))
    try:
        client.wait_until_ready(timeout=30.0)
        reply = client.wait(job_id, timeout=300.0)
        assert reply["state"] == "done", reply
        assert reply["attempts"] == 2
        payload = reply["result"]
        assert payload["checkpoint_hits"] == len(journaled)
        solo = run_quest(heisenberg(4, steps=1), config)
        assert payload["choices"] == [
            [int(i) for i in c] for c in solo.selection.choices
        ]
        assert payload["bounds"] == [float(b) for b in solo.selection.bounds]
        assert payload["cnot_counts"] == solo.cnot_counts
        assert payload["circuits"] == [
            circuit_to_qasm(c) for c in solo.circuits
        ]
        assert client.status()["stranded_joiners"] == 0
    finally:
        with contextlib.suppress(ServiceError):
            client.shutdown()
        thread.join(timeout=60.0)
    assert not thread.is_alive()
