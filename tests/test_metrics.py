"""Tests for output-distance metrics, including property-based checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.metrics import average_distributions, jsd, kl_divergence, tvd


def _random_dist(seed: int, dim: int = 8) -> np.ndarray:
    gen = np.random.default_rng(seed)
    raw = gen.random(dim) + 1e-9
    return raw / raw.sum()


def test_tvd_identical_zero():
    p = _random_dist(0)
    assert tvd(p, p) == pytest.approx(0.0)


def test_tvd_disjoint_is_one():
    p = np.array([1.0, 0.0])
    q = np.array([0.0, 1.0])
    assert tvd(p, q) == pytest.approx(1.0)


def test_tvd_known_value():
    p = np.array([0.5, 0.5])
    q = np.array([0.75, 0.25])
    assert tvd(p, q) == pytest.approx(0.25)


def test_jsd_identical_zero():
    p = _random_dist(1)
    assert jsd(p, p) == pytest.approx(0.0, abs=1e-8)


def test_jsd_disjoint_is_one():
    p = np.array([1.0, 0.0])
    q = np.array([0.0, 1.0])
    # With base-2 logs the JS distance of disjoint distributions is 1.
    assert jsd(p, q) == pytest.approx(1.0)


def test_kl_divergence_infinite_when_support_missing():
    p = np.array([0.5, 0.5])
    q = np.array([1.0, 0.0])
    assert kl_divergence(p, q) == float("inf")


def test_kl_divergence_zero_for_identical():
    p = _random_dist(2)
    assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)


def test_validation_rejects_shapes():
    with pytest.raises(ReproError):
        tvd(np.array([1.0]), np.array([0.5, 0.5]))


def test_validation_rejects_unnormalized():
    with pytest.raises(ReproError):
        tvd(np.array([0.5, 0.2]), np.array([0.5, 0.5]))


def test_validation_rejects_negative():
    with pytest.raises(ReproError):
        tvd(np.array([1.5, -0.5]), np.array([0.5, 0.5]))


def test_average_distributions():
    p = np.array([1.0, 0.0])
    q = np.array([0.0, 1.0])
    assert np.allclose(average_distributions([p, q]), [0.5, 0.5])


def test_average_empty_rejected():
    with pytest.raises(ReproError):
        average_distributions([])


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 10**6), b=st.integers(0, 10**6))
def test_tvd_metric_properties(a, b):
    p, q = _random_dist(a), _random_dist(b)
    d = tvd(p, q)
    assert 0.0 <= d <= 1.0
    assert d == pytest.approx(tvd(q, p))


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 10**6), b=st.integers(0, 10**6), c=st.integers(0, 10**6))
def test_tvd_triangle_inequality(a, b, c):
    p, q, r = _random_dist(a), _random_dist(b), _random_dist(c)
    assert tvd(p, r) <= tvd(p, q) + tvd(q, r) + 1e-12


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 10**6), b=st.integers(0, 10**6))
def test_jsd_bounds_and_symmetry(a, b):
    p, q = _random_dist(a), _random_dist(b)
    d = jsd(p, q)
    assert 0.0 <= d <= 1.0
    assert d == pytest.approx(jsd(q, p), abs=1e-9)
