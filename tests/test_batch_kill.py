"""Mid-batch SIGKILL: the rerun resumes every circuit from its journal.

A child process runs :func:`repro.batch.run_quest_batch` over two
circuits with a batch checkpoint root and a scheduled ``kill`` fault
that fires partway through the *first* circuit (``window=1`` keeps the
order deterministic).  The parent verifies the kill landed mid-batch —
circuit 0 left a partial journal, circuit 1 never started — and that
rerunning the batch against the same checkpoint root finishes both
circuits bit-identically to uninterrupted solo runs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import heisenberg, tfim
from repro.batch import run_quest_batch
from repro.core.quest import QuestConfig, run_quest

FAST = dict(
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)
SEED = 5

# heisenberg(4, steps=1) runs 3 distinct synthesis jobs in block order;
# killing at job 2 leaves circuit 0 with blocks 0-1 journaled and the
# batch's second circuit untouched.
KILL_BLOCK = 2

_CHILD_SCRIPT = """\
import sys

from repro.algorithms import heisenberg, tfim
from repro.batch import run_quest_batch
from repro.core.quest import QuestConfig
from repro.resilience import FaultInjector, FaultSpec

config = QuestConfig(seed={seed}, **{fast!r})
injector = FaultInjector(specs=(FaultSpec("kill", {kill_block}, 0),))
run_quest_batch(
    [heisenberg(4, steps=1), tfim(4, steps=1)],
    config,
    window=1,
    checkpoint_dir={checkpoint_dir!r},
    fault_injector=injector,
)
print("UNREACHABLE: the kill fault did not fire", file=sys.stderr)
sys.exit(3)
"""


def _dump_artifacts(name: str, payload: dict) -> None:
    """Persist diagnostics for CI's failure-artifact upload."""
    artifact_dir = os.environ.get("FAULT_ARTIFACT_DIR")
    if not artifact_dir:
        return
    directory = Path(artifact_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_text(json.dumps(payload, indent=1))


def _assert_identical(clean, resumed):
    assert clean.selection.bounds == resumed.selection.bounds
    assert len(clean.selection.choices) == len(resumed.selection.choices)
    for a, b in zip(clean.selection.choices, resumed.selection.choices):
        assert np.array_equal(a, b)
    assert len(clean.circuits) == len(resumed.circuits)
    for ca, cb in zip(clean.circuits, resumed.circuits):
        assert ca.cnot_count() == cb.cnot_count()
        assert np.array_equal(ca.unitary(), cb.unitary())
    for pa, pb in zip(clean.pools, resumed.pools):
        assert pa.cnot_counts().tolist() == pb.cnot_counts().tolist()
        assert pa.distances().tolist() == pb.distances().tolist()


@pytest.mark.slow
def test_batch_resumes_after_sigkill_bit_identically(tmp_path):
    checkpoint_dir = tmp_path / "batch-ckpt"
    script = tmp_path / "killed_batch.py"
    script.write_text(
        _CHILD_SCRIPT.format(
            seed=SEED,
            fast=FAST,
            kill_block=KILL_BLOCK,
            checkpoint_dir=str(checkpoint_dir),
        )
    )
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    circuit0 = checkpoint_dir / "circuit-0000"
    circuit1 = checkpoint_dir / "circuit-0001"
    journaled = sorted(circuit0.glob("block_*.qckpt"))
    _dump_artifacts(
        "sigkill_batch_child",
        {
            "returncode": proc.returncode,
            "stdout": proc.stdout,
            "stderr": proc.stderr,
            "journaled": [p.name for p in journaled],
        },
    )

    # The child died by SIGKILL mid-batch, not by finishing or erroring.
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    # Circuit 0 got partway (a partial journal in its own subdirectory);
    # the sequential window means circuit 1 never started.
    assert (circuit0 / "manifest.json").exists()
    names = [p.name for p in journaled]
    assert names, "no blocks were journaled before the kill"
    assert f"block_{KILL_BLOCK:04d}.qckpt" not in names
    assert not circuit1.exists()

    # Rerun the batch against the same checkpoint root: circuit 0 resumes
    # from its journal, circuit 1 compiles fresh, both bit-identical to
    # uninterrupted solo runs.
    config = QuestConfig(seed=SEED, **FAST)
    batch = run_quest_batch(
        [heisenberg(4, steps=1), tfim(4, steps=1)],
        config,
        window=1,
        checkpoint_dir=str(checkpoint_dir),
    )
    resumed_heis, fresh_tfim = batch.results
    assert resumed_heis.checkpoint_hits == len(names)
    assert resumed_heis.checkpoint_corrupt_entries == 0
    _assert_identical(run_quest(heisenberg(4, steps=1), config), resumed_heis)
    _assert_identical(run_quest(tfim(4, steps=1), config), fresh_tfim)
