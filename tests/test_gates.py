"""Unit tests for gate definitions and matrices."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    CNOT_COST,
    GATE_NUM_PARAMS,
    GATE_NUM_QUBITS,
    Gate,
    gate_matrix,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    u3_matrix,
)
from repro.exceptions import GateError
from repro.linalg import is_unitary


ALL_UNITARY_GATES = [
    name for name in GATE_NUM_PARAMS if name not in ("measure", "barrier")
]


@pytest.mark.parametrize("name", ALL_UNITARY_GATES)
def test_every_gate_matrix_is_unitary(name):
    params = tuple(0.3 * (i + 1) for i in range(GATE_NUM_PARAMS[name]))
    matrix = gate_matrix(name, params)
    dim = 2 ** GATE_NUM_QUBITS[name]
    assert matrix.shape == (dim, dim)
    assert is_unitary(matrix)


@pytest.mark.parametrize("name", ALL_UNITARY_GATES)
def test_every_gate_has_working_inverse(name):
    params = tuple(0.3 * (i + 1) for i in range(GATE_NUM_PARAMS[name]))
    gate = Gate(name, params)
    inverse = gate.inverse()
    product = inverse.matrix() @ gate.matrix()
    identity = np.eye(product.shape[0])
    # Inverses may differ by a global phase for some gate pairs.
    phase = product[0, 0]
    assert abs(abs(phase) - 1.0) < 1e-9
    assert np.allclose(product, identity * phase, atol=1e-9)


def test_unknown_gate_rejected():
    with pytest.raises(GateError):
        Gate("frobnicate")


def test_wrong_param_count_rejected():
    with pytest.raises(GateError):
        Gate("rx")
    with pytest.raises(GateError):
        Gate("h", (0.5,))
    with pytest.raises(GateError):
        gate_matrix("u3", (0.1,))


def test_pseudo_gates_have_no_matrix():
    with pytest.raises(GateError):
        gate_matrix("measure")
    with pytest.raises(GateError):
        gate_matrix("barrier")


def test_rotation_composition():
    # R(a) @ R(b) == R(a + b) for each Pauli rotation.
    for builder in (rx_matrix, ry_matrix, rz_matrix):
        a, b = 0.7, -1.3
        assert np.allclose(builder(a) @ builder(b), builder(a + b), atol=1e-12)


def test_rotation_period():
    # R(4*pi) == identity exactly; R(2*pi) == -identity.
    for builder in (rx_matrix, ry_matrix, rz_matrix):
        assert np.allclose(builder(4.0 * math.pi), np.eye(2), atol=1e-12)
        assert np.allclose(builder(2.0 * math.pi), -np.eye(2), atol=1e-12)


def test_u3_specializations():
    # U3(0, 0, lam) is the phase gate; U3(pi/2, phi, lam) is U2.
    lam = 0.77
    assert np.allclose(u3_matrix(0.0, 0.0, lam), gate_matrix("p", (lam,)))
    assert np.allclose(
        gate_matrix("u2", (0.1, 0.2)), u3_matrix(math.pi / 2.0, 0.1, 0.2)
    )


def test_cx_truth_table():
    cx = gate_matrix("cx")
    # Little-endian (control, target): control is the low-order bit.
    # |00> -> |00>, |01> (control=1) -> |11>, |10> -> |10>, |11> -> |01>.
    for src, dst in [(0, 0), (1, 3), (2, 2), (3, 1)]:
        column = cx[:, src]
        assert abs(column[dst] - 1.0) < 1e-12


def test_ccx_truth_table():
    ccx = gate_matrix("ccx")
    # Target (third qubit) flips only when both controls (bits 0, 1) set.
    for src in range(8):
        expected = src ^ 0b100 if (src & 0b011) == 0b011 else src
        assert abs(ccx[expected, src] - 1.0) < 1e-12


def test_cnot_cost_accounting():
    assert Gate("cx").cnot_cost() == 1
    assert Gate("swap").cnot_cost() == 3
    assert Gate("rzz", (0.3,)).cnot_cost() == 2
    assert Gate("ccx").cnot_cost() == 6
    assert Gate("h").cnot_cost() == 0
    assert CNOT_COST["cswap"] == 8


def test_gate_params_coerced_to_float():
    gate = Gate("rx", (1,))
    assert isinstance(gate.params[0], float)


def test_gate_frozen():
    gate = Gate("h")
    with pytest.raises(Exception):
        gate.name = "x"  # type: ignore[misc]
