"""Cross-module integration tests: QUEST + transpiler + noisy simulation.

These exercise the full evaluation path of the paper: approximate with
QUEST, compile to a constrained noisy device, simulate with Pauli noise,
and compare output distributions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import QuestConfig, run_quest, transpile, tvd
from repro.algorithms import tfim, average_magnetization
from repro.core import ensemble_distribution
from repro.metrics import average_distributions
from repro.noise import NoiseModel, fake_manila, run_density
from repro.sim import ideal_distribution
from repro.sim.readout import logical_distribution

FAST = QuestConfig(
    seed=3,
    max_samples=3,
    max_layers_per_block=3,
    solutions_per_layer=2,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    block_time_budget=10.0,
    threshold_per_block=0.3,
)


@pytest.fixture(scope="module")
def pipeline_outputs():
    circuit = tfim(3, steps=2)
    ground_truth = ideal_distribution(circuit)
    manila = fake_manila()

    def run_on_manila(circ):
        circ = circ.copy()
        circ.measure_all()
        compiled = transpile(circ, backend=manila, optimization_level=2, rng=0)
        physical = run_density(compiled.circuit, manila.noise)
        return logical_distribution(compiled.circuit, physical)[
            : 2**circuit.num_qubits
        ]

    baseline_noisy = run_on_manila(circuit)
    quest_result = run_quest(circuit, FAST)
    quest_noisy = average_distributions(
        [run_on_manila(c) for c in quest_result.circuits]
    )
    return ground_truth, baseline_noisy, quest_noisy, quest_result


def test_noisy_baseline_has_error(pipeline_outputs):
    ground_truth, baseline_noisy, _, _ = pipeline_outputs
    assert tvd(ground_truth, baseline_noisy) > 0.01


def test_quest_reduces_noisy_error(pipeline_outputs):
    ground_truth, baseline_noisy, quest_noisy, _ = pipeline_outputs
    baseline_error = tvd(ground_truth, baseline_noisy)
    quest_error = tvd(ground_truth, quest_noisy)
    # The headline claim: fewer CNOTs -> less accumulated noise.
    assert quest_error < baseline_error


def test_quest_reduces_cnots_after_transpile(pipeline_outputs):
    _, _, _, quest_result = pipeline_outputs
    manila = fake_manila()
    baseline_cnots = transpile(
        quest_result.baseline, backend=manila, optimization_level=2, rng=0
    ).cnot_count
    quest_cnots = min(
        transpile(c, backend=manila, optimization_level=2, rng=0).cnot_count
        for c in quest_result.circuits
    )
    assert quest_cnots < baseline_cnots


def test_magnetization_tracks_ground_truth(pipeline_outputs):
    ground_truth, baseline_noisy, quest_noisy, _ = pipeline_outputs
    n = 3
    truth_mag = average_magnetization(ground_truth, n)
    quest_mag = average_magnetization(quest_noisy, n)
    baseline_mag = average_magnetization(baseline_noisy, n)
    assert abs(quest_mag - truth_mag) <= abs(baseline_mag - truth_mag) + 0.05


def test_quest_ensemble_ideal_output(pipeline_outputs):
    ground_truth, _, _, quest_result = pipeline_outputs
    ideal_ensemble = ensemble_distribution(quest_result.circuits)
    assert tvd(ground_truth, ideal_ensemble) < 0.15


def test_noise_level_projection():
    # TVD improves monotonically as hardware noise decreases (Fig. 11/14).
    circuit = tfim(3, steps=2)
    ground_truth = ideal_distribution(circuit)
    errors = []
    for level in (0.01, 0.005, 0.001):
        noisy = run_density(circuit, NoiseModel.from_noise_level(level))
        errors.append(tvd(ground_truth, noisy))
    assert errors[0] > errors[1] > errors[2]
