"""Tests for epsilon-sphere variant sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core.similarity import unitaries_similar
from repro.exceptions import SynthesisError
from repro.linalg import hs_distance
from repro.synthesis.sphere import sphere_variants


def _base_circuit() -> Circuit:
    circuit = Circuit(2)
    circuit.ry(0.3, 0)
    circuit.rz(0.2, 1)
    circuit.cx(0, 1)
    circuit.ry(0.5, 0)
    circuit.rz(0.7, 1)
    return circuit


def test_variants_land_in_band():
    circuit = _base_circuit()
    target = circuit.unitary()
    threshold = 0.2
    variants = sphere_variants(circuit, target, threshold, count=4, rng=0)
    assert len(variants) >= 2
    for variant in variants:
        distance = hs_distance(variant.unitary(), target)
        assert distance <= threshold + 1e-9
        assert distance >= 0.05


def test_variants_preserve_structure():
    circuit = _base_circuit()
    variants = sphere_variants(circuit, circuit.unitary(), 0.2, count=2, rng=1)
    for variant in variants:
        assert variant.cnot_count() == circuit.cnot_count()
        assert [op.name for op in variant] == [op.name for op in circuit]


def test_plus_minus_pairs_are_dissimilar():
    # Variants generated in +v/-v pairs should include mutually
    # dissimilar pairs (the whole point of sphere sampling).
    circuit = _base_circuit()
    target = circuit.unitary()
    variants = sphere_variants(circuit, target, 0.25, count=6, rng=2)
    assert len(variants) >= 2
    found_dissimilar = False
    for i in range(len(variants)):
        for j in range(i + 1, len(variants)):
            if not unitaries_similar(
                variants[i].unitary(), variants[j].unitary(), target
            ):
                found_dissimilar = True
    assert found_dissimilar


def test_no_room_returns_empty():
    # If the base is already essentially on the sphere, nothing is made.
    circuit = _base_circuit()
    other = Circuit(2)
    other.cx(0, 1)
    far_target = other.unitary()
    base_distance = hs_distance(circuit.unitary(), far_target)
    variants = sphere_variants(
        circuit, far_target, threshold=base_distance * 1.01, count=4, rng=0
    )
    assert variants == []


def test_no_rotations_returns_empty():
    circuit = Circuit(2)
    circuit.cx(0, 1)
    assert sphere_variants(circuit, circuit.unitary(), 0.2, rng=0) == []


def test_threshold_must_be_positive():
    circuit = _base_circuit()
    with pytest.raises(SynthesisError):
        sphere_variants(circuit, circuit.unitary(), 0.0)


def test_deterministic_with_seed():
    circuit = _base_circuit()
    target = circuit.unitary()
    a = sphere_variants(circuit, target, 0.2, count=2, rng=42)
    b = sphere_variants(circuit, target, 0.2, count=2, rng=42)
    assert len(a) == len(b)
    for va, vb in zip(a, b):
        assert np.allclose(va.unitary(), vb.unitary())
