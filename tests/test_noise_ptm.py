"""Tests for the superoperator (PTM) noise engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import qft, tfim
from repro.circuits import Circuit, random_circuit
from repro.core import QuestConfig, run_quest
from repro.exceptions import (
    SimulationCapacityError,
    SimulationError,
    ValidationError,
)
from repro.metrics.tolerances import PTM_DENSITY_AGREEMENT_ATOL
from repro.noise import (
    MAX_DENSITY_QUBITS,
    MAX_PTM_QUBITS,
    NoiseModel,
    PtmCache,
    noisy_distribution,
    run_density,
    run_ptm,
    run_ptm_ensemble,
)
from repro.noise.ptm import (
    PtmProgram,
    channel_diagonal,
    compile_circuit,
    unitary_ptm,
)
from repro.noise.trajectories import (
    MAX_BATCHED_STATE_BYTES,
    MAX_TRAJECTORY_QUBITS,
    run_trajectories,
)
from repro.observability import MetricsRegistry, use_metrics
from repro.resilience.validation import validate_ptm
from repro.sim import ideal_distribution

NOISE = NoiseModel.from_noise_level(0.01)
FULL_NOISE = NoiseModel(
    one_qubit_error=0.002,
    two_qubit_error=0.02,
    readout_error=0.015,
    idle_decoherence=0.004,
)


# ---------------------------------------------------------------------------
# PTM compilation primitives


def test_unitary_ptm_of_identity_is_identity():
    np.testing.assert_allclose(unitary_ptm(np.eye(2), 1), np.eye(4), atol=1e-14)


def test_unitary_ptm_of_x_flips_y_and_z():
    ptm = unitary_ptm(np.array([[0, 1], [1, 0]], dtype=complex), 1)
    np.testing.assert_allclose(ptm, np.diag([1.0, 1.0, -1.0, -1.0]), atol=1e-14)


def test_channel_diagonal_depolarizing():
    # Symmetric depolarizing at rate p: X/Y/Z components shrink by 1-4p/3.
    p = 0.03
    diag = channel_diagonal(tuple((p / 3.0, label) for label in "XYZ"), 1)
    np.testing.assert_allclose(
        diag, [1.0, 1 - 4 * p / 3, 1 - 4 * p / 3, 1 - 4 * p / 3], atol=1e-14
    )


def test_ptm_is_phase_invariant():
    gate = np.array([[1, 0], [0, np.exp(1j * 0.7)]], dtype=complex)
    np.testing.assert_allclose(
        unitary_ptm(gate, 1),
        unitary_ptm(np.exp(1j * 1.3) * gate, 1),
        atol=1e-14,
    )


# ---------------------------------------------------------------------------
# Agreement with the density-matrix reference


def _assert_matches_density(circuit: Circuit, noise: NoiseModel):
    expected = run_density(circuit, noise)
    actual = run_ptm(circuit, noise)
    np.testing.assert_allclose(
        actual, expected, atol=PTM_DENSITY_AGREEMENT_ATOL, rtol=0.0
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_ptm_matches_density_on_random_circuits(seed):
    circuit = random_circuit(3, 4, rng=seed)
    _assert_matches_density(circuit, NOISE)


def test_ptm_matches_density_on_tfim_and_qft():
    _assert_matches_density(tfim(4, steps=2), NOISE)
    _assert_matches_density(qft(4), NOISE)


def test_ptm_matches_density_with_idle_decoherence_and_readout():
    _assert_matches_density(random_circuit(4, 3, rng=11), FULL_NOISE)


def test_ptm_matches_density_on_wide_gate():
    # ccx exercises the arity>=3 path: bare gate PTM + per-pair channels.
    circuit = Circuit(3)
    circuit.h(0)
    circuit.ccx(0, 1, 2)
    circuit.h(2)
    _assert_matches_density(circuit, FULL_NOISE)


def test_ptm_noiseless_matches_ideal_distribution():
    circuit = random_circuit(3, 4, rng=5)
    np.testing.assert_allclose(
        run_ptm(circuit, NoiseModel.noiseless()),
        ideal_distribution(circuit),
        atol=1e-10,
    )


def test_ptm_matches_trajectories_statistically():
    # Trajectories converge to the PTM answer (both average the same
    # channel); loose tolerance, T=2000 keeps it fast but stable.
    circuit = tfim(3, steps=1)
    exact = run_ptm(circuit, NOISE)
    sampled = run_trajectories(circuit, NOISE, trajectories=2000, rng=3)
    assert np.max(np.abs(exact - sampled)) < 0.05


# ---------------------------------------------------------------------------
# Ensemble batching


def test_ensemble_rows_equal_single_circuit_runs():
    circuits = [random_circuit(3, 3, rng=seed) for seed in range(5)]
    batch = run_ptm_ensemble(circuits, FULL_NOISE)
    assert batch.shape == (5, 8)
    for row, circuit in zip(batch, circuits):
        np.testing.assert_array_equal(row, run_ptm(circuit, FULL_NOISE))


def test_ensemble_batches_structurally_identical_circuits():
    # Same gate skeleton, different angles: one signature group, with
    # per-member PTM stacks where the angles differ.
    circuits = []
    for i in range(4):
        c = Circuit(2)
        c.ry(0.3 + 0.1 * i, 0)
        c.cx(0, 1)
        c.rz(0.5, 1)
        circuits.append(c)
    signatures = {
        compile_circuit(c, NOISE).signature for c in circuits
    }
    assert len(signatures) == 1
    batch = run_ptm_ensemble(circuits, NOISE)
    for row, circuit in zip(batch, circuits):
        np.testing.assert_allclose(
            row, run_density(circuit, NOISE),
            atol=PTM_DENSITY_AGREEMENT_ATOL, rtol=0.0,
        )


def test_ensemble_rejects_empty_and_mixed_widths():
    with pytest.raises(SimulationError, match="no circuits"):
        run_ptm_ensemble([], NOISE)
    with pytest.raises(SimulationError, match="share a qubit count"):
        run_ptm_ensemble([Circuit(2), Circuit(3)], NOISE)


# ---------------------------------------------------------------------------
# Compile cache


def test_compile_cache_hits_on_repeated_gates():
    cache = PtmCache()
    circuit = tfim(3, steps=3)  # Trotter layers repeat the same gates
    program = compile_circuit(circuit, NOISE, cache)
    assert isinstance(program, PtmProgram)
    assert cache.misses > 0
    assert cache.hits > cache.misses  # repeats dominate distinct gates
    misses_before = cache.misses
    compile_circuit(circuit, NOISE, cache)  # fully cached second pass
    assert cache.misses == misses_before


def test_compile_cache_distinguishes_noise_models():
    cache = PtmCache()
    circuit = Circuit(1)
    circuit.h(0)
    compile_circuit(circuit, NoiseModel.from_noise_level(0.01), cache)
    misses = cache.misses
    compile_circuit(circuit, NoiseModel.from_noise_level(0.05), cache)
    assert cache.misses > misses  # different channel => different entry


def test_compile_cache_does_not_merge_nearby_gates():
    # Regression: the synthesis cache's 8-decimal rounding would merge
    # these two rotations and silently reuse the wrong PTM.
    cache = PtmCache()
    a = Circuit(1)
    a.rz(0.5, 0)
    b = Circuit(1)
    b.rz(0.5 + 1e-7, 0)
    run_ptm(a, NOISE, cache=cache)  # warm the cache with the nearby gate
    np.testing.assert_allclose(
        run_ptm(b, NOISE, cache=cache),
        run_density(b, NOISE),
        atol=PTM_DENSITY_AGREEMENT_ATOL, rtol=0.0,
    )


def test_compile_cache_metrics_counters():
    registry = MetricsRegistry()
    with use_metrics(registry):
        run_ptm_ensemble(
            [tfim(3, steps=2), tfim(3, steps=2)], NOISE, cache=PtmCache()
        )
    snapshot = registry.snapshot()
    counters = snapshot.get("counters", snapshot)
    assert counters.get("ptm.compile_cache_hits", 0) > 0
    assert counters.get("ptm.compile_cache_misses", 0) > 0
    assert counters.get("ptm.contractions", 0) > 0
    assert counters.get("ptm.ensemble_groups", 0) >= 1


# ---------------------------------------------------------------------------
# Validation (resilience integration)


def test_validate_ptm_accepts_honest_ptm():
    gate = np.array([[0, 1], [1, 0]], dtype=complex)
    ptm = unitary_ptm(gate, 1)
    validate_ptm(ptm, 1)  # must not raise


def test_validate_ptm_rejects_trace_violation():
    ptm = unitary_ptm(np.eye(2, dtype=complex), 1)
    ptm = ptm.copy()
    ptm[0, 0] = 1.5  # r_0 no longer preserved
    with pytest.raises(ValidationError, match="trace"):
        validate_ptm(ptm, 1)


def test_validate_ptm_rejects_non_cp_map():
    # Transpose map: trace-preserving but famously not CP.
    ptm = np.diag([1.0, 1.0, -1.0, 1.0])
    with pytest.raises(ValidationError, match="positiv"):
        validate_ptm(ptm, 1)


def test_validate_ptm_rejects_bad_shape_and_nan():
    with pytest.raises(ValidationError):
        validate_ptm(np.eye(3), 1)
    bad = unitary_ptm(np.eye(2, dtype=complex), 1).copy()
    bad[2, 2] = np.nan
    with pytest.raises(ValidationError):
        validate_ptm(bad, 1)


# ---------------------------------------------------------------------------
# Capacity ceilings (structured refusals)


def test_density_over_cap_suggests_ptm():
    circuit = Circuit(MAX_DENSITY_QUBITS + 1)
    for q in range(circuit.num_qubits):
        circuit.h(q)
    with pytest.raises(SimulationCapacityError) as excinfo:
        run_density(circuit, NOISE)
    error = excinfo.value
    assert error.engine == "density"
    assert error.num_qubits == MAX_DENSITY_QUBITS + 1
    assert error.limit == MAX_DENSITY_QUBITS
    assert error.suggested_engine == "ptm"
    assert "ptm" in str(error)


def test_density_far_over_cap_suggests_trajectories():
    circuit = Circuit(MAX_PTM_QUBITS + 1)
    circuit.h(0)
    with pytest.raises(SimulationCapacityError) as excinfo:
        run_density(circuit, NOISE)
    assert excinfo.value.suggested_engine == "trajectories"


def test_ptm_over_cap_suggests_trajectories():
    circuit = Circuit(MAX_PTM_QUBITS + 1)
    circuit.h(0)
    with pytest.raises(SimulationCapacityError) as excinfo:
        run_ptm(circuit, NOISE)
    error = excinfo.value
    assert error.engine == "ptm"
    assert error.suggested_engine == "trajectories"


def test_trajectories_over_qubit_cap_refuses():
    circuit = Circuit(MAX_TRAJECTORY_QUBITS + 1)
    circuit.h(0)
    with pytest.raises(SimulationCapacityError) as excinfo:
        run_trajectories(circuit, NOISE, trajectories=1)
    assert excinfo.value.engine == "trajectories"
    assert "partition" in str(excinfo.value)


def test_trajectories_batched_memory_cap():
    # 20 qubits x enough trajectories to blow the 4 GiB batch cap; the
    # refusal must fire before any state is allocated.
    circuit = Circuit(20)
    circuit.h(0)
    too_many = MAX_BATCHED_STATE_BYTES // (16 * 2**20) + 1
    with pytest.raises(SimulationCapacityError, match="batch"):
        run_trajectories(circuit, NOISE, trajectories=too_many, batched=True)


def test_capacity_error_is_a_simulation_error():
    assert issubclass(SimulationCapacityError, SimulationError)


# ---------------------------------------------------------------------------
# Engine dispatch


def test_noisy_distribution_engine_dispatch():
    circuit = tfim(3, steps=1)
    via_ptm = noisy_distribution(circuit, NOISE, engine="ptm")
    via_density = noisy_distribution(circuit, NOISE, engine="density")
    via_auto = noisy_distribution(circuit, NOISE, engine="auto")
    np.testing.assert_array_equal(via_auto, via_density)  # auto == legacy
    np.testing.assert_allclose(
        via_ptm, via_density, atol=PTM_DENSITY_AGREEMENT_ATOL, rtol=0.0
    )


def test_noisy_distribution_rejects_unknown_engine():
    with pytest.raises(SimulationError, match="unknown noise engine"):
        noisy_distribution(tfim(3, steps=1), NOISE, engine="exact")


def test_quest_config_rejects_unknown_engine():
    from repro.exceptions import SelectionError

    with pytest.raises(SelectionError, match="unknown noise engine"):
        run_quest(tfim(3, steps=1), QuestConfig(noise_engine="exact"))


# ---------------------------------------------------------------------------
# Full-pipeline regression: selections are engine-independent


_FAST = dict(
    seed=7,
    max_samples=4,
    max_block_qubits=2,
    max_layers_per_block=3,
    solutions_per_layer=2,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    block_time_budget=10.0,
    threshold_per_block=0.3,
)


def _choices(result):
    return tuple(tuple(int(i) for i in choice) for choice in result.selection.choices)


@pytest.mark.parametrize("circuit_factory", [lambda: tfim(4, steps=2), lambda: qft(4)])
def test_selections_bit_identical_across_engines(circuit_factory):
    results = {
        engine: run_quest(
            circuit_factory(), QuestConfig(noise_engine=engine, **_FAST)
        )
        for engine in ("ptm", "density", "trajectories")
    }
    reference = _choices(results["density"])
    for engine, result in results.items():
        assert _choices(result) == reference, engine
        assert result.noise_engine == engine

    # And the PTM evaluation of the selected ensemble agrees with the
    # exact density reference while attributing its wall time.
    ptm_avg = results["ptm"].noisy_ensemble(NOISE)
    density_avg = results["density"].noisy_ensemble(NOISE)
    np.testing.assert_allclose(
        ptm_avg, density_avg, atol=PTM_DENSITY_AGREEMENT_ATOL, rtol=0.0
    )
    assert results["ptm"].timings.noisy_eval_seconds > 0.0
