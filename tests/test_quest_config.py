"""Tests for QUEST configuration objects and result accounting."""

from __future__ import annotations

import pytest

from repro import QuestConfig
from repro.core.quest import QuestTimings
from repro.synthesis import LeapConfig


def test_quest_config_defaults():
    config = QuestConfig()
    assert config.max_block_qubits == 3
    assert config.max_samples == 16  # the paper's M
    assert config.weight == pytest.approx(0.5)  # the paper's balance


def test_leap_target_cost_conversion():
    config = LeapConfig(target_distance=0.6)
    # cost = 1 - sqrt(1 - d^2) = 1 - 0.8 = 0.2
    assert config.target_cost == pytest.approx(0.2)
    assert LeapConfig().target_cost is None
    assert LeapConfig(target_distance=0.0).target_cost == pytest.approx(0.0)
    assert LeapConfig(target_distance=1.0).target_cost == pytest.approx(1.0)


def test_timings_total():
    timings = QuestTimings(
        partition_seconds=1.0, synthesis_seconds=2.0, annealing_seconds=0.5
    )
    assert timings.total_seconds == pytest.approx(3.5)
