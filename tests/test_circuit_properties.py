"""Property-based tests on circuit algebra (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, random_circuit
from repro.linalg import equal_up_to_global_phase, hs_distance, is_unitary
from repro.sim import circuit_unitary, run_statevector


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 4), depth=st.integers(1, 5))
def test_circuit_unitary_is_unitary(seed, n, depth):
    circuit = random_circuit(n, depth, rng=seed)
    assert is_unitary(circuit_unitary(circuit))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 4))
def test_compose_multiplies_unitaries(seed, n):
    gen = np.random.default_rng(seed)
    a = random_circuit(n, 3, rng=gen)
    b = random_circuit(n, 3, rng=gen)
    combined = a.compose(b)
    expected = circuit_unitary(b) @ circuit_unitary(a)
    assert np.allclose(circuit_unitary(combined), expected, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 4))
def test_inverse_composes_to_identity(seed, n):
    circuit = random_circuit(n, 4, rng=seed)
    identity = circuit.compose(circuit.inverse())
    assert equal_up_to_global_phase(
        circuit_unitary(identity), np.eye(2**n), atol=1e-8
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 4))
def test_remap_is_permutation_conjugation(seed, n):
    gen = np.random.default_rng(seed)
    circuit = random_circuit(n, 3, rng=gen)
    permutation = gen.permutation(n)
    mapping = {i: int(permutation[i]) for i in range(n)}
    remapped = circuit.remap(mapping)
    # Remapping preserves gate structure and the spectrum of the unitary.
    # Compare eigenvalues as complex numbers, not angles: an eigenvalue at
    # exactly -1 lands on the angle branch cut, where numerical noise
    # flips np.angle between -pi and +pi (hypothesis found seed=512, n=4).
    original_eigs = np.linalg.eigvals(circuit_unitary(circuit))
    remapped_eigs = np.linalg.eigvals(circuit_unitary(remapped))
    for eig in original_eigs:
        assert np.min(np.abs(remapped_eigs - eig)) < 1e-7
    assert remapped.cnot_count() == circuit.cnot_count()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 4))
def test_statevector_matches_unitary_column(seed, n):
    circuit = random_circuit(n, 4, rng=seed)
    assert np.allclose(
        run_statevector(circuit), circuit_unitary(circuit)[:, 0], atol=1e-10
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_hs_distance_triangle_inequality(seed):
    from repro.circuits import random_unitary

    gen = np.random.default_rng(seed)
    a, b, c = (random_unitary(4, gen) for _ in range(3))
    # The HS distance is a metric on the projective unitary group.
    assert hs_distance(a, c) <= hs_distance(a, b) + hs_distance(b, c) + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 4))
def test_depth_bounds_operation_count(seed, n):
    circuit = random_circuit(n, 4, rng=seed)
    assert circuit.depth() <= len(circuit)
    if len(circuit):
        assert circuit.depth() >= len(circuit) / n
