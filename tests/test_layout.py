"""Tests for the interaction-aware layout pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.exceptions import TranspilerError
from repro.noise import fake_manila, linear_backend
from repro.sim import ideal_distribution
from repro.sim.readout import logical_distribution
from repro.transpile import route_to_coupling
from repro.transpile.layout import (
    apply_layout,
    interaction_counts,
    interaction_layout,
)


def _star_circuit() -> Circuit:
    # Qubit 0 interacts with everyone: the busiest logical qubit.
    circuit = Circuit(4)
    for q in (1, 2, 3):
        circuit.cx(0, q)
    return circuit


def test_interaction_counts():
    counts = interaction_counts(_star_circuit())
    assert counts[0] == 3
    assert counts[1] == counts[2] == counts[3] == 1


def test_busiest_qubit_gets_central_physical():
    circuit = _star_circuit()
    layout = interaction_layout(circuit, linear_backend(4))
    # On a 4-chain the most central qubits are 1 and 2.
    assert layout[0] in (1, 2)


def test_layout_is_bijective():
    layout = interaction_layout(_star_circuit(), fake_manila())
    assert len(set(layout.values())) == len(layout)


def test_layout_rejects_small_backend():
    circuit = Circuit(6)
    with pytest.raises(TranspilerError):
        interaction_layout(circuit, fake_manila())


def test_apply_layout_validation():
    circuit = _star_circuit()
    with pytest.raises(TranspilerError):
        apply_layout(circuit, {0: 0}, 4)
    with pytest.raises(TranspilerError):
        apply_layout(circuit, {0: 0, 1: 0, 2: 1, 3: 2}, 4)


def test_layout_reduces_swaps_on_star_circuit():
    circuit = _star_circuit()
    backend = linear_backend(4)
    trivial = route_to_coupling(circuit, backend.coupling_map)
    laid_out = apply_layout(
        circuit, interaction_layout(circuit, backend), backend.num_qubits
    )
    routed = route_to_coupling(laid_out, backend.coupling_map)
    assert routed.swaps_inserted <= trivial.swaps_inserted


def test_layout_preserves_semantics():
    circuit = _star_circuit()
    circuit.measure_all()
    backend = fake_manila()
    laid_out = apply_layout(
        circuit, interaction_layout(circuit, backend), backend.num_qubits
    )
    routed = route_to_coupling(laid_out, backend.coupling_map)
    physical = ideal_distribution(routed.circuit.without_measurements())
    # Measurements were remapped by apply_layout and again by routing;
    # the logical distribution must match the original.
    logical = logical_distribution(routed.circuit, physical)
    original = ideal_distribution(circuit.without_measurements())
    assert np.allclose(logical[: len(original)], original, atol=1e-8)
