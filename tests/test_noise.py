"""Tests for Pauli noise models and noisy simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, random_circuit
from repro.exceptions import NoiseModelError, SimulationError
from repro.metrics import tvd
from repro.noise import (
    MAX_DENSITY_QUBITS,
    NoiseModel,
    apply_readout_error,
    noisy_distribution,
    pauli_matrix,
    readout_confusion,
    run_density,
    run_trajectories,
)
from repro.noise.model import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS
from repro.sim import ideal_distribution


def test_pauli_matrix_labels():
    assert np.allclose(pauli_matrix("X"), [[0, 1], [1, 0]])
    zz = pauli_matrix("ZZ")
    assert np.allclose(zz, np.diag([1, -1, -1, 1]))
    with pytest.raises(NoiseModelError):
        pauli_matrix("Q")
    with pytest.raises(NoiseModelError):
        pauli_matrix("")


def test_two_qubit_pauli_enumeration():
    assert len(TWO_QUBIT_PAULIS) == 15
    assert "II" not in TWO_QUBIT_PAULIS
    assert len(ONE_QUBIT_PAULIS) == 3


def test_noise_model_validation():
    with pytest.raises(NoiseModelError):
        NoiseModel(one_qubit_error=-0.1)
    with pytest.raises(NoiseModelError):
        NoiseModel(two_qubit_error=1.5)


def test_from_noise_level_hierarchy():
    model = NoiseModel.from_noise_level(0.01)
    assert model.two_qubit_error == pytest.approx(0.01)
    assert model.one_qubit_error == pytest.approx(0.001)
    assert model.readout_error == pytest.approx(0.01)


def test_pauli_terms_sum_to_rate():
    model = NoiseModel(one_qubit_error=0.03, two_qubit_error=0.12)
    terms1 = model.pauli_terms(1)
    assert sum(p for p, _ in terms1) == pytest.approx(0.03)
    terms2 = model.pauli_terms(2)
    assert len(terms2) == 15
    assert sum(p for p, _ in terms2) == pytest.approx(0.12)
    assert NoiseModel.noiseless().pauli_terms(2) == []


def test_readout_confusion_stochastic():
    confusion = readout_confusion(0.1)
    assert np.allclose(confusion.sum(axis=0), [1.0, 1.0])


def test_apply_readout_error_single_qubit():
    probs = np.array([1.0, 0.0])
    out = apply_readout_error(probs, 1, 0.1)
    assert np.allclose(out, [0.9, 0.1])


def test_apply_readout_error_preserves_normalization(rng):
    probs = rng.random(8)
    probs /= probs.sum()
    out = apply_readout_error(probs, 3, 0.05)
    assert out.sum() == pytest.approx(1.0)


def test_density_noiseless_matches_ideal(rng):
    circuit = random_circuit(3, 5, rng=rng)
    assert np.allclose(
        run_density(circuit, NoiseModel.noiseless()),
        ideal_distribution(circuit),
        atol=1e-10,
    )


def test_density_qubit_cap():
    with pytest.raises(SimulationError):
        run_density(Circuit(MAX_DENSITY_QUBITS + 1), NoiseModel())


def test_density_noise_monotonic(rng):
    circuit = random_circuit(3, 5, rng=rng)
    ideal = ideal_distribution(circuit)
    errors = [
        tvd(ideal, run_density(circuit, NoiseModel.from_noise_level(level)))
        for level in (0.001, 0.01, 0.05)
    ]
    assert errors[0] < errors[1] < errors[2]


def test_heavy_noise_approaches_uniform():
    # Many maximally-noisy CNOTs drive the output towards uniform.
    circuit = Circuit(2)
    for _ in range(40):
        circuit.cx(0, 1)
        circuit.cx(1, 0)
    noisy = run_density(circuit, NoiseModel(two_qubit_error=0.5))
    assert tvd(noisy, np.full(4, 0.25)) < 0.02


def test_trajectories_match_density(rng):
    circuit = random_circuit(3, 4, rng=rng)
    model = NoiseModel(one_qubit_error=0.01, two_qubit_error=0.05,
                       readout_error=0.02)
    exact = run_density(circuit, model)
    sampled = run_trajectories(circuit, model, trajectories=3000, rng=rng)
    assert tvd(exact, sampled) < 0.03


def test_batched_and_scalar_engines_agree_exactly(rng):
    # Both engines consume the same pre-sampled error outcomes, so for a
    # fixed seed they must agree to floating-point associativity — not
    # just statistically.
    circuit = random_circuit(3, 5, rng=rng)
    model = NoiseModel(one_qubit_error=0.02, two_qubit_error=0.08,
                       readout_error=0.03, idle_decoherence=0.01)
    batched = run_trajectories(circuit, model, trajectories=150, rng=99,
                               batched=True)
    scalar = run_trajectories(circuit, model, trajectories=150, rng=99,
                              batched=False)
    assert np.allclose(batched, scalar, atol=1e-12)


def test_batched_trajectories_match_density(rng):
    circuit = random_circuit(3, 4, rng=rng)
    model = NoiseModel(one_qubit_error=0.01, two_qubit_error=0.05,
                       readout_error=0.02)
    exact = run_density(circuit, model)
    sampled = run_trajectories(circuit, model, trajectories=3000, rng=rng,
                               batched=True)
    assert tvd(exact, sampled) < 0.03


def test_batched_trajectories_wide_gate(rng):
    # ccx is charged one two-qubit channel per consecutive pair in both
    # the density and trajectory engines.
    circuit = Circuit(3)
    circuit.h(0)
    circuit.ccx(0, 1, 2)
    model = NoiseModel(two_qubit_error=0.08, readout_error=0.0)
    exact = run_density(circuit, model)
    sampled = run_trajectories(circuit, model, trajectories=4000, rng=5,
                               batched=True)
    assert tvd(exact, sampled) < 0.03
    scalar = run_trajectories(circuit, model, trajectories=200, rng=5,
                              batched=False)
    batched = run_trajectories(circuit, model, trajectories=200, rng=5,
                               batched=True)
    assert np.allclose(scalar, batched, atol=1e-12)


def test_trajectories_noiseless_exact(rng):
    circuit = random_circuit(3, 4, rng=rng)
    out = run_trajectories(circuit, NoiseModel.noiseless(), trajectories=3, rng=rng)
    assert np.allclose(out, ideal_distribution(circuit), atol=1e-10)


def test_trajectories_need_positive_count(bell_circuit):
    with pytest.raises(SimulationError):
        run_trajectories(bell_circuit, NoiseModel(), trajectories=0)


def test_noisy_distribution_dispatches(bell_circuit):
    out = noisy_distribution(bell_circuit, NoiseModel.from_noise_level(0.01))
    assert out.shape == (4,)
    assert out.sum() == pytest.approx(1.0)


def test_ccx_charged_as_pairs():
    # A 3-qubit gate under noise should not crash and should add error.
    circuit = Circuit(3)
    circuit.ccx(0, 1, 2)
    out = run_density(circuit, NoiseModel(two_qubit_error=0.05, readout_error=0.0))
    ideal = ideal_distribution(circuit)
    assert tvd(out, ideal) > 0.0


def test_idle_decoherence_adds_error(rng):
    circuit = random_circuit(3, 4, rng=rng)
    quiet = NoiseModel.noiseless()
    idle = NoiseModel(0.0, 0.0, 0.0, idle_decoherence=0.01)
    ideal = run_density(circuit, quiet)
    decohered = run_density(circuit, idle)
    assert tvd(ideal, decohered) > 0.0


def test_idle_decoherence_grows_with_depth(rng):
    idle = NoiseModel(0.0, 0.0, 0.0, idle_decoherence=0.02)
    short = Circuit(3)
    short.cx(0, 1)
    long = Circuit(3)
    for _ in range(10):
        long.cx(0, 1)
        long.cx(0, 1)  # identity overall, but idling qubit 2 decoheres
    short_out = run_density(short, idle)
    long_out = run_density(long, idle)
    ideal_short = ideal_distribution(short)
    ideal_long = ideal_distribution(long)
    assert tvd(ideal_long, long_out) > tvd(ideal_short, short_out)


def test_idle_decoherence_in_trajectories(rng):
    circuit = random_circuit(3, 3, rng=rng)
    model = NoiseModel(0.0, 0.0, 0.0, idle_decoherence=0.05)
    exact = run_density(circuit, model)
    sampled = run_trajectories(circuit, model, trajectories=3000, rng=rng)
    assert tvd(exact, sampled) < 0.03
