"""Tests for the dense circuit-unitary simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, gate_matrix, random_circuit
from repro.exceptions import SimulationError
from repro.sim import circuit_unitary, run_statevector, zero_state
from repro.sim.unitary import MAX_UNITARY_QUBITS


def test_unitary_is_gate_product():
    circuit = Circuit(1)
    circuit.h(0)
    circuit.t(0)
    circuit.s(0)
    expected = gate_matrix("s") @ gate_matrix("t") @ gate_matrix("h")
    assert np.allclose(circuit_unitary(circuit), expected)


def test_unitary_matches_statevector(rng):
    circuit = random_circuit(3, 6, rng=rng)
    unitary = circuit_unitary(circuit)
    assert np.allclose(unitary[:, 0], run_statevector(circuit))


def test_unitary_column_action(rng):
    circuit = random_circuit(3, 4, rng=rng)
    unitary = circuit_unitary(circuit)
    for basis in range(8):
        initial = np.zeros(8, dtype=complex)
        initial[basis] = 1.0
        assert np.allclose(
            unitary[:, basis],
            run_statevector(circuit, initial_state=initial),
        )


def test_unitary_rejects_measurements(bell_circuit):
    bell_circuit.measure_all()
    with pytest.raises(SimulationError):
        circuit_unitary(bell_circuit)


def test_unitary_rejects_large_circuits():
    with pytest.raises(SimulationError):
        circuit_unitary(Circuit(MAX_UNITARY_QUBITS + 1))


def test_empty_circuit_is_identity():
    assert np.allclose(circuit_unitary(Circuit(2)), np.eye(4))


def test_barriers_are_transparent(bell_circuit):
    with_barrier = Circuit(2)
    with_barrier.h(0)
    with_barrier.barrier()
    with_barrier.cx(0, 1)
    assert np.allclose(
        circuit_unitary(with_barrier), circuit_unitary(bell_circuit)
    )
