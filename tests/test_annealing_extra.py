"""Selection-engine behaviors around the feasibility fallback."""

from __future__ import annotations

import numpy as np

from repro.circuits import Circuit
from repro.core.annealing import select_approximations
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool, Candidate
from repro.linalg import hs_distance
from repro.partition.blocks import CircuitBlock


def _pool_with_only_coarse(index: int) -> BlockPool:
    """A pool whose only non-original candidate is very coarse."""
    original = Circuit(2)
    original.cx(0, 1)
    original.rz(0.5, 1)
    original.cx(0, 1)
    block = CircuitBlock(
        index=index, qubits=(2 * index, 2 * index + 1), circuit=original
    )
    original_unitary = original.unitary()
    pool = BlockPool(block=block, original_unitary=original_unitary)
    pool.candidates.append(
        Candidate(
            circuit=original,
            unitary=original_unitary,
            distance=0.0,
            cnot_count=original.cnot_count(),
        )
    )
    coarse = Circuit(2)
    coarse.rz(3.0, 1)  # Wildly wrong phase, zero CNOTs.
    unitary = coarse.unitary()
    pool.candidates.append(
        Candidate(
            circuit=coarse,
            unitary=unitary,
            distance=hs_distance(unitary, original_unitary),
            cnot_count=0,
        )
    )
    return pool


def test_falls_back_to_baseline_when_only_coarse_candidates():
    # With a tiny threshold, the coarse candidates are infeasible; the
    # engine must select the all-original choice (QUEST degrades to the
    # Baseline rather than failing or going coarse).
    pools = [_pool_with_only_coarse(i) for i in range(2)]
    objective = SelectionObjective(
        pools=pools, threshold=0.01, original_cnot_count=4
    )
    result = select_approximations(objective, max_samples=4, seed=0)
    assert result.num_selected == 1
    assert list(result.choices[0]) == [0, 0]
    assert result.cnot_counts[0] == 4
    assert result.bounds[0] <= 0.01


def test_fallback_also_taken_on_annealer_path():
    pools = [_pool_with_only_coarse(i) for i in range(2)]
    objective = SelectionObjective(
        pools=pools, threshold=0.01, original_cnot_count=4
    )
    # Force the dual-annealing branch by disabling exhaustive search.
    result = select_approximations(
        objective, max_samples=2, seed=0, exhaustive_cutoff=0, maxiter=50
    )
    assert result.num_selected >= 1
    assert result.bounds[0] <= 0.01


def test_selected_set_cleared_between_runs():
    pools = [_pool_with_only_coarse(0)]
    objective = SelectionObjective(
        pools=pools, threshold=1.0, original_cnot_count=2
    )
    first = select_approximations(objective, max_samples=2, seed=0)
    second = select_approximations(objective, max_samples=2, seed=0)
    assert [list(c) for c in first.choices] == [
        list(c) for c in second.choices
    ]
    assert len(objective.selected) == second.num_selected


def test_choice_arrays_are_copies():
    pools = [_pool_with_only_coarse(0)]
    objective = SelectionObjective(
        pools=pools, threshold=1.0, original_cnot_count=2
    )
    result = select_approximations(objective, max_samples=2, seed=0)
    snapshot = [c.copy() for c in result.choices]
    for choice in result.choices:
        choice += 100  # Mutating the returned arrays...
    fresh = select_approximations(objective, max_samples=2, seed=0)
    # ...must not corrupt later selections.
    assert [list(c) for c in fresh.choices] == [list(c) for c in snapshot]


def test_raises_when_pool_has_no_feasible_candidate():
    import pytest

    from repro.exceptions import SelectionError

    original = Circuit(2)
    original.cx(0, 1)
    block = CircuitBlock(index=0, qubits=(0, 1), circuit=original)
    pool = BlockPool(block=block, original_unitary=original.unitary())
    coarse = Circuit(2)
    coarse.rz(3.0, 1)
    pool.candidates.append(
        Candidate(
            circuit=coarse,
            unitary=coarse.unitary(),
            distance=hs_distance(coarse.unitary(), original.unitary()),
            cnot_count=0,
        )
    )
    objective = SelectionObjective(
        pools=[pool], threshold=0.01, original_cnot_count=1
    )
    with pytest.raises(SelectionError):
        select_approximations(objective, max_samples=2, seed=0)
