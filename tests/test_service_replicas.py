"""Multi-replica e2e: N daemons sharing one sharded artifact store.

Two :class:`~repro.service.server.QuestService` replicas are booted
over the *same* ``--store-dir`` root (separate sockets, separate
ledgers — exactly the N-replica deployment the store exists for) and
driven with a duplicate-heavy workload.  The contracts:

* every replica's results are bit-identical to solo ``run_quest``;
* the second replica serves entries the first one published —
  cross-replica ``disk_hits > 0`` — instead of re-synthesizing;
* per-tenant namespaces stay isolated over the shared root, and the
  per-namespace counters surface in ``service-status``.
"""

from __future__ import annotations

import asyncio
import contextlib
import tempfile
import threading
from pathlib import Path

import pytest

from repro.algorithms import tfim
from repro.circuits import circuit_to_qasm
from repro.core.quest import QuestConfig, run_quest
from repro.exceptions import AdmissionRejected, ServiceError
from repro.service import QuestService, ServiceClient
from repro.store import ENTRY_SUFFIX

FAST = dict(
    seed=11,
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)


def _config(store_root) -> QuestConfig:
    return QuestConfig(
        **FAST, workers=1, cache=True, store_dir=str(store_root)
    )


def _payload_signature(payload: dict) -> dict:
    return {
        "choices": payload["choices"],
        "bounds": payload["bounds"],
        "cnot_counts": payload["cnot_counts"],
        "circuits": payload["circuits"],
    }


def _solo_signature(result) -> dict:
    return {
        "choices": [[int(i) for i in c] for c in result.selection.choices],
        "bounds": [float(b) for b in result.selection.bounds],
        "cnot_counts": result.cnot_counts,
        "circuits": [circuit_to_qasm(c) for c in result.circuits],
    }


@contextlib.contextmanager
def running_replica(ledger_dir, store_root):
    """One daemon replica over the shared ``store_root``."""
    sock_dir = tempfile.mkdtemp(dir="/tmp", prefix="qrep-")
    socket_path = str(Path(sock_dir) / "s.sock")
    service = QuestService(socket_path, str(ledger_dir), _config(store_root))
    thread = threading.Thread(
        target=lambda: asyncio.run(service.run()), daemon=True
    )
    thread.start()
    client = ServiceClient(socket_path)
    try:
        client.wait_until_ready(timeout=30.0)
        yield service, client
    finally:
        with contextlib.suppress(ServiceError):
            client.shutdown()
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "replica failed to shut down cleanly"


@pytest.fixture(scope="module")
def solo_reference():
    # No store: the baseline the replicas must match bit-for-bit.
    return run_quest(tfim(4, steps=2), QuestConfig(**FAST, workers=1))


def _default_ns(status: dict) -> dict:
    return status["store"]["namespaces"]["default"]


def test_replicas_share_store_and_stay_bit_identical(
    tmp_path, solo_reference
):
    """The acceptance run: two live replicas, one store root.

    Replica A compiles first (publishing every block pool); replica B
    then compiles the same circuit and must (a) hit the store for
    entries it never computed and (b) produce the same bits as solo.
    """
    store_root = tmp_path / "store"
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_replica(tmp_path / "ledger-a", store_root) as (_, a):
        with running_replica(tmp_path / "ledger-b", store_root) as (_, b):
            payload_a = a.submit_and_wait(qasm, timeout=300.0)
            assert _payload_signature(payload_a) == _solo_signature(
                solo_reference
            )
            status_a = a.status()
            assert str(store_root) == status_a["store"]["root"]
            assert _default_ns(status_a)["publishes"] > 0

            payload_b = b.submit_and_wait(qasm, timeout=300.0)
            assert _payload_signature(payload_b) == _solo_signature(
                solo_reference
            )
            ns_b = _default_ns(b.status())
            # B never compiled this circuit before: every one of its
            # disk hits is an entry replica A published.
            assert ns_b["disk_hits"] > 0
            assert ns_b["corrupt_entries"] == 0

    # The shared root holds sharded entries: <root>/<ns>/<shard>/<key>.
    entries = list(store_root.rglob(f"*{ENTRY_SUFFIX}"))
    assert entries
    for entry in entries:
        shard = entry.parent.name
        assert entry.parent.parent.parent == store_root
        assert len(shard) == 2 and entry.name.startswith(shard)


def test_store_survives_replica_restart(tmp_path, solo_reference):
    """A fresh replica over a used store serves from it immediately."""
    store_root = tmp_path / "store"
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_replica(tmp_path / "ledger-a", store_root) as (_, a):
        a.submit_and_wait(qasm, timeout=300.0)
    with running_replica(tmp_path / "ledger-b", store_root) as (_, b):
        payload = b.submit_and_wait(qasm, timeout=300.0)
        assert _payload_signature(payload) == _solo_signature(
            solo_reference
        )
        assert _default_ns(b.status())["disk_hits"] > 0


def test_tenant_namespaces_isolated_over_shared_root(
    tmp_path, solo_reference
):
    """Tenants never observe each other's artifacts, and the status
    document reports each tenant's counters separately."""
    store_root = tmp_path / "store"
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_replica(tmp_path / "ledger", store_root) as (_, client):
        for tenant in ("alice", "bob"):
            payload = client.submit_and_wait(
                qasm, tenant=tenant, timeout=300.0
            )
            assert _payload_signature(payload) == _solo_signature(
                solo_reference
            )
        namespaces = client.status()["store"]["namespaces"]
        assert set(namespaces) >= {"alice", "bob"}
        # Alice went first and published; bob's namespace starts empty,
        # so bob re-published everything rather than reading alice's.
        assert namespaces["alice"]["publishes"] > 0
        assert namespaces["bob"]["publishes"] > 0
        assert namespaces["bob"]["disk_hits"] == 0
        assert (store_root / "alice").is_dir()
        assert (store_root / "bob").is_dir()


def test_explicit_namespace_overrides_tenant_derivation(tmp_path):
    store_root = tmp_path / "store"
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_replica(tmp_path / "ledger", store_root) as (_, client):
        client.submit_and_wait(
            qasm, tenant="team/blue", namespace="shared-pool", timeout=300.0
        )
        namespaces = client.status()["store"]["namespaces"]
        assert "shared-pool" in namespaces
        assert "team_blue" not in namespaces
        assert (store_root / "shared-pool").is_dir()


def test_tenant_derived_namespace_is_sanitized(tmp_path):
    """A tenant name that is not filesystem-safe lands in a sanitized
    namespace instead of escaping the store root."""
    store_root = tmp_path / "store"
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_replica(tmp_path / "ledger", store_root) as (_, client):
        client.submit_and_wait(qasm, tenant="team/blue", timeout=300.0)
        assert "team_blue" in client.status()["store"]["namespaces"]
        assert (store_root / "team_blue").is_dir()
        assert not (store_root / "team").exists()


def test_invalid_namespace_rejected_at_admission(tmp_path):
    store_root = tmp_path / "store"
    qasm = circuit_to_qasm(tfim(4, steps=2))
    with running_replica(tmp_path / "ledger", store_root) as (_, client):
        with pytest.raises(AdmissionRejected) as excinfo:
            client.submit(qasm, namespace="../evil")
        assert excinfo.value.reason == "invalid_request"
        # The daemon is still healthy afterwards.
        assert client.status()["ready"]
