"""Tests for the analytic one-qubit (ZYZ / U3) decomposition."""

from __future__ import annotations

import cmath
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gate_matrix, random_unitary
from repro.circuits.gates import u3_matrix
from repro.exceptions import ReproError
from repro.linalg import u3_params, zyz_decompose, zyz_reconstruct
from repro.linalg.su2 import is_identity_angles


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_zyz_roundtrip_random(seed):
    u = random_unitary(2, np.random.default_rng(seed))
    theta, phi, lam, alpha = zyz_decompose(u)
    assert np.allclose(zyz_reconstruct(theta, phi, lam, alpha), u, atol=1e-8)


@pytest.mark.parametrize(
    "name", ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"]
)
def test_zyz_roundtrip_named_gates(name):
    u = gate_matrix(name)
    theta, phi, lam, alpha = zyz_decompose(u)
    assert np.allclose(zyz_reconstruct(theta, phi, lam, alpha), u, atol=1e-9)


def test_zyz_diagonal_case():
    u = np.diag([1.0, cmath.exp(0.7j)]).astype(complex)
    theta, phi, lam, alpha = zyz_decompose(u)
    assert theta == pytest.approx(0.0, abs=1e-9)
    assert np.allclose(zyz_reconstruct(theta, phi, lam, alpha), u, atol=1e-9)


def test_zyz_antidiagonal_case():
    u = np.array([[0, 1], [1, 0]], dtype=complex)
    theta, phi, lam, alpha = zyz_decompose(u)
    assert theta == pytest.approx(math.pi, abs=1e-9)
    assert np.allclose(zyz_reconstruct(theta, phi, lam, alpha), u, atol=1e-9)


def test_zyz_rejects_non_unitary():
    with pytest.raises(ReproError):
        zyz_decompose(np.ones((2, 2)))
    with pytest.raises(ReproError):
        zyz_decompose(np.eye(4))


def test_u3_params_roundtrip(rng):
    for _ in range(20):
        u = random_unitary(2, rng)
        theta, phi, lam, phase = u3_params(u)
        reconstructed = cmath.exp(1j * phase) * u3_matrix(theta, phi, lam)
        assert np.allclose(reconstructed, u, atol=1e-8)


def test_is_identity_angles():
    assert is_identity_angles(0.0, 0.0, 0.0)
    assert is_identity_angles(2 * math.pi, 0.3, -0.3)
    assert not is_identity_angles(0.1, 0.0, 0.0)
    assert not is_identity_angles(0.0, 0.2, 0.3)
