"""Tests for the ideal statevector simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, random_circuit
from repro.exceptions import SimulationError
from repro.sim import (
    counts_to_distribution,
    ideal_distribution,
    probabilities,
    run_statevector,
    sample_counts,
    zero_state,
)


def test_zero_state():
    state = zero_state(3)
    assert state[0] == 1.0
    assert np.linalg.norm(state) == pytest.approx(1.0)


def test_bell_state(bell_circuit):
    state = run_statevector(bell_circuit)
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1.0 / np.sqrt(2.0)
    assert np.allclose(state, expected)


def test_ghz_distribution(ghz3_circuit):
    probs = ideal_distribution(ghz3_circuit)
    assert probs[0] == pytest.approx(0.5)
    assert probs[7] == pytest.approx(0.5)
    assert probs[1:7].sum() == pytest.approx(0.0, abs=1e-12)


def test_custom_initial_state(bell_circuit):
    # Starting from |11> the Bell circuit produces (|10> - |01>)/sqrt(2)
    # up to signs; just check norm preservation and support.
    initial = np.zeros(4, dtype=complex)
    initial[3] = 1.0
    state = run_statevector(bell_circuit, initial_state=initial)
    assert np.linalg.norm(state) == pytest.approx(1.0)


def test_initial_state_shape_check(bell_circuit):
    with pytest.raises(SimulationError):
        run_statevector(bell_circuit, initial_state=np.zeros(8))


def test_measurements_ignored_in_evolution(bell_circuit):
    bell_circuit.measure_all()
    state = run_statevector(bell_circuit)
    assert np.linalg.norm(state) == pytest.approx(1.0)


def test_probabilities_requires_normalization():
    with pytest.raises(SimulationError):
        probabilities(np.array([1.0, 1.0], dtype=complex))


def test_evolution_preserves_norm(rng):
    circuit = random_circuit(4, 6, rng=rng)
    state = run_statevector(circuit)
    assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-10)


def test_sample_counts_distribution(rng):
    probs = np.array([0.25, 0.75])
    counts = sample_counts(probs, shots=10_000, rng=rng)
    assert counts[1] > counts[0]
    assert sum(counts.values()) == 10_000
    assert counts[1] / 10_000 == pytest.approx(0.75, abs=0.03)


def test_sample_counts_positive_shots():
    with pytest.raises(SimulationError):
        sample_counts(np.array([1.0]), shots=0)


def test_counts_roundtrip():
    counts = {0: 30, 3: 70}
    probs = counts_to_distribution(counts, dim=4)
    assert probs[0] == pytest.approx(0.3)
    assert probs[3] == pytest.approx(0.7)
    assert probs.sum() == pytest.approx(1.0)


def test_counts_to_distribution_validates():
    with pytest.raises(SimulationError):
        counts_to_distribution({}, dim=2)
    with pytest.raises(SimulationError):
        counts_to_distribution({9: 1}, dim=4)


def test_superposition_uniform():
    circuit = Circuit(3)
    for q in range(3):
        circuit.h(q)
    probs = ideal_distribution(circuit)
    assert np.allclose(probs, np.full(8, 1.0 / 8.0))
