"""Integration tests: observability threaded through the QUEST pipeline.

The tracing contract has two halves: the trace must *cover* the run
(every pipeline stage, worker-side events included), and it must not
*perturb* it (selections bit-identical with tracing on or off, on both
the inline and process-pool paths).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.algorithms import tfim
from repro.circuits import circuit_to_qasm
from repro.cli import main
from repro.core import QuestConfig, run_quest
from repro.observability import (
    JsonlSink,
    ListSink,
    Tracer,
    use_tracer,
)
from repro.resilience.faults import FaultInjector, FaultSpec

CONFIG = dict(
    seed=5,
    max_samples=3,
    max_block_qubits=2,
    threshold_per_block=0.3,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=2,
    max_optimizer_iterations=60,
    annealing_maxiter=50,
    block_time_budget=10.0,
    sphere_variants_per_count=1,
)


def _circuit():
    return tfim(3, steps=1)


def _span_names(records):
    return [r["name"] for r in records if r["type"] == "span"]


def _event_names(records):
    return [r["name"] for r in records if r["type"] == "event"]


def test_run_quest_emits_stage_spans_and_events():
    sink = ListSink()
    result = run_quest(
        _circuit(), QuestConfig(**CONFIG), tracer=Tracer(sink)
    )
    spans = _span_names(sink.records)
    for name in (
        "quest.run",
        "quest.partition",
        "quest.synthesis",
        "quest.selection",
        "quest.stitch",
    ):
        assert spans.count(name) == 1, name
    assert "synthesis.block" in spans
    events = _event_names(sink.records)
    assert "selection.round" in events
    assert "leap.layer" in events
    # The per-run metrics snapshot landed on the result.
    counters = result.metrics["counters"]
    assert counters["leap.synthesis_runs"] >= 1
    assert counters["selection.rounds"] >= 1
    assert result.metrics["gauges"]["partition.blocks"] == len(result.blocks)
    assert result.metrics["histograms"]["synthesis.pool_size"]["count"] >= 1


def test_untraced_run_still_snapshots_metrics():
    result = run_quest(_circuit(), QuestConfig(**CONFIG))
    assert result.metrics["counters"]["selection.rounds"] >= 1


@pytest.mark.parametrize("workers", [1, 2])
def test_selections_bit_identical_with_tracing(workers):
    config = QuestConfig(workers=workers, **CONFIG)
    plain = run_quest(_circuit(), config)
    traced = run_quest(_circuit(), config, tracer=Tracer(ListSink()))
    assert len(plain.selection.choices) == len(traced.selection.choices)
    for a, b in zip(plain.selection.choices, traced.selection.choices):
        assert np.array_equal(a, b)
    assert [circuit_to_qasm(c) for c in plain.circuits] == [
        circuit_to_qasm(c) for c in traced.circuits
    ]


def test_worker_records_are_marshalled_back():
    sink = ListSink()
    run_quest(
        _circuit(),
        QuestConfig(workers=2, **CONFIG),
        tracer=Tracer(sink),
    )
    worker_records = [
        r for r in sink.records if r.get("origin") == "worker"
    ]
    assert worker_records
    assert all(r["pid"] != os.getpid() for r in worker_records)
    assert "synthesis.block" in _span_names(worker_records)


def test_fault_injection_produces_retry_and_failure_events():
    sink = ListSink()
    injector = FaultInjector(specs=(FaultSpec("raise", None, 0),))
    result = run_quest(
        _circuit(),
        QuestConfig(retry_attempts=2, **CONFIG),
        fault_injector=injector,
        tracer=Tracer(sink),
    )
    events = _event_names(sink.records)
    assert "fault.injected" in events
    assert "synthesis.failure" in events
    assert "retry.attempt" in events
    assert not result.synthesis_fallbacks  # same-seed retry recovered
    counters = result.metrics["counters"]
    assert counters["retry.attempts"] >= 1
    assert counters["synthesis.failures.exception"] >= 1


def test_worker_fault_events_marshal_under_process_pool():
    """A fault fired inside a worker still lands in the parent trace."""
    sink = ListSink()
    injector = FaultInjector(specs=(FaultSpec("nan", 0, 0),), seed=3)
    run_quest(
        _circuit(),
        QuestConfig(workers=2, retry_attempts=2, **CONFIG),
        fault_injector=injector,
        tracer=Tracer(sink),
    )
    fault_events = [
        r
        for r in sink.records
        if r["type"] == "event" and r["name"] == "fault.injected"
    ]
    assert fault_events
    assert any(r.get("origin") == "worker" for r in fault_events)
    # The quarantine the fault provoked is visible too.
    assert "synthesis.failure" in _event_names(sink.records)


def test_trace_summary_stage_totals_match_timings(tmp_path):
    from repro.noise import NoiseModel
    from repro.observability import summarize_trace

    path = tmp_path / "run.trace"
    tracer = Tracer(JsonlSink(path))
    result = run_quest(_circuit(), QuestConfig(**CONFIG), tracer=tracer)
    with use_tracer(tracer):
        result.noisy_ensemble(
            NoiseModel.from_noise_level(0.01), trajectories=50
        )
    tracer.close()
    totals = summarize_trace(path).stage_totals()
    expected = {
        "partition": result.timings.partition_seconds,
        "synthesis": result.timings.synthesis_seconds,
        "selection": result.timings.selection_seconds,
        "noisy_eval": result.timings.noisy_eval_seconds,
    }
    assert set(totals) == set(expected)
    for stage, timing in expected.items():
        # Within 5%, with an absolute floor for the near-zero stages
        # where relative error is dominated by clock granularity.
        assert totals[stage] == pytest.approx(timing, rel=0.05, abs=0.02), (
            stage
        )


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def _write_input(tmp_path):
    qasm_path = tmp_path / "in.qasm"
    qasm_path.write_text(circuit_to_qasm(_circuit()))
    return qasm_path


def _base_args(tmp_path, qasm_path):
    return [
        str(qasm_path),
        "--out-dir", str(tmp_path / "out"),
        "--threshold", "0.3",
        "--max-samples", "2",
        "--block-qubits", "2",
        "--time-budget", "10",
        "--seed", "1",
    ]


def test_cli_trace_and_metrics_flags(tmp_path, capsys):
    qasm_path = _write_input(tmp_path)
    trace_path = tmp_path / "run.trace"
    metrics_path = tmp_path / "metrics.json"
    code = main(
        _base_args(tmp_path, qasm_path)
        + [
            "--trace-file", str(trace_path),
            "--metrics-json", str(metrics_path),
        ]
    )
    assert code == 0
    records = [
        json.loads(line)
        for line in trace_path.read_text().strip().splitlines()
    ]
    assert {"quest.partition", "quest.synthesis", "quest.selection"} <= set(
        _span_names(records)
    )
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["selection.rounds"] >= 1
    out = capsys.readouterr().out
    assert str(trace_path) in out
    assert str(metrics_path) in out

    # The trace-summary subcommand renders the same file.
    assert main(["trace-summary", str(trace_path)]) == 0
    summary_out = capsys.readouterr().out
    assert "pipeline stages:" in summary_out
    assert "quest.synthesis" in summary_out


def test_cli_trace_summary_missing_file(tmp_path, capsys):
    code = main(["trace-summary", str(tmp_path / "nope.trace")])
    assert code == 2
    assert "error reading" in capsys.readouterr().err


def test_cli_log_level_silences_stdout_diagnostics(tmp_path, capsys):
    qasm_path = _write_input(tmp_path)
    code = main(
        _base_args(tmp_path, qasm_path) + ["--log-level", "warning"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "CNOTs" not in captured.out
    # The run itself still happened.
    assert sorted((tmp_path / "out").glob("approx_*.qasm"))


def test_cli_fault_records_go_to_stderr_at_warning_level(tmp_path, capsys):
    qasm_path = _write_input(tmp_path)
    code = main(
        _base_args(tmp_path, qasm_path)
        + ["--inject-faults", "raise@0:0", "--log-level", "warning"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "[exception]" in captured.err
    assert "fault: block 0" in captured.err
