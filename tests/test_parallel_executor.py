"""Fault injection and accounting tests for the synthesis executor.

The injected worker tasks are module-level functions so the process-pool
path can pickle them by reference.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.parallel.executor as executor_module
from repro.algorithms import tfim
from repro.core.quest import QuestConfig, QuestTimings, run_quest
from repro.parallel.cache import PoolCache
from repro.parallel.executor import (
    BlockSynthesisExecutor,
    _synthesize_solutions_task,
)
from repro.parallel.pool_manager import PersistentWorkerPool
from repro.partition.scan import scan_partition
from repro.resilience.retry import RetryPolicy
from repro.transpile.basis import lower_to_basis

CONFIG = QuestConfig(
    seed=3,
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)


def _blocks():
    baseline = lower_to_basis(tfim(4, steps=1).without_measurements())
    return scan_partition(baseline, CONFIG.max_block_qubits)


def _seeds(blocks):
    rng = np.random.default_rng(CONFIG.seed)
    return [int(rng.integers(2**31 - 1)) for _ in blocks]


# Injected worker tasks ------------------------------------------------
def always_raises(block, config, seed):
    raise RuntimeError("injected synthesis failure")


def raises_for_first_block(block, config, seed):
    if block.index == 0:
        raise RuntimeError("injected failure for block 0")
    return _synthesize_solutions_task(block, config, seed)


def sleeps_forever(block, config, seed):
    time.sleep(5.0)
    return [], 5.0


# ----------------------------------------------------------------------
# Fallback semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2], ids=["inline", "process-pool"])
def test_raising_worker_degrades_to_exact_pool(workers):
    blocks = _blocks()
    runner = BlockSynthesisExecutor(workers=workers, synthesize_fn=always_raises)
    with pytest.warns(RuntimeWarning, match="falling back to the exact block"):
        pools, stats = runner.run(blocks, CONFIG, _seeds(blocks))
    assert len(pools) == len(blocks)
    nontrivial = [
        i
        for i, b in enumerate(blocks)
        if b.num_qubits > 1 and b.circuit.cnot_count() > 0
    ]
    assert stats.fallback_blocks == nontrivial
    for index in nontrivial:
        pool = pools[index]
        # The exact-block singleton: one candidate, distance zero, the
        # original circuit itself.
        assert pool.size == 1
        assert pool.candidates[0].distance == 0.0
        assert pool.candidates[0].circuit == blocks[index].circuit


def test_partial_failure_only_degrades_the_failing_block():
    blocks = _blocks()
    runner = BlockSynthesisExecutor(
        workers=1, synthesize_fn=raises_for_first_block
    )
    with pytest.warns(RuntimeWarning):
        pools, stats = runner.run(blocks, CONFIG, _seeds(blocks))
    # Blocks 0 and 1 are content-identical, so they dedup to a single
    # job (the injected fault is index-keyed, but real synthesis depends
    # only on content): the failing job degrades exactly the blocks it
    # serves, and no unrelated block.
    assert stats.fallback_blocks == [0, 1]
    assert pools[0].size == 1
    assert pools[1].size == 1
    # The unrelated block still produced real approximations.
    assert any(pool.size > 1 for pool in pools[2:])


def test_timed_out_worker_degrades_to_exact_pool():
    blocks = _blocks()[:1]
    runner = BlockSynthesisExecutor(
        workers=2, hard_timeout=0.3, synthesize_fn=sleeps_forever
    )
    start = time.perf_counter()
    with pytest.warns(RuntimeWarning, match="TimeoutError"):
        pools, stats = runner.run(blocks, CONFIG, _seeds(blocks))
    elapsed = time.perf_counter() - start
    assert stats.fallback_blocks == [0]
    assert pools[0].size == 1
    # The run must not have waited for the hung worker's full sleep.
    assert elapsed < 4.0


def test_run_quest_completes_despite_universal_worker_failure(monkeypatch):
    monkeypatch.setattr(
        executor_module, "_synthesize_solutions_task", always_raises
    )
    with pytest.warns(RuntimeWarning):
        result = run_quest(tfim(4, steps=1), CONFIG)
    # Every pool degraded to the exact block, so QUEST returns the
    # baseline itself: a completed run, never a crash.
    assert result.circuits
    assert result.synthesis_fallbacks
    assert result.best_cnot_count == result.original_cnot_count
    # Timings still reconcile after the fallback path.
    timings = result.timings
    assert timings.total_seconds == pytest.approx(
        timings.partition_seconds
        + timings.synthesis_seconds
        + timings.annealing_seconds
    )


# ----------------------------------------------------------------------
# Persistent pool reuse / recycling
# ----------------------------------------------------------------------
def test_retry_rounds_reuse_one_persistent_pool():
    """A plain worker exception leaves the pool healthy: the retry round
    reuses it instead of paying pool construction again."""
    blocks = _blocks()
    pool = PersistentWorkerPool(2)
    runner = BlockSynthesisExecutor(
        workers=2,
        synthesize_fn=raises_for_first_block,
        retry_policy=RetryPolicy(max_attempts=2),
        worker_pool=pool,
    )
    try:
        with pytest.warns(RuntimeWarning):
            pools, stats = runner.run(blocks, CONFIG, _seeds(blocks))
    finally:
        pool.shutdown()
    assert stats.fallback_blocks  # the injected failure did exhaust retries
    assert pool.rounds_served == 2
    assert pool.pools_created == 1
    assert pool.recycles == 0
    assert pool.reuses == 1


def test_hard_timeout_recycles_the_persistent_pool():
    """A hung worker marks the pool unhealthy; the next round gets a
    fresh pool rather than inheriting the occupied process."""
    blocks = _blocks()[:1]
    pool = PersistentWorkerPool(2)
    runner = BlockSynthesisExecutor(
        workers=2,
        hard_timeout=0.3,
        synthesize_fn=sleeps_forever,
        retry_policy=RetryPolicy(max_attempts=2),
        worker_pool=pool,
    )
    try:
        with pytest.warns(RuntimeWarning, match="TimeoutError"):
            pools, stats = runner.run(blocks, CONFIG, _seeds(blocks))
    finally:
        pool.shutdown()
    assert stats.fallback_blocks == [0]
    assert pool.rounds_served == 2
    assert pool.pools_created == 2
    assert pool.recycles == 1


def test_executor_without_external_pool_owns_its_lifecycle():
    """No shared pool supplied: the executor builds one for the run and
    shuts it down on exit (no lingering process pools)."""
    blocks = _blocks()
    runner = BlockSynthesisExecutor(workers=2, synthesize_fn=always_raises)
    with pytest.warns(RuntimeWarning):
        runner.run(blocks, CONFIG, _seeds(blocks))
    # Nothing to assert on the (internal, already shut down) pool beyond
    # the run completing; the external-pool tests above cover accounting.
    assert runner.worker_pool is None


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
def test_timings_total_reconciles_with_per_block_list():
    timings = QuestTimings(
        partition_seconds=0.5,
        synthesis_seconds=2.0,
        annealing_seconds=1.0,
        block_synthesis_seconds=[0.9, 0.0, 0.8],
    )
    # The per-block entries are detail *within* synthesis_seconds, not an
    # extra term: the total is exactly the three phases.
    assert timings.total_seconds == pytest.approx(3.5)


def test_stats_counters_partition_the_blocks():
    blocks = _blocks()
    seeds = _seeds(blocks)
    trivial = sum(
        1
        for b in blocks
        if b.num_qubits == 1 or b.circuit.cnot_count() == 0
    )
    pools, stats = BlockSynthesisExecutor(
        workers=1, cache=PoolCache()
    ).run(blocks, CONFIG, seeds)
    assert stats.cache_hits + stats.cache_misses + trivial == len(blocks)
    assert len(stats.block_seconds) == len(blocks)
    # Only synthesized blocks carry nonzero per-block time.
    assert sum(1 for s in stats.block_seconds if s > 0) == stats.cache_misses

    pools_nc, stats_nc = BlockSynthesisExecutor(workers=1).run(
        blocks, CONFIG, seeds
    )
    assert stats_nc.cache_hits == 0
    # With the cache off, repeats dedup to one dispatched job each and
    # count as dedup joins instead of cache hits.
    assert stats_nc.cache_misses + stats_nc.dedup_joins == len(blocks) - trivial
    assert stats_nc.dedup_joins == stats.cache_hits
    # Cache on and off produce identical pools.
    for a, b in zip(pools, pools_nc):
        assert a.cnot_counts().tolist() == b.cnot_counts().tolist()
        assert a.distances().tolist() == b.distances().tolist()


def test_executor_argument_validation():
    with pytest.raises(ValueError, match="workers"):
        BlockSynthesisExecutor(workers=0)
    blocks = _blocks()
    with pytest.raises(ValueError, match="seeds"):
        BlockSynthesisExecutor().run(blocks, CONFIG, [1, 2])
