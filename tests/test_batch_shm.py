"""Shared-memory envelope transport: round-trips, fallbacks, integrity.

Everything here runs in one process — encode plays the worker, decode
plays the driver.  The cross-process path is exercised end-to-end by
``tests/test_batch_driver.py`` and the batch throughput benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.shm import (
    DEFAULT_MIN_BYTES,
    ENVELOPE_VERSION,
    ShmEnvelope,
    ShmTransportError,
    decode_payload,
    discard_envelope,
    encode_payload,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks POSIX shared memory"
)


def _payload(rng: np.random.Generator, count: int = 3, dim: int = 64):
    arrays = [
        rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))
        for _ in range(count)
    ]
    return {"arrays": arrays, "label": "candidates", "count": count}


def _attach(name):
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def test_large_payload_rides_shared_memory(rng):
    payload = _payload(rng)
    envelope = encode_payload(payload, min_bytes=1)
    assert envelope.via == "shm"
    assert envelope.total_bytes >= sum(a.nbytes for a in payload["arrays"])
    decoded = decode_payload(envelope)
    assert decoded["label"] == "candidates"
    for original, roundtripped in zip(payload["arrays"], decoded["arrays"]):
        assert np.array_equal(original, roundtripped)
        # The driver must receive ordinary writable arrays, not views
        # pinned to a (long-gone) mapping.
        assert roundtripped.flags.writeable
        roundtripped[0, 0] = 0


def test_decode_unlinks_the_segment(rng):
    envelope = encode_payload(_payload(rng), min_bytes=1)
    decode_payload(envelope)
    with pytest.raises((FileNotFoundError, OSError)):
        _attach(envelope.segment)


def test_small_payload_falls_back_to_inline_pickle(rng):
    payload = _payload(rng, count=1, dim=2)  # far below DEFAULT_MIN_BYTES
    envelope = encode_payload(payload)
    assert envelope.via == "pickle"
    assert envelope.segment is None
    decoded = decode_payload(envelope)
    assert np.array_equal(decoded["arrays"][0], payload["arrays"][0])


def test_default_threshold_is_sane():
    assert DEFAULT_MIN_BYTES > 0


def test_checksum_tamper_is_detected(rng):
    envelope = encode_payload(_payload(rng), min_bytes=1)
    segment = _attach(envelope.segment)
    try:
        segment.buf[0] = segment.buf[0] ^ 0xFF
    finally:
        segment.close()
    with pytest.raises(ShmTransportError, match="checksum"):
        decode_payload(envelope)
    # Even the failed decode released the segment: no /dev/shm leak.
    with pytest.raises((FileNotFoundError, OSError)):
        _attach(envelope.segment)


def test_unknown_version_is_rejected():
    envelope = ShmEnvelope(
        version=ENVELOPE_VERSION + 1, via="pickle", meta=b"", payload=b""
    )
    with pytest.raises(ShmTransportError, match="version"):
        decode_payload(envelope)


def test_unknown_transport_is_rejected():
    envelope = ShmEnvelope(version=ENVELOPE_VERSION, via="carrier-pigeon", meta=b"")
    with pytest.raises(ShmTransportError, match="transport"):
        decode_payload(envelope)


def test_non_envelope_payload_passes_through():
    payload = (["solutions"], 1.25)
    assert decode_payload(payload) is payload


def test_discard_envelope_unlinks_without_decoding(rng):
    envelope = encode_payload(_payload(rng), min_bytes=1)
    discard_envelope(envelope)
    with pytest.raises((FileNotFoundError, OSError)):
        _attach(envelope.segment)
    # Idempotent, and safe on inline envelopes / foreign objects.
    discard_envelope(envelope)
    discard_envelope(encode_payload({"x": 1}))
    discard_envelope("not an envelope")
