"""Tests for the Sec. 3.8 process-distance upper bound.

The theorem test perturbs partitioned blocks and checks
``actual <= sum of block distances`` — the property Fig. 7 demonstrates
empirically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, random_circuit
from repro.core.bounds import BoundCheck, total_bound, verify_bound
from repro.partition import scan_partition


def _perturbed(circuit: Circuit, rng: np.random.Generator, scale: float) -> Circuit:
    """Randomly jitter every rotation angle (an 'approximation')."""
    out = Circuit(circuit.num_qubits)
    for op in circuit.operations:
        if op.params:
            jittered = tuple(
                p + float(rng.normal(0.0, scale)) for p in op.params
            )
            out.add_gate(op.name, op.qubits, jittered)
        else:
            out.append(op)
    return out


def test_total_bound_sums():
    assert total_bound([0.1, 0.2, 0.05]) == pytest.approx(0.35)


def test_bound_check_properties():
    check = BoundCheck(actual_distance=0.1, upper_bound=0.3)
    assert check.holds
    assert check.tightness == pytest.approx(1.0 / 3.0)
    assert BoundCheck(actual_distance=0.0, upper_bound=0.0).tightness == 1.0


def test_exact_blocks_have_zero_bound(rng):
    circuit = random_circuit(4, 4, rng=rng)
    blocks = scan_partition(circuit, max_block_qubits=3)
    check = verify_bound(circuit, blocks, blocks)
    # HS distances of identical unitaries are ~1e-8 in float64 (sqrt of a
    # cancelled difference), so "zero" here means below that noise floor.
    assert check.upper_bound == pytest.approx(0.0, abs=1e-6)
    assert check.actual_distance < 1e-6


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    scale=st.floats(0.01, 0.5),
    n=st.integers(3, 5),
)
def test_bound_theorem_holds(seed, scale, n):
    gen = np.random.default_rng(seed)
    circuit = random_circuit(n, 4, rng=gen)
    blocks = scan_partition(circuit, max_block_qubits=3)
    approx_blocks = [
        block.with_circuit(_perturbed(block.circuit, gen, scale))
        for block in blocks
    ]
    check = verify_bound(circuit, blocks, approx_blocks)
    assert check.holds, (check.actual_distance, check.upper_bound)


def test_bound_is_reasonably_tight_for_single_block(rng):
    # With one block the bound is exact by definition.
    circuit = random_circuit(3, 3, rng=rng)
    blocks = scan_partition(circuit, max_block_qubits=3)
    if len(blocks) == 1:
        approx = [blocks[0].with_circuit(_perturbed(blocks[0].circuit, rng, 0.2))]
        check = verify_bound(circuit, blocks, approx)
        assert check.tightness == pytest.approx(1.0, abs=1e-6)
