"""Overload smoke test: saturate a tiny queue from many client threads.

The claim under test is the robustness tentpole's backpressure story:
when the bounded queue fills, submissions are *rejected structurally*
(reason + queue context, not a hang or a stack trace), every admitted
job still reaches a terminal state, the daemon never deadlocks, and it
shuts down cleanly afterwards with zero stranded joiners.

When ``SERVICE_ARTIFACT_DIR`` is set (the CI service job does this),
the final metrics snapshot is written there as JSON for upload.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.algorithms import tfim
from repro.circuits import circuit_to_qasm
from repro.core.quest import QuestConfig
from repro.exceptions import AdmissionRejected, ServiceError
from repro.service import QuestService, ServiceClient

FAST = dict(
    seed=11,
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)

CAPACITY = 3
TENANTS = ("alpha", "beta", "gamma")
SUBMITS_PER_TENANT = 6


def _dump_artifact(name: str, payload: dict) -> None:
    artifact_dir = os.environ.get("SERVICE_ARTIFACT_DIR")
    if not artifact_dir:
        return
    path = Path(artifact_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{name}.json").write_text(json.dumps(payload, indent=2))


def test_queue_saturation_rejects_structurally_and_drains_clean(tmp_path):
    sock_dir = tempfile.mkdtemp(dir="/tmp", prefix="qovl-")
    socket_path = str(Path(sock_dir) / "s.sock")
    config = QuestConfig(**FAST, workers=1, cache=True)
    service = QuestService(
        socket_path,
        tmp_path / "ledger",
        config=config,
        capacity=CAPACITY,
        max_concurrency=1,
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(service.run()), daemon=True
    )
    thread.start()
    client = ServiceClient(socket_path)
    client.wait_until_ready(timeout=30.0)

    qasm = circuit_to_qasm(tfim(4, steps=2))
    accepted: list[str] = []
    rejections: list[AdmissionRejected] = []
    lock = threading.Lock()

    def flood(tenant: str) -> None:
        local = ServiceClient(socket_path)
        for _ in range(SUBMITS_PER_TENANT):
            try:
                job_id = local.submit(qasm, tenant=tenant)
                with lock:
                    accepted.append(job_id)
            except AdmissionRejected as exc:
                with lock:
                    rejections.append(exc)

    try:
        with ThreadPoolExecutor(max_workers=len(TENANTS)) as pool:
            list(pool.map(flood, TENANTS))

        # Backpressure fired: the queue is far smaller than the flood,
        # so some jobs got in and the rest were refused with structure.
        assert accepted, "a saturated daemon should still admit some work"
        assert rejections, "flooding a capacity-3 queue never rejected"
        for exc in rejections:
            assert exc.reason == "queue_full"
            assert exc.capacity == CAPACITY
            assert exc.queue_depth >= CAPACITY
            assert exc.tenant in TENANTS

        # No deadlock: every admitted job reaches a terminal state.
        terminal_states = {
            job_id: client.wait(job_id, timeout=300.0)["state"]
            for job_id in accepted
        }
        assert set(terminal_states.values()) == {"done"}

        status = client.status()
        assert status["rejected"]["queue_full"] == len(rejections)
        assert status["admitted"] == len(accepted)
        assert status["jobs_by_state"]["done"] == len(accepted)
        assert status["stranded_joiners"] == 0
        _dump_artifact(
            "overload_metrics",
            {
                "accepted": len(accepted),
                "rejected": len(rejections),
                "capacity": CAPACITY,
                "status": status,
            },
        )
    finally:
        with contextlib.suppress(ServiceError):
            client.shutdown()
        thread.join(timeout=60.0)
    assert not thread.is_alive(), "daemon wedged during post-overload stop"
