"""Tests for instantiation, the LEAP compiler, and 2-qubit decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, gate_matrix, random_unitary
from repro.exceptions import SynthesisError
from repro.linalg import hs_distance
from repro.sim import circuit_unitary
from repro.synthesis import (
    LeapConfig,
    build_leap_ansatz,
    decompose_two_qubit,
    instantiate,
    synthesize,
)


class TestInstantiate:
    def test_recovers_own_circuit(self, rng):
        ansatz = build_leap_ansatz(2, [(0, 1)])
        truth = rng.uniform(-np.pi, np.pi, ansatz.num_params)
        target = ansatz.unitary(truth)
        result = instantiate(ansatz, target, rng=rng, starts=4)
        assert result.cost < 1e-9

    def test_distance_property(self, rng):
        ansatz = build_leap_ansatz(2, [])
        target = random_unitary(4, rng)
        result = instantiate(ansatz, target, rng=rng, starts=2)
        overlap = 1.0 - result.cost
        assert result.distance == pytest.approx(
            np.sqrt(1.0 - overlap**2), abs=1e-12
        )

    def test_warm_start_used(self, rng):
        ansatz = build_leap_ansatz(2, [(0, 1)])
        truth = rng.uniform(-np.pi, np.pi, ansatz.num_params)
        target = ansatz.unitary(truth)
        result = instantiate(
            ansatz, target, rng=rng, starts=1, initial_params=truth
        )
        assert result.cost < 1e-10

    def test_shape_validation(self, rng):
        ansatz = build_leap_ansatz(2, [])
        with pytest.raises(SynthesisError):
            instantiate(ansatz, np.eye(8), rng=rng)
        with pytest.raises(SynthesisError):
            instantiate(ansatz, np.eye(4), rng=rng, starts=0)
        with pytest.raises(SynthesisError):
            instantiate(
                ansatz, np.eye(4, dtype=complex), rng=rng,
                initial_params=np.zeros(3),
            )


class TestLeap:
    def test_one_qubit_exact(self, rng):
        target = random_unitary(2, rng)
        report = synthesize(target)
        assert report.best is not None
        assert report.best.cnot_count == 0
        built = report.best.circuit.unitary()
        assert hs_distance(built, target) < 1e-7

    def test_collects_solutions_per_layer(self, rng):
        target = random_unitary(4, rng)
        config = LeapConfig(max_layers=3, seed=1, solutions_per_layer=2)
        report = synthesize(target, config)
        cnot_counts = {s.cnot_count for s in report.solutions}
        assert cnot_counts == {0, 1, 2, 3}

    def test_exact_on_structured_circuit(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(0.3, 1)
        target = circuit_unitary(circuit)
        config = LeapConfig(max_layers=2, seed=0, instantiation_starts=4)
        report = synthesize(target, config)
        assert report.best.distance < 1e-6
        assert report.best.cnot_count <= 2

    def test_distances_decrease_with_depth(self, rng):
        target = random_unitary(8, rng)
        config = LeapConfig(max_layers=4, seed=2, solutions_per_layer=1)
        report = synthesize(target, config)
        best_by_layer = {}
        for solution in report.solutions:
            best_by_layer[solution.cnot_count] = min(
                best_by_layer.get(solution.cnot_count, 1.0), solution.distance
            )
        layers = sorted(best_by_layer)
        # Non-strictly decreasing overall trend: last depth beats depth 0.
        assert best_by_layer[layers[-1]] <= best_by_layer[0] + 1e-9
        assert report.layers_explored == 4
        assert report.instantiations > 4

    def test_dimension_must_be_power_of_two(self):
        with pytest.raises(SynthesisError):
            synthesize(np.eye(3))

    def test_time_budget_stops_early(self, rng):
        target = random_unitary(8, rng)
        config = LeapConfig(max_layers=30, seed=0, time_budget=1.0)
        report = synthesize(target, config)
        assert report.layers_explored < 30


class TestTwoQubitDecomposition:
    def test_random_unitaries(self, rng):
        for seed in range(5):
            target = random_unitary(4, rng)
            circuit = decompose_two_qubit(target, rng=seed)
            assert circuit.cnot_count() <= 3
            assert hs_distance(circuit_unitary(circuit), target) < 1e-6

    def test_tensor_product_needs_no_cnots(self, rng):
        target = np.kron(random_unitary(2, rng), random_unitary(2, rng))
        circuit = decompose_two_qubit(target)
        assert circuit.cnot_count() == 0
        assert hs_distance(circuit_unitary(circuit), target) < 1e-7

    @pytest.mark.parametrize(
        "name,expected", [("cx", 1), ("cz", 1), ("swap", 3)]
    )
    def test_named_gates_minimal(self, name, expected):
        circuit = decompose_two_qubit(gate_matrix(name), rng=0)
        assert circuit.cnot_count() == expected

    def test_shape_validation(self):
        with pytest.raises(SynthesisError):
            decompose_two_qubit(np.eye(8))
