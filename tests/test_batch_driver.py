"""Batch compilation driver: shared substrate, bit-identical selections.

The contract under test: :func:`repro.batch.run_quest_batch` is a pure
performance layer.  Per-circuit selections, CNOT counts, and bounds are
byte-identical to running each circuit alone, while the shared cache,
in-flight registry, and persistent worker pool collapse duplicate
synthesis work across the whole batch.
"""

from __future__ import annotations

import pytest

import repro.parallel.executor as executor_module
from repro.algorithms import qft, tfim
from repro.batch import run_quest_batch
from repro.batch.workqueue import InflightRegistry
from repro.circuits.random_circuits import random_circuit
from repro.core.quest import QuestConfig, run_quest
from repro.parallel.pool_manager import PersistentWorkerPool

FAST = dict(
    seed=11,
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)


def _circuits():
    return [tfim(4, steps=2), qft(4), random_circuit(4, depth=3, rng=5)]


def _signature(result):
    return {
        "choices": [
            tuple(int(i) for i in choice)
            for choice in result.selection.choices
        ],
        "cnot_counts": result.cnot_counts,
        "bounds": result.selection.bounds,
        "pool_distances": [
            pool.distances().tolist() for pool in result.pools
        ],
    }


@pytest.fixture(scope="module")
def solo_reference():
    """Each circuit compiled alone: the baseline a batch must match."""
    config = QuestConfig(**FAST, workers=1, cache=True)
    return [run_quest(circuit, config) for circuit in _circuits()]


# ----------------------------------------------------------------------
# Bit-identity
# ----------------------------------------------------------------------
def test_batch_matches_solo_bit_for_bit(solo_reference):
    config = QuestConfig(**FAST, workers=1, cache=True)
    batch = run_quest_batch(_circuits(), config, window=2)
    assert len(batch.results) == len(solo_reference)
    for got, want in zip(batch.results, solo_reference):
        assert _signature(got) == _signature(want)
    assert batch.wall_seconds > 0
    assert "circuits" in batch.summary()


def test_sequential_window_matches_solo(solo_reference):
    """window=1 (no overlap) still shares cache/pool and stays identical."""
    config = QuestConfig(**FAST, workers=1, cache=True)
    batch = run_quest_batch(_circuits(), config, window=1)
    for got, want in zip(batch.results, solo_reference):
        assert _signature(got) == _signature(want)


@pytest.mark.slow
@pytest.mark.parametrize("shm", [False, True], ids=["pickle", "shm"])
@pytest.mark.parametrize("workers", [1, 4])
def test_batch_matrix_bit_identity(solo_reference, workers, shm):
    """The acceptance matrix: workers x transport, all bit-identical."""
    config = QuestConfig(
        **FAST,
        workers=workers,
        cache=True,
        shm_transport=shm,
        shm_min_bytes=1 if shm else None,
    )
    batch = run_quest_batch(_circuits(), config, window=3)
    for got, want in zip(batch.results, solo_reference):
        assert _signature(got) == _signature(want)
    if workers > 1:
        assert batch.pools_created >= 1
        if shm:
            assert batch.shm_bytes_saved > 0


# ----------------------------------------------------------------------
# Dedup accounting (the in-flight regression test)
# ----------------------------------------------------------------------
def test_duplicate_circuits_synthesize_each_key_exactly_once(monkeypatch):
    """Two copies of one circuit, cache off: every unique key dispatches
    one synthesis; the twin's blocks all resolve through the registry."""
    dispatched = []
    real_task = executor_module._synthesize_solutions_task

    def recording_task(block, config, seed):
        dispatched.append((block.index, seed))
        return real_task(block, config, seed)

    monkeypatch.setattr(
        executor_module, "_synthesize_solutions_task", recording_task
    )
    config = QuestConfig(**FAST, workers=1, cache=False)
    solo = run_quest(tfim(4, steps=2), config)
    unique = solo.cache_misses  # cache off: misses == unique planned jobs
    assert unique > 0

    dispatched.clear()
    batch = run_quest_batch(
        [tfim(4, steps=2), tfim(4, steps=2)], config, window=2
    )
    # Zero duplicate syntheses batch-wide, even with no cache to lean on.
    assert len(dispatched) == unique
    # Each run still *plans* its own jobs; the twin's jobs all attach to
    # the first circuit's (in-flight or resolved) registry entries.
    assert batch.cache_misses == 2 * unique
    assert batch.inflight_joins == unique
    assert batch.cache_hits == 0
    assert batch.dedup_joins >= unique
    for result in batch.results:
        assert _signature(result) == _signature(solo)


def test_batch_shares_cache_across_circuits(solo_reference):
    """Identical circuits with the cache on: the second costs no misses."""
    config = QuestConfig(**FAST, workers=1, cache=True)
    batch = run_quest_batch(
        [tfim(4, steps=2), tfim(4, steps=2)], config, window=1
    )
    first, second = batch.results
    assert _signature(first) == _signature(solo_reference[0])
    assert _signature(second) == _signature(solo_reference[0])
    assert second.cache_misses == 0
    assert batch.cache_misses == first.cache_misses


# ----------------------------------------------------------------------
# Driver validation
# ----------------------------------------------------------------------
def test_empty_batch_is_rejected():
    with pytest.raises(ValueError, match="at least one circuit"):
        run_quest_batch([], QuestConfig(**FAST))


def test_window_must_be_positive():
    with pytest.raises(ValueError, match="window"):
        run_quest_batch([tfim(4, steps=1)], QuestConfig(**FAST), window=0)


# ----------------------------------------------------------------------
# InflightRegistry unit behaviour
# ----------------------------------------------------------------------
def test_inflight_claim_join_publish_cycle():
    registry = InflightRegistry()
    owner, other = object(), object()
    assert registry.claim("k", owner) is None
    # Re-claim by the same owner (a retry round): still ours, no join.
    assert registry.claim("k", owner) is None
    entry = registry.claim("k", other)
    assert entry is not None and not entry.resolved
    registry.publish("k", owner, ["solutions"], ["unitaries"])
    assert entry.wait(1.0)
    assert entry.solutions == ["solutions"]
    assert entry.unitaries == ["unitaries"]
    assert registry.joins == 1 and registry.published == 1
    # Resolved entries persist: later claims adopt without waiting.
    late = registry.claim("k", object())
    assert late is not None and late.resolved


def test_inflight_fail_wakes_joiner_empty_handed():
    registry = InflightRegistry()
    owner, other = object(), object()
    registry.claim("k", owner)
    entry = registry.claim("k", other)
    registry.fail("k", owner)
    assert entry.wait(1.0) is False
    # The key is claimable again — by anyone.
    assert registry.claim("k", other) is None
    assert registry.published == 0


def test_inflight_publish_and_fail_require_ownership():
    registry = InflightRegistry()
    owner, other = object(), object()
    registry.claim("k", owner)
    entry = registry.claim("k", other)
    registry.publish("k", other, ["stolen"])
    registry.fail("k", other)
    assert not entry.event.is_set()


def test_inflight_release_wakes_unresolved_keeps_resolved():
    registry = InflightRegistry()
    owner, other = object(), object()
    registry.claim("k1", owner)
    registry.claim("k2", owner)
    registry.publish("k1", owner, ["s"])
    pending = registry.claim("k2", other)
    registry.release(owner)
    assert pending.event.is_set() and not pending.ok
    kept = registry.claim("k1", other)
    assert kept is not None and kept.resolved


def test_inflight_fail_is_idempotent_under_double_invocation():
    """Regression: fail-then-fail (an explicit fail racing the owner's
    ``finally`` release) must be a no-op, and must never drop an entry
    another owner has since re-claimed."""
    registry = InflightRegistry()
    owner = object()
    registry.claim("k", owner)
    registry.fail("k", owner)
    registry.fail("k", owner)  # double fail: no-op
    registry.release(owner)    # release after fail: no-op
    # A new owner re-claims the key...
    successor = object()
    assert registry.claim("k", successor) is None
    # ...and the stale owner's late duplicate fail must not evict it.
    registry.fail("k", owner)
    joiner = registry.claim("k", object())
    assert joiner is not None and not joiner.event.is_set()
    assert registry.stranded_joiners == 0


def test_inflight_fail_after_publish_keeps_the_result():
    """Regression: publish resolves the entry and clears its owner slot,
    so a late fail/release from the original owner cannot drop it."""
    registry = InflightRegistry()
    owner = object()
    registry.claim("k", owner)
    registry.publish("k", owner, ["s"])
    registry.fail("k", owner)
    registry.release(owner)
    adopted = registry.claim("k", object())
    assert adopted is not None and adopted.resolved
    assert adopted.solutions == ["s"]
    assert registry.stranded_joiners == 0


def test_inflight_double_release_is_idempotent():
    registry = InflightRegistry()
    owner, other = object(), object()
    registry.claim("k", owner)
    pending = registry.claim("k", other)
    registry.release(owner)
    registry.release(owner)  # second shutdown pass: no-op
    assert pending.event.is_set() and not pending.ok
    assert registry.claim("k", other) is None
    assert registry.stranded_joiners == 0


def test_wait_for_counts_stranded_joiners():
    """A join that times out on an unresolved, unreleased entry is the
    invariant violation the counter exists to surface."""
    registry = InflightRegistry()
    owner, other = object(), object()
    registry.claim("k", owner)
    entry = registry.claim("k", other)
    # Owner vanishes without publish/fail/release: the joiner strands.
    assert registry.wait_for(entry, timeout=0.01) is False
    assert registry.stranded_joiners == 1
    # A released entry is not stranded: the wait finished, just empty.
    registry.release(owner)
    assert registry.wait_for(entry, timeout=0.01) is False
    assert registry.stranded_joiners == 1


def test_batch_metrics_surface_zero_stranded_joiners(solo_reference):
    """Every batch run exports registry.stranded_joiners — and it is 0."""
    config = QuestConfig(**FAST, workers=1, cache=True)
    batch = run_quest_batch(
        [tfim(4, steps=2), tfim(4, steps=2)], config, window=2
    )
    counters = batch.metrics["counters"]
    assert counters["registry.stranded_joiners"] == 0
    for got in batch.results:
        assert _signature(got) == _signature(solo_reference[0])


# ----------------------------------------------------------------------
# PersistentWorkerPool unit behaviour
# ----------------------------------------------------------------------
def _identity(value):
    return value


def test_pool_requires_at_least_two_workers():
    with pytest.raises(ValueError, match="workers >= 2"):
        PersistentWorkerPool(1)


def test_pool_reuse_and_recycle_accounting():
    with PersistentWorkerPool(2) as pool:
        pool.begin_round()
        assert pool.submit(_identity, 7).result(timeout=60) == 7
        pool.begin_round()
        assert pool.submit(_identity, 8).result(timeout=60) == 8
        # Second round rode the first round's pool.
        assert pool.pools_created == 1
        assert pool.reuses == 1
        assert pool.recycles == 0
        pool.mark_unhealthy()
        pool.begin_round()
        assert pool.submit(_identity, 9).result(timeout=60) == 9
        assert pool.pools_created == 2
        assert pool.recycles == 1
    with pytest.raises(RuntimeError, match="shut down"):
        pool.submit(_identity, 0)
