"""Tests for block approximation pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core.pool import (
    augment_with_sphere_variants,
    build_pool,
)
from repro.partition import scan_partition
from repro.synthesis import LeapConfig, SynthesisSolution, synthesize


def _block():
    circuit = Circuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(0.4, 1)
    circuit.cx(1, 2)
    circuit.ry(0.8, 2)
    circuit.cx(0, 1)
    return scan_partition(circuit, max_block_qubits=3)[0]


@pytest.fixture(scope="module")
def block_and_solutions():
    block = _block()
    report = synthesize(
        block.unitary(),
        LeapConfig(max_layers=2, seed=0, solutions_per_layer=2,
                   instantiation_starts=2, max_optimizer_iterations=100),
    )
    return block, report.solutions


def test_pool_contains_original_first(block_and_solutions):
    block, solutions = block_and_solutions
    pool = build_pool(block, solutions)
    assert pool.candidates[0].distance == 0.0
    assert pool.candidates[0].cnot_count == block.circuit.cnot_count()


def test_pool_candidate_accounting(block_and_solutions):
    block, solutions = block_and_solutions
    pool = build_pool(block, solutions)
    assert pool.size == len(pool.candidates)
    assert len(pool.cnot_counts()) == pool.size
    assert len(pool.distances()) == pool.size
    assert pool.distances()[0] == 0.0


def test_distance_cap_filters(block_and_solutions):
    block, solutions = block_and_solutions
    capped = build_pool(block, solutions, distance_cap=0.05)
    for candidate in capped.candidates[1:]:
        assert candidate.distance <= 0.05 + 1e-6


def test_max_candidates_respected(block_and_solutions):
    block, solutions = block_and_solutions
    pool = build_pool(block, solutions, max_candidates=2)
    # Original + at most 2 synthesized.
    assert pool.size <= 3


def test_useless_solutions_dropped(block_and_solutions):
    block, _ = block_and_solutions
    # A solution with as many CNOTs as the original but nonzero distance
    # should never enter the pool.
    junk = Circuit(block.num_qubits)
    for _ in range(block.circuit.cnot_count()):
        junk.cx(0, 1)
    junk.ry(0.3, 0)
    solution = SynthesisSolution(
        circuit=junk, distance=0.5, cnot_count=block.circuit.cnot_count()
    )
    pool = build_pool(block, [solution])
    assert pool.size == 1


def test_near_duplicates_dropped(block_and_solutions):
    block, solutions = block_and_solutions
    if not solutions:
        pytest.skip("no solutions to duplicate")
    doubled = list(solutions) + list(solutions)
    pool_a = build_pool(block, solutions)
    pool_b = build_pool(block, doubled)
    assert pool_b.size == pool_a.size


def test_sphere_augmentation_adds_dissimilar(block_and_solutions):
    block, solutions = block_and_solutions
    pool = build_pool(block, solutions, distance_cap=0.3)
    eligible = [
        c for c in pool.candidates
        if c.cnot_count < block.circuit.cnot_count() and c.distance < 0.27
    ]
    added = augment_with_sphere_variants(pool, threshold=0.3, per_count=4, rng=0)
    if eligible:
        assert added > 0
        for candidate in pool.candidates[-added:]:
            assert candidate.distance <= 0.3 + 1e-9
    else:
        assert added == 0
