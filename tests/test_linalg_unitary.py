"""Tests for unitary utilities and the HS process distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_unitary
from repro.exceptions import ReproError
from repro.linalg import (
    closest_unitary,
    equal_up_to_global_phase,
    fidelity_from_distance,
    global_phase_between,
    hs_cost,
    hs_distance,
    hs_inner,
    is_unitary,
)


def test_hs_distance_zero_for_identical(rng):
    u = random_unitary(8, rng)
    assert hs_distance(u, u) < 1e-7


def test_hs_distance_phase_invariant(rng):
    u = random_unitary(4, rng)
    phase = np.exp(1j * 0.83)
    assert hs_distance(u, phase * u) < 1e-7


def test_hs_distance_range(rng):
    for _ in range(20):
        a, b = random_unitary(4, rng), random_unitary(4, rng)
        d = hs_distance(a, b)
        assert 0.0 <= d <= 1.0


def test_hs_distance_maximal_for_orthogonal():
    # Tr(Z^dag X) = 0, so X and Z are maximally distant.
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    z = np.diag([1, -1]).astype(complex)
    assert hs_distance(x, z) == pytest.approx(1.0)


def test_hs_cost_monotone_with_distance(rng):
    pairs = [
        (random_unitary(4, rng), random_unitary(4, rng)) for _ in range(10)
    ]
    costs = [hs_cost(a, b) for a, b in pairs]
    distances = [hs_distance(a, b) for a, b in pairs]
    order_by_cost = np.argsort(costs)
    order_by_distance = np.argsort(distances)
    assert list(order_by_cost) == list(order_by_distance)


def test_hs_inner_shape_mismatch():
    with pytest.raises(ReproError):
        hs_inner(np.eye(2), np.eye(4))


def test_is_unitary(rng):
    assert is_unitary(random_unitary(8, rng))
    assert not is_unitary(np.ones((2, 2)))
    assert not is_unitary(np.eye(3)[:2])


def test_equal_up_to_global_phase(rng):
    u = random_unitary(4, rng)
    assert equal_up_to_global_phase(u, np.exp(1j * 1.234) * u)
    assert not equal_up_to_global_phase(u, random_unitary(4, rng))


def test_closest_unitary_projects(rng):
    u = random_unitary(4, rng)
    noisy = u + 0.01 * rng.normal(size=(4, 4))
    projected = closest_unitary(noisy)
    assert is_unitary(projected)
    assert np.linalg.norm(projected - u) < 0.1


def test_closest_unitary_fixed_point(rng):
    u = random_unitary(4, rng)
    assert np.allclose(closest_unitary(u), u, atol=1e-10)


def test_global_phase_between(rng):
    u = random_unitary(4, rng)
    phase = np.exp(1j * 0.5)
    recovered = global_phase_between(u, phase * u)
    assert np.isclose(recovered, phase)


def test_fidelity_from_distance():
    assert fidelity_from_distance(0.0) == pytest.approx(1.0)
    assert fidelity_from_distance(1.0) == pytest.approx(0.0)
    assert fidelity_from_distance(0.6) == pytest.approx(0.8)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_hs_distance_symmetry(seed):
    gen = np.random.default_rng(seed)
    a, b = random_unitary(4, gen), random_unitary(4, gen)
    assert hs_distance(a, b) == pytest.approx(hs_distance(b, a), abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_hs_distance_unitary_invariance(seed):
    # d(WA, WB) == d(A, B): the metric is left-invariant.
    gen = np.random.default_rng(seed)
    a, b, w = (random_unitary(4, gen) for _ in range(3))
    assert hs_distance(w @ a, w @ b) == pytest.approx(
        hs_distance(a, b), abs=1e-9
    )
