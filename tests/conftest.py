"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def bell_circuit() -> Circuit:
    """The 2-qubit Bell-pair preparation circuit."""
    circuit = Circuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def ghz3_circuit() -> Circuit:
    """The 3-qubit GHZ preparation circuit."""
    circuit = Circuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    return circuit


@pytest.fixture
def small_entangled_circuit() -> Circuit:
    """A 3-qubit circuit with rotations and several CNOTs."""
    circuit = Circuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(0.4, 1)
    circuit.cx(1, 2)
    circuit.ry(0.9, 2)
    circuit.cx(0, 1)
    circuit.rx(0.3, 0)
    return circuit
