"""Tests for swap routing onto constrained topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, random_circuit
from repro.exceptions import TranspilerError
from repro.noise import linear_coupling
from repro.sim import ideal_distribution
from repro.sim.readout import logical_distribution
from repro.transpile import route_to_coupling


def _respects_coupling(circuit, coupling):
    allowed = set(coupling) | {(b, a) for a, b in coupling}
    return all(
        op.qubits in allowed
        for op in circuit.operations
        if len(op.qubits) == 2
    )


def test_adjacent_gates_unchanged():
    circuit = Circuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    result = route_to_coupling(circuit, linear_coupling(3))
    assert result.swaps_inserted == 0
    assert result.circuit.cnot_count() == 2


def test_distant_gate_gets_swaps():
    circuit = Circuit(4)
    circuit.cx(0, 3)
    result = route_to_coupling(circuit, linear_coupling(4))
    assert result.swaps_inserted == 2
    assert _respects_coupling(result.circuit, linear_coupling(4))


def test_layout_tracked():
    circuit = Circuit(3)
    circuit.cx(0, 2)
    result = route_to_coupling(circuit, linear_coupling(3))
    # Logical qubit 0 moved to physical qubit 1.
    assert result.final_layout[0] == 1


def test_measurements_follow_layout():
    circuit = Circuit(3)
    circuit.x(0)
    circuit.cx(0, 2)
    circuit.measure_all()
    result = route_to_coupling(circuit, linear_coupling(3))
    physical = ideal_distribution(result.circuit.without_measurements())
    logical = logical_distribution(result.circuit, physical)
    original = ideal_distribution(circuit.without_measurements())
    assert np.allclose(logical, original, atol=1e-10)


def test_random_circuits_preserved(rng):
    coupling = linear_coupling(4)
    for _ in range(6):
        circuit = random_circuit(4, 4, rng=rng)
        circuit.measure_all()
        result = route_to_coupling(circuit, coupling)
        assert _respects_coupling(result.circuit, coupling)
        physical = ideal_distribution(result.circuit.without_measurements())
        logical = logical_distribution(result.circuit, physical)
        original = ideal_distribution(circuit.without_measurements())
        assert np.allclose(logical, original, atol=1e-8)


def test_too_many_qubits_rejected():
    circuit = Circuit(5)
    with pytest.raises(TranspilerError):
        route_to_coupling(circuit, linear_coupling(3), num_physical=3)


def test_disconnected_graph_rejected():
    circuit = Circuit(4)
    with pytest.raises(TranspilerError):
        route_to_coupling(circuit, ((0, 1), (2, 3)))


def test_three_qubit_gates_rejected():
    circuit = Circuit(3)
    circuit.ccx(0, 1, 2)
    with pytest.raises(TranspilerError):
        route_to_coupling(circuit, linear_coupling(3))


def test_circuit_embeds_into_larger_device():
    circuit = Circuit(2)
    circuit.cx(0, 1)
    result = route_to_coupling(circuit, linear_coupling(5), num_physical=5)
    assert result.circuit.num_qubits == 5
