"""Tests for OpenQASM 2.0 serialization, including property-based roundtrips."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    circuit_from_qasm,
    circuit_to_qasm,
    random_circuit,
)
from repro.exceptions import QasmError


def test_roundtrip_simple(bell_circuit):
    bell_circuit.measure_all()
    text = circuit_to_qasm(bell_circuit)
    assert "OPENQASM 2.0" in text
    assert "creg" in text
    parsed = circuit_from_qasm(text)
    assert parsed == bell_circuit


def test_roundtrip_parametric_gates():
    circuit = Circuit(3)
    circuit.rx(0.25, 0)
    circuit.u3(0.1, -0.2, 0.3, 1)
    circuit.rzz(1.5, 0, 2)
    circuit.cp(-0.7, 2, 1)
    parsed = circuit_from_qasm(circuit_to_qasm(circuit))
    assert parsed == circuit


def test_numpy_scalar_params_roundtrip():
    """Regression: numpy scalar params must not emit ``np.float64(...)``.

    Under numpy >= 2, ``repr(np.float64(0.5))`` is ``"np.float64(0.5)"``,
    which the writer used to embed verbatim — producing OpenQASM no
    parser (including ours) accepts.  Parameters flowing out of the
    synthesis pipeline are numpy scalars, so this is the common case,
    not a corner.
    """
    theta = np.float64(0.27) * np.pi
    circuit = Circuit(2)
    circuit.rx(theta, 0)
    circuit.rz(np.float32(0.5), 1)
    circuit.cp(np.float64(-1.25), 0, 1)
    text = circuit_to_qasm(circuit)
    assert "np.float" not in text
    parsed = circuit_from_qasm(text)
    # float64 params survive shortest-round-trip repr exactly.
    assert parsed.operations[0].params[0] == float(theta)
    assert parsed.operations[2].params[0] == -1.25
    assert np.allclose(parsed.unitary(), circuit.unitary())


def test_barrier_roundtrip():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.barrier()
    circuit.cx(0, 1)
    parsed = circuit_from_qasm(circuit_to_qasm(circuit))
    assert [op.name for op in parsed] == ["h", "barrier", "cx"]


def test_parse_pi_expressions():
    text = """
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[1];
    rz(pi/2) q[0];
    rx(-pi/4) q[0];
    ry(2*pi) q[0];
    u1(pi) q[0];
    """
    circuit = circuit_from_qasm(text)
    assert circuit.operations[0].params[0] == pytest.approx(math.pi / 2)
    assert circuit.operations[1].params[0] == pytest.approx(-math.pi / 4)
    assert circuit.operations[2].params[0] == pytest.approx(2 * math.pi)
    # u1 parses as the phase gate.
    assert circuit.operations[3].name == "p"


def test_parse_comments_ignored():
    text = (
        "OPENQASM 2.0; // header\nqreg q[1]; // one qubit\nh q[0]; // mix\n"
    )
    circuit = circuit_from_qasm(text)
    assert circuit.operations[0].name == "h"


def test_parse_rejects_missing_qreg():
    with pytest.raises(QasmError):
        circuit_from_qasm("OPENQASM 2.0; h q[0];")


def test_parse_rejects_unknown_gate():
    with pytest.raises(QasmError):
        circuit_from_qasm("qreg q[1]; zorp q[0];")


def test_parse_rejects_bad_expression():
    with pytest.raises(QasmError):
        circuit_from_qasm("qreg q[1]; rx(import_os) q[0];")
    with pytest.raises(QasmError):
        circuit_from_qasm("qreg q[1]; rx(__import__('os')) q[0];")


def test_parse_rejects_bad_measure():
    with pytest.raises(QasmError):
        circuit_from_qasm("qreg q[1]; measure q[0];")


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 5), depth=st.integers(1, 6))
def test_roundtrip_random_circuits(seed, n, depth):
    circuit = random_circuit(n, depth, rng=seed)
    parsed = circuit_from_qasm(circuit_to_qasm(circuit))
    assert parsed == circuit


def test_roundtrip_preserves_semantics(rng):
    circuit = random_circuit(3, 6, rng=rng)
    parsed = circuit_from_qasm(circuit_to_qasm(circuit))
    assert np.allclose(parsed.unitary(), circuit.unitary())
