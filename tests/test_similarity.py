"""Tests for QUEST's dissimilarity criterion and lookup tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import random_unitary
from repro.core.similarity import (
    BlockSimilarityTables,
    are_similar,
    unitaries_similar,
)
from repro.exceptions import SelectionError


def test_are_similar_predicate():
    assert are_similar(0.1, 0.2, 0.3)
    assert are_similar(0.3, 0.2, 0.3)
    assert not are_similar(0.31, 0.2, 0.3)


def test_identical_unitaries_similar(rng):
    original = random_unitary(4, rng)
    approx = random_unitary(4, rng)
    assert unitaries_similar(approx, approx, original)


def test_original_similar_to_everything(rng):
    # d(S, O) <= max(d(S, O), d(O, O)) always holds with equality.
    original = random_unitary(4, rng)
    for _ in range(5):
        other = random_unitary(4, rng)
        assert unitaries_similar(other, original, original)


def test_opposite_phases_dissimilar():
    # Diagonal unitaries on "opposite sides" of the identity.
    eps = 0.4
    original = np.eye(2, dtype=complex)
    plus = np.diag([1.0, np.exp(1j * eps)])
    minus = np.diag([1.0, np.exp(-1j * eps)])
    assert not unitaries_similar(plus, minus, original)


def test_same_side_similar():
    original = np.eye(2, dtype=complex)
    a = np.diag([1.0, np.exp(1j * 0.4)])
    b = np.diag([1.0, np.exp(1j * 0.38)])
    assert unitaries_similar(a, b, original)


class TestTables:
    def _tables(self, rng):
        originals = [random_unitary(2, rng) for _ in range(3)]
        candidates = [
            [original] + [random_unitary(2, rng) for _ in range(2)]
            for original in originals
        ]
        return BlockSimilarityTables(candidates, originals)

    def test_diagonal_true(self, rng):
        tables = self._tables(rng)
        for block in range(3):
            assert tables.candidates_similar(block, 1, 1)

    def test_symmetry(self, rng):
        tables = self._tables(rng)
        for block in range(3):
            for i in range(3):
                for j in range(3):
                    assert tables.candidates_similar(
                        block, i, j
                    ) == tables.candidates_similar(block, j, i)

    def test_similarity_fraction_identical_choice(self, rng):
        tables = self._tables(rng)
        choice = np.array([0, 1, 2])
        assert tables.similarity_fraction(choice, choice) == pytest.approx(1.0)

    def test_similarity_fraction_range(self, rng):
        tables = self._tables(rng)
        a = np.array([0, 0, 0])
        b = np.array([1, 2, 1])
        fraction = tables.similarity_fraction(a, b)
        assert 0.0 <= fraction <= 1.0

    def test_length_validation(self, rng):
        tables = self._tables(rng)
        with pytest.raises(SelectionError):
            tables.similarity_fraction(np.array([0]), np.array([0, 1, 2]))

    def test_construction_validation(self, rng):
        with pytest.raises(SelectionError):
            BlockSimilarityTables([[np.eye(2)]], [])
        with pytest.raises(SelectionError):
            BlockSimilarityTables([[]], [np.eye(2)])
