"""Run journal: manifest identity checks, atomic entries, quarantine."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.algorithms import tfim
from repro.core.pool import exact_pool
from repro.core.quest import QuestConfig, run_quest
from repro.exceptions import CheckpointError
from repro.partition.scan import scan_partition
from repro.resilience.journal import (
    JOURNAL_VERSION,
    RunJournal,
    quest_fingerprint,
)
from repro.transpile.basis import lower_to_basis

FAST = dict(
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)


def _baseline():
    return lower_to_basis(tfim(4, steps=1).without_measurements())


def _pool():
    blocks = scan_partition(_baseline(), 2)
    return exact_pool(blocks[0])


# ----------------------------------------------------------------------
# Fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_tracks_result_affecting_knobs():
    baseline = _baseline()
    base = quest_fingerprint(baseline, QuestConfig(seed=1, **FAST))
    assert base == quest_fingerprint(baseline, QuestConfig(seed=1, **FAST))
    # Result-affecting knobs change the fingerprint...
    assert base != quest_fingerprint(baseline, QuestConfig(seed=2, **FAST))
    changed = dict(FAST, threshold_per_block=0.3)
    assert base != quest_fingerprint(baseline, QuestConfig(seed=1, **changed))
    # ...while runtime-only knobs do not.
    runtime = QuestConfig(seed=1, workers=4, cache=False, retry_attempts=5, **FAST)
    assert base == quest_fingerprint(baseline, runtime)


def test_fingerprint_tracks_the_circuit():
    config = QuestConfig(seed=1, **FAST)
    other = lower_to_basis(tfim(5, steps=1).without_measurements())
    assert quest_fingerprint(_baseline(), config) != quest_fingerprint(other, config)


# ----------------------------------------------------------------------
# Manifest / resume refusal
# ----------------------------------------------------------------------
def test_fresh_directory_writes_a_manifest(tmp_path):
    journal = RunJournal(tmp_path, "fp", [1, 2, 3])
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest == {
        "version": JOURNAL_VERSION,
        "fingerprint": "fp",
        "seeds": [1, 2, 3],
        "num_blocks": 3,
    }
    assert journal.journaled_blocks() == []


def test_resume_false_refuses_an_existing_journal(tmp_path):
    RunJournal(tmp_path, "fp", [1])
    with pytest.raises(CheckpointError, match="already holds a run journal"):
        RunJournal(tmp_path, "fp", [1], resume=False)


def test_resume_refuses_a_mismatched_fingerprint(tmp_path):
    RunJournal(tmp_path, "fp-a", [1])
    with pytest.raises(CheckpointError, match="fingerprint does not match"):
        RunJournal(tmp_path, "fp-b", [1])


def test_resume_refuses_a_mismatched_seed_stream(tmp_path):
    RunJournal(tmp_path, "fp", [1, 2])
    with pytest.raises(CheckpointError, match="seed stream does not match"):
        RunJournal(tmp_path, "fp", [1, 3])


def test_resume_refuses_an_unknown_journal_version(tmp_path):
    RunJournal(tmp_path, "fp", [1])
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    manifest["version"] = JOURNAL_VERSION + 1
    (tmp_path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="journal version"):
        RunJournal(tmp_path, "fp", [1])


def test_resume_refuses_a_garbled_manifest(tmp_path):
    RunJournal(tmp_path, "fp", [1])
    (tmp_path / "manifest.json").write_text("{not json")
    with pytest.raises(CheckpointError, match="unreadable checkpoint manifest"):
        RunJournal(tmp_path, "fp", [1])


# ----------------------------------------------------------------------
# Entries: round-trip, atomicity, quarantine
# ----------------------------------------------------------------------
def test_store_then_load_round_trips_bit_identically(tmp_path):
    journal = RunJournal(tmp_path, "fp", [1])
    pool = _pool()
    journal.store_pool(0, "key-0", pool)
    assert journal.journaled_blocks() == [0]
    loaded = journal.load_pool(0, "key-0")
    assert loaded is not None
    assert np.array_equal(loaded.original_unitary, pool.original_unitary)
    assert loaded.cnot_counts().tolist() == pool.cnot_counts().tolist()
    for a, b in zip(loaded.candidates, pool.candidates):
        assert np.array_equal(a.unitary, b.unitary)
    assert journal.corrupt_entries == 0


def test_missing_entry_is_a_plain_miss(tmp_path):
    journal = RunJournal(tmp_path, "fp", [1])
    assert journal.load_pool(0, "key-0") is None
    assert journal.corrupt_entries == 0


def test_no_temp_files_survive_a_publish(tmp_path):
    journal = RunJournal(tmp_path, "fp", [1])
    journal.store_pool(0, "key-0", _pool())
    leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
    assert leftovers == []


def test_key_mismatch_is_quarantined(tmp_path):
    """An entry journaled under a different cache key must not resume."""
    journal = RunJournal(tmp_path, "fp", [1])
    journal.store_pool(0, "key-old", _pool())
    assert journal.load_pool(0, "key-new") is None
    assert journal.corrupt_entries == 1
    assert journal.journaled_blocks() == []  # quarantine deletes the file


@pytest.mark.parametrize(
    "corruption",
    ["truncate", "garbage", "bitflip", "wrong-type"],
)
def test_corrupt_entries_are_quarantined_and_deleted(tmp_path, corruption):
    journal = RunJournal(tmp_path, "fp", [1])
    journal.store_pool(0, "key-0", _pool())
    path = tmp_path / "block_0000.qckpt"
    raw = path.read_bytes()
    if corruption == "truncate":
        path.write_bytes(raw[: len(raw) // 3])
    elif corruption == "garbage":
        path.write_bytes(b"not a pickle at all")
    elif corruption == "bitflip":
        flipped = bytearray(raw)
        flipped[len(raw) // 2] ^= 0x40
        path.write_bytes(bytes(flipped))
    else:  # wrong payload type behind a valid checksum
        payload = pickle.dumps({"not": "a pool"})
        import hashlib

        envelope = {
            "version": JOURNAL_VERSION,
            "index": 0,
            "key": "key-0",
            "checksum": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        path.write_bytes(pickle.dumps(envelope))
    assert journal.load_pool(0, "key-0") is None
    assert journal.corrupt_entries == 1
    assert not path.exists()


# ----------------------------------------------------------------------
# End-to-end resume through run_quest
# ----------------------------------------------------------------------
def _run_config(**overrides):
    return QuestConfig(seed=5, **dict(FAST, **overrides))


def _results_identical(a, b):
    assert a.original_cnot_count == b.original_cnot_count
    assert len(a.circuits) == len(b.circuits)
    assert a.selection.bounds == b.selection.bounds
    for ca, cb in zip(a.circuits, b.circuits):
        assert ca.cnot_count() == cb.cnot_count()
        assert np.array_equal(ca.unitary(), cb.unitary())


def test_checkpointed_run_matches_a_plain_run(tmp_path):
    circuit = tfim(4, steps=1)
    plain = run_quest(circuit, _run_config())
    checkpointed = run_quest(
        circuit, _run_config(), checkpoint_dir=tmp_path / "ckpt"
    )
    _results_identical(plain, checkpointed)
    assert checkpointed.checkpoint_hits == 0


def test_resume_skips_journaled_blocks_bit_identically(tmp_path):
    circuit = tfim(4, steps=1)
    first = run_quest(circuit, _run_config(), checkpoint_dir=tmp_path / "ckpt")
    resumed = run_quest(circuit, _run_config(), checkpoint_dir=tmp_path / "ckpt")
    _results_identical(first, resumed)
    assert resumed.checkpoint_hits > 0
    # Every nontrivial block came from the journal: no synthesis at all.
    assert resumed.cache_misses == 0
    assert "resumed from checkpoint" in resumed.summary()


def test_resume_refuses_a_different_config_end_to_end(tmp_path):
    circuit = tfim(4, steps=1)
    run_quest(circuit, _run_config(), checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(CheckpointError, match="fingerprint does not match"):
        run_quest(
            circuit,
            _run_config(threshold_per_block=0.35),
            checkpoint_dir=tmp_path / "ckpt",
        )


def test_resume_false_refuses_reuse_end_to_end(tmp_path):
    circuit = tfim(4, steps=1)
    run_quest(circuit, _run_config(), checkpoint_dir=tmp_path / "ckpt")
    with pytest.raises(CheckpointError, match="already holds a run journal"):
        run_quest(
            circuit,
            _run_config(),
            checkpoint_dir=tmp_path / "ckpt",
            resume=False,
        )
