"""Tests for the command-line interface."""

from __future__ import annotations

from repro.circuits import circuit_from_qasm, circuit_to_qasm
from repro.algorithms import tfim
from repro.cli import main


def test_cli_end_to_end(tmp_path, capsys):
    circuit = tfim(3, steps=1)
    qasm_path = tmp_path / "tfim.qasm"
    qasm_path.write_text(circuit_to_qasm(circuit))
    out_dir = tmp_path / "out"
    code = main(
        [
            str(qasm_path),
            "--out-dir", str(out_dir),
            "--threshold", "0.3",
            "--max-samples", "2",
            "--time-budget", "10",
            "--seed", "1",
        ]
    )
    assert code == 0
    written = sorted(out_dir.glob("approx_*.qasm"))
    assert written
    for path in written:
        parsed = circuit_from_qasm(path.read_text())
        assert parsed.num_qubits == 3
    captured = capsys.readouterr()
    assert "CNOTs" in captured.out


def test_cli_parallel_and_cache_flags(tmp_path, capsys):
    circuit = tfim(4, steps=2)
    qasm_path = tmp_path / "tfim.qasm"
    qasm_path.write_text(circuit_to_qasm(circuit))
    cache_dir = tmp_path / "cache"
    args = [
        str(qasm_path),
        "--out-dir", str(tmp_path / "out"),
        "--threshold", "0.3",
        "--max-samples", "2",
        "--block-qubits", "2",
        "--time-budget", "10",
        "--seed", "1",
        "--workers", "2",
        "--cache-dir", str(cache_dir),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "cache hit" in first
    assert any(cache_dir.iterdir())  # the persistent tier was populated
    # Second run: everything served from the on-disk cache.
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "0 block(s) synthesized" in second
    # Disabling the cache is accepted and still completes.
    assert main(args[:-2] + ["--no-cache"]) == 0
    assert "0 cache hit(s)" in capsys.readouterr().out


def test_cli_missing_file(tmp_path, capsys):
    code = main([str(tmp_path / "nope.qasm")])
    assert code == 2
    assert "error reading" in capsys.readouterr().err


def test_cli_rejects_cnot_free_circuit(tmp_path, capsys):
    from repro.circuits import Circuit

    circuit = Circuit(2)
    circuit.h(0)
    path = tmp_path / "h.qasm"
    path.write_text(circuit_to_qasm(circuit))
    code = main([str(path)])
    assert code == 1
    assert "QUEST failed" in capsys.readouterr().err
