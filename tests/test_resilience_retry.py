"""Retry policy: deterministic seed escalation and executor retry flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import tfim
from repro.core.quest import QuestConfig
from repro.parallel.executor import BlockSynthesisExecutor
from repro.partition.scan import scan_partition
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.resilience.retry import (
    FAILURE_EXCEPTION,
    FAILURE_FALLBACK,
    FAILURE_VALIDATION,
    FailureRecord,
)
from repro.transpile.basis import lower_to_basis

CONFIG = QuestConfig(
    seed=3,
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)


def _blocks():
    baseline = lower_to_basis(tfim(4, steps=1).without_measurements())
    return scan_partition(baseline, CONFIG.max_block_qubits)


def _seeds(blocks):
    rng = np.random.default_rng(CONFIG.seed)
    return [int(rng.integers(2**31 - 1)) for _ in blocks]


def _pools_equal(pools_a, pools_b):
    assert len(pools_a) == len(pools_b)
    for a, b in zip(pools_a, pools_b):
        assert a.cnot_counts().tolist() == b.cnot_counts().tolist()
        assert a.distances().tolist() == b.distances().tolist()
        for ca, cb in zip(a.candidates, b.candidates):
            assert np.array_equal(ca.unitary, cb.unitary)


# ----------------------------------------------------------------------
# RetryPolicy unit behaviour
# ----------------------------------------------------------------------
def test_attempt_zero_uses_the_block_seed():
    policy = RetryPolicy(max_attempts=4)
    assert policy.attempt_seed(12345, 0) == 12345


def test_first_retry_reuses_the_seed_then_escalates():
    policy = RetryPolicy(max_attempts=4, same_seed_retries=1)
    assert policy.attempt_seed(12345, 1) == 12345
    escalated = policy.attempt_seed(12345, 2)
    assert escalated != 12345
    # Deterministic: same (seed, attempt) -> same escalated seed.
    assert policy.attempt_seed(12345, 2) == escalated
    assert policy.attempt_seed(12345, 3) != escalated
    # Matches the documented SeedSequence.spawn derivation.
    expected = int(
        np.random.SeedSequence(12345).spawn(1)[-1].generate_state(1)[0]
        % (2**31 - 1)
    )
    assert escalated == expected


def test_budget_multiplier_scales_geometrically():
    policy = RetryPolicy(max_attempts=3, budget_multiplier=2.0)
    assert policy.attempt_budget(10.0, 0) == 10.0
    assert policy.attempt_budget(10.0, 1) == 20.0
    assert policy.attempt_budget(10.0, 2) == 40.0
    assert policy.attempt_budget(None, 2) is None


def test_baseline_attempt_detection():
    flat = RetryPolicy(max_attempts=3, budget_multiplier=1.0)
    assert flat.is_baseline_attempt(7, 0, 10.0)
    assert flat.is_baseline_attempt(7, 1, 10.0)  # same seed, flat budget
    assert not flat.is_baseline_attempt(7, 2, 10.0)  # escalated seed
    scaled = RetryPolicy(max_attempts=3, budget_multiplier=2.0)
    assert scaled.is_baseline_attempt(7, 0, 10.0)
    assert not scaled.is_baseline_attempt(7, 1, 10.0)  # budget grew


def test_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="budget_multiplier"):
        RetryPolicy(budget_multiplier=0.0)
    with pytest.raises(ValueError, match="same_seed_retries"):
        RetryPolicy(same_seed_retries=-1)


def test_failure_record_round_trips_to_dict():
    record = FailureRecord(3, 1, FAILURE_EXCEPTION, "boom")
    assert record.as_dict() == {
        "block_index": 3,
        "attempt": 1,
        "kind": FAILURE_EXCEPTION,
        "message": "boom",
    }


# ----------------------------------------------------------------------
# Executor retry flow
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2], ids=["inline", "process-pool"])
def test_transient_raise_recovers_bit_identically(workers):
    """A fault on attempt 0 retries on the same seed: results identical."""
    blocks = _blocks()
    seeds = _seeds(blocks)
    clean_pools, clean_stats = BlockSynthesisExecutor(workers=workers).run(
        blocks, CONFIG, seeds
    )
    assert not clean_stats.failure_log

    injector = FaultInjector(specs=(FaultSpec("raise", None, 0),))
    runner = BlockSynthesisExecutor(
        workers=workers,
        retry_policy=RetryPolicy(max_attempts=2),
        fault_injector=injector,
    )
    pools, stats = runner.run(blocks, CONFIG, seeds)
    assert stats.retries > 0
    assert not stats.fallback_blocks
    assert all(r.kind == FAILURE_EXCEPTION for r in stats.failure_log)
    assert all(r.attempt == 0 for r in stats.failure_log)
    _pools_equal(clean_pools, pools)


def test_nan_corruption_is_quarantined_then_recovered():
    blocks = _blocks()
    seeds = _seeds(blocks)
    clean_pools, _ = BlockSynthesisExecutor().run(blocks, CONFIG, seeds)

    injector = FaultInjector(specs=(FaultSpec("nan", None, 0),), seed=11)
    runner = BlockSynthesisExecutor(
        retry_policy=RetryPolicy(max_attempts=2), fault_injector=injector
    )
    pools, stats = runner.run(blocks, CONFIG, seeds)
    assert not stats.fallback_blocks
    assert stats.failure_log
    assert all(r.kind == FAILURE_VALIDATION for r in stats.failure_log)
    _pools_equal(clean_pools, pools)


def test_exhausted_retries_still_fall_back():
    """Faults on every attempt: the exact-pool downgrade still guards."""
    blocks = _blocks()
    seeds = _seeds(blocks)
    specs = tuple(FaultSpec("raise", None, attempt) for attempt in range(3))
    runner = BlockSynthesisExecutor(
        retry_policy=RetryPolicy(max_attempts=3),
        fault_injector=FaultInjector(specs=specs),
    )
    with pytest.warns(RuntimeWarning, match="falling back to the exact block"):
        pools, stats = runner.run(blocks, CONFIG, seeds)
    nontrivial = [
        i
        for i, b in enumerate(blocks)
        if b.num_qubits > 1 and b.circuit.cnot_count() > 0
    ]
    assert stats.fallback_blocks
    for index in stats.fallback_blocks:
        assert index in nontrivial
        assert pools[index].size == 1
        assert pools[index].candidates[0].distance == 0.0
    # Every failed attempt is logged: jobs x attempts — plus one terminal
    # fallback record per downgraded block.
    per_block = {}
    for record in stats.failure_log:
        if record.kind == FAILURE_FALLBACK:
            continue
        per_block.setdefault(record.block_index, []).append(record.attempt)
    for attempts in per_block.values():
        assert attempts == [0, 1, 2]
    fallback_records = [
        r for r in stats.failure_log if r.kind == FAILURE_FALLBACK
    ]
    assert sorted(r.block_index for r in fallback_records) == sorted(
        stats.fallback_blocks
    )
    for record in fallback_records:
        assert record.attempt == 3
        assert "degraded to exact block" in record.message


# ----------------------------------------------------------------------
# Full-jitter exponential backoff
# ----------------------------------------------------------------------
class _RecordingRng:
    """Jitter RNG stand-in: real draws, but the ceilings are recorded."""

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)
        self.ceilings: list[float] = []

    def uniform(self, low: float, high: float) -> float:
        assert low == 0.0
        self.ceilings.append(high)
        return self._rng.uniform(low, high)


def test_backoff_disabled_by_default():
    policy = RetryPolicy(max_attempts=3)
    assert policy.backoff_seconds(1) == 0.0
    assert policy.backoff_seconds(5) == 0.0


def test_backoff_zero_before_the_first_retry():
    policy = RetryPolicy(max_attempts=3, backoff_base=1.0)
    assert policy.backoff_seconds(0) == 0.0


def test_backoff_validation():
    with pytest.raises(ValueError, match="backoff_base"):
        RetryPolicy(backoff_base=-0.5)
    with pytest.raises(ValueError, match="backoff_cap"):
        RetryPolicy(backoff_cap=0.0)


def test_backoff_full_jitter_is_bounded_by_the_capped_exponential():
    policy = RetryPolicy(max_attempts=8, backoff_base=0.5, backoff_cap=4.0)
    rng = np.random.default_rng(0)
    for attempt in range(1, 8):
        ceiling = min(4.0, 0.5 * 2.0 ** (attempt - 1))
        for _ in range(25):
            delay = policy.backoff_seconds(attempt, rng)
            assert 0.0 <= delay <= ceiling


def test_backoff_deterministic_under_a_pinned_rng():
    policy = RetryPolicy(max_attempts=3, backoff_base=0.5)
    first = policy.backoff_seconds(2, np.random.default_rng(7))
    second = policy.backoff_seconds(2, np.random.default_rng(7))
    assert first == second


def test_executor_backoff_schedule_under_fake_clock():
    """The executor sleeps exactly the policy's full-jitter schedule.

    A fake ``sleep_fn`` records every delay instead of sleeping and an
    injected jitter RNG makes the draws replayable: the observed sleep
    list must match a fresh replay of the same RNG stream against the
    recorded ceilings, and the ceilings must follow the capped
    exponential ``min(cap, base * 2**(attempt-1))``.
    """
    blocks = _blocks()
    seeds = _seeds(blocks)
    # Fault on attempts 0 and 1: every faulted block retries at
    # attempts 1 and 2, so both backoff tiers are exercised.
    specs = tuple(FaultSpec("raise", None, attempt) for attempt in range(2))
    sleeps: list[float] = []
    recorder = _RecordingRng(123)
    runner = BlockSynthesisExecutor(
        retry_policy=RetryPolicy(
            max_attempts=3, backoff_base=0.25, backoff_cap=1.0
        ),
        fault_injector=FaultInjector(specs=specs),
        sleep_fn=sleeps.append,
        backoff_rng=recorder,
    )
    _, stats = runner.run(blocks, CONFIG, seeds)
    assert stats.retries > 0
    assert sleeps, "no backoff sleeps were recorded"
    # Every recorded ceiling is one of the capped exponential tiers, and
    # both tiers fired (attempt 1 -> 0.25, attempt 2 -> 0.5).
    assert set(recorder.ceilings) == {0.25, 0.5}
    # The delays are the pinned RNG's stream, verbatim.
    replay = np.random.default_rng(123)
    expected = [replay.uniform(0.0, c) for c in recorder.ceilings]
    assert sleeps == expected
    # Nothing ever waited for real: the fake clock absorbed it all.
    assert all(0.0 < s <= 0.5 for s in sleeps)


def test_backoff_never_perturbs_results():
    """Backoff on vs. off: identical pools (jitter RNG is separate)."""
    blocks = _blocks()
    seeds = _seeds(blocks)
    specs = (FaultSpec("raise", None, 0),)
    plain_pools, _ = BlockSynthesisExecutor(
        retry_policy=RetryPolicy(max_attempts=2),
        fault_injector=FaultInjector(specs=specs),
    ).run(blocks, CONFIG, seeds)
    sleeps: list[float] = []
    backoff_pools, stats = BlockSynthesisExecutor(
        retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.5),
        fault_injector=FaultInjector(specs=specs),
        sleep_fn=sleeps.append,
        backoff_rng=np.random.default_rng(99),
    ).run(blocks, CONFIG, seeds)
    assert stats.retries > 0
    assert sleeps
    _pools_equal(plain_pools, backoff_pools)


def test_escalated_seed_changes_the_synthesis_stream():
    """Attempts past same_seed_retries genuinely explore a new seed."""
    blocks = _blocks()
    seeds = _seeds(blocks)
    clean_pools, _ = BlockSynthesisExecutor().run(blocks, CONFIG, seeds)
    # Fail attempts 0 and 1 so the success lands on the escalated seed.
    specs = tuple(FaultSpec("raise", None, attempt) for attempt in range(2))
    runner = BlockSynthesisExecutor(
        retry_policy=RetryPolicy(max_attempts=3),
        fault_injector=FaultInjector(specs=specs),
    )
    pools, stats = runner.run(blocks, CONFIG, seeds)
    assert not stats.fallback_blocks
    assert stats.retries > 0
    # Pools exist for every block and remain healthy (validated), even
    # though candidate sets may differ from the attempt-0 stream.
    assert len(pools) == len(clean_pools)
    for pool in pools:
        assert pool.size >= 1
