"""Unit tests for the observability substrate (trace, metrics, logs)."""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

from repro.observability import (
    NULL_METRICS,
    NULL_TRACER,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    Tracer,
    configure_logging,
    get_logger,
    get_metrics,
    get_tracer,
    render_summary,
    summarize_records,
    summarize_trace,
    use_metrics,
    use_tracer,
)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_record_shape():
    sink = ListSink()
    tracer = Tracer(sink)
    with tracer.span("stage.one", block=3):
        pass
    (record,) = sink.records
    assert record["type"] == "span"
    assert record["name"] == "stage.one"
    assert record["status"] == "ok"
    assert record["dur"] >= 0.0
    assert record["attrs"] == {"block": 3}
    assert "parent_id" not in record
    assert isinstance(record["span_id"], str)


def test_span_nesting_links_parent_ids():
    sink = ListSink()
    tracer = Tracer(sink)
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
        tracer.event("marker")
    inner_rec, marker, outer_rec = sink.records
    assert inner_rec["name"] == "inner"
    assert inner_rec["parent_id"] == outer_rec["span_id"]
    # The event fired after "inner" closed, so it parents to "outer".
    assert marker["type"] == "event"
    assert marker["span_id"] == outer_rec["span_id"]
    assert outer_rec["name"] == "outer"
    assert "parent_id" not in outer_rec


def test_span_closes_with_error_status_and_propagates():
    sink = ListSink()
    tracer = Tracer(sink)
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("exploding"):
            raise ValueError("boom")
    (record,) = sink.records
    assert record["status"] == "error"
    assert record["error"] == "ValueError: boom"
    # The failed span must not leak as the current parent.
    tracer.event("after")
    assert "span_id" not in sink.records[-1]


def test_event_records_carry_attrs():
    sink = ListSink()
    tracer = Tracer(sink)
    tracer.event("cache.hit", block=2, source="disk")
    (record,) = sink.records
    assert record["type"] == "event"
    assert record["attrs"] == {"block": 2, "source": "disk"}


def test_replay_preserves_origin_and_ids():
    worker_sink = ListSink()
    worker = Tracer(worker_sink, origin="worker")
    with worker.span("synthesis.block", block=0):
        worker.event("leap.layer", layer=1)
    parent_sink = ListSink()
    parent = Tracer(parent_sink)
    parent.replay(worker_sink.records)
    assert [r["origin"] for r in parent_sink.records] == ["worker"] * 2
    assert (
        parent_sink.records[0]["span_id"]
        == parent_sink.records[1]["span_id"]
    )


def test_null_tracer_is_inert():
    assert NULL_TRACER.is_enabled is False
    with NULL_TRACER.span("anything", attr=1):
        NULL_TRACER.event("nothing")
    NULL_TRACER.replay([{"type": "event"}])
    NULL_TRACER.close()


def test_ambient_tracer_contextvar():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer(ListSink())
    with use_tracer(tracer):
        assert get_tracer() is tracer
        with use_tracer(None):
            assert get_tracer() is NULL_TRACER
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_jsonl_sink_emits_parseable_lines_with_numpy_attrs(tmp_path):
    path = tmp_path / "run.trace"
    tracer = Tracer(JsonlSink(path))
    with tracer.span("stage", count=np.int64(3), cost=np.float64(0.5)):
        tracer.event("point", value=np.float32(1.5))
    tracer.close()
    lines = path.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["type"] for r in records] == ["event", "span"]
    assert records[1]["attrs"] == {"count": 3, "cost": 0.5}
    # Emitting after close is a silent no-op, not a crash.
    tracer.event("late")


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_metrics_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("hits")
    registry.inc("hits", 4)
    registry.gauge("level", 2)
    registry.gauge("level", 7)
    registry.observe("size", 3.0)
    registry.observe("size", 9.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"hits": 5}
    assert snap["gauges"] == {"level": 7}
    assert snap["histograms"]["size"] == {
        "count": 2,
        "sum": 12.0,
        "min": 3.0,
        "max": 9.0,
        "mean": 6.0,
    }


def test_metrics_merge_combines_snapshots():
    parent = MetricsRegistry()
    parent.inc("hits", 2)
    parent.observe("size", 1.0)
    worker = MetricsRegistry()
    worker.inc("hits", 3)
    worker.inc("layers")
    worker.gauge("level", 5)
    worker.observe("size", 7.0)
    parent.merge(worker.snapshot())
    snap = parent.snapshot()
    assert snap["counters"] == {"hits": 5, "layers": 1}
    assert snap["gauges"] == {"level": 5}
    assert snap["histograms"]["size"]["count"] == 2
    assert snap["histograms"]["size"]["min"] == 1.0
    assert snap["histograms"]["size"]["max"] == 7.0
    parent.merge({})  # Empty merge is a no-op.
    assert parent.snapshot() == snap


def test_null_metrics_is_inert():
    assert NULL_METRICS.is_enabled is False
    NULL_METRICS.inc("x")
    NULL_METRICS.gauge("x", 1)
    NULL_METRICS.observe("x", 1)
    NULL_METRICS.merge({"counters": {"x": 1}})
    assert NULL_METRICS.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_ambient_metrics_contextvar():
    assert get_metrics() is NULL_METRICS
    registry = MetricsRegistry()
    with use_metrics(registry):
        assert get_metrics() is registry
    assert get_metrics() is NULL_METRICS


# ----------------------------------------------------------------------
# Trace summary
# ----------------------------------------------------------------------
def test_summarize_records_aggregates_spans_and_events():
    records = [
        {"type": "span", "name": "quest.synthesis", "dur": 2.0, "status": "ok"},
        {"type": "span", "name": "quest.synthesis", "dur": 1.0, "status": "error"},
        {"type": "span", "name": "quest.selection", "dur": 0.5, "status": "ok"},
        {"type": "event", "name": "cache.hit"},
        {"type": "event", "name": "cache.hit"},
    ]
    summary = summarize_records(records)
    assert summary.records == 5
    assert summary.spans["quest.synthesis"].count == 2
    assert summary.spans["quest.synthesis"].total_seconds == 3.0
    assert summary.spans["quest.synthesis"].errors == 1
    assert summary.events == {"cache.hit": 2}
    assert summary.stage_totals() == {"synthesis": 3.0, "selection": 0.5}
    text = render_summary(summary)
    assert "quest.synthesis" in text
    assert "cache.hit" in text
    assert "5 record(s)" in text


def test_summarize_trace_skips_malformed_lines(tmp_path):
    path = tmp_path / "junk.trace"
    path.write_text(
        '{"type":"span","name":"quest.partition","dur":0.25,"status":"ok"}\n'
        "this is not json\n"
        "\n"
        '["a","list","not","a","dict"]\n'
    )
    summary = summarize_trace(path)
    assert summary.records == 1
    assert summary.malformed_lines == 2
    assert "malformed" in render_summary(summary)


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
def test_configure_logging_splits_streams(capsys):
    logger = configure_logging("info")
    logger.info("progress line")
    logger.warning("degradation line")
    captured = capsys.readouterr()
    assert "progress line" in captured.out
    assert "progress line" not in captured.err
    assert "degradation line" in captured.err
    assert "degradation line" not in captured.out


def test_configure_logging_level_filters(capsys):
    logger = configure_logging("warning")
    logger.info("hidden")
    logger.warning("shown")
    captured = capsys.readouterr()
    assert "hidden" not in captured.out
    assert "shown" in captured.err


def test_configure_logging_is_idempotent(capsys):
    configure_logging("info")
    logger = configure_logging("info")
    assert len(logger.handlers) == 2
    logger.info("once")
    assert capsys.readouterr().out.count("once") == 1


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging("verbose")


def test_get_logger_namespacing():
    assert get_logger().name == "repro"
    assert get_logger("cli").name == "repro.cli"
    assert isinstance(get_logger("cli"), logging.Logger)
