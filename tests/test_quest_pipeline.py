"""End-to-end tests of the QUEST pipeline (kept small for speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import QuestConfig, ensemble_distribution, run_quest, tvd
from repro.algorithms import tfim
from repro.circuits import Circuit
from repro.core.bounds import total_bound
from repro.exceptions import SelectionError
from repro.linalg import hs_distance
from repro.sim import circuit_unitary, ideal_distribution

#: A deliberately small configuration so the pipeline runs in seconds.
FAST = QuestConfig(
    seed=7,
    max_samples=4,
    max_layers_per_block=3,
    solutions_per_layer=2,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    block_time_budget=10.0,
    threshold_per_block=0.3,
)


@pytest.fixture(scope="module")
def tfim_result():
    return run_quest(tfim(3, steps=2), FAST)


def test_rejects_cnot_free_circuits():
    circuit = Circuit(2)
    circuit.h(0)
    with pytest.raises(SelectionError):
        run_quest(circuit)


def test_produces_approximations(tfim_result):
    assert len(tfim_result.circuits) >= 1
    assert tfim_result.selection.num_selected == len(tfim_result.circuits)


def test_never_worse_than_baseline(tfim_result):
    original = tfim_result.original_cnot_count
    for count in tfim_result.cnot_counts:
        assert count <= original


def test_reduces_cnots(tfim_result):
    assert tfim_result.best_cnot_count < tfim_result.original_cnot_count
    assert tfim_result.cnot_reduction > 0.0


def test_bound_respected_by_selection(tfim_result):
    for choice, reported in zip(
        tfim_result.selection.choices, tfim_result.selection.bounds
    ):
        recomputed = total_bound(
            [
                pool.candidates[int(i)].distance
                for pool, i in zip(tfim_result.pools, choice)
            ]
        )
        assert reported == pytest.approx(recomputed)
        assert reported <= tfim_result.threshold + 1e-9


def test_actual_distance_within_bound(tfim_result):
    baseline_unitary = circuit_unitary(tfim_result.baseline)
    for circuit, bound in zip(
        tfim_result.circuits, tfim_result.selection.bounds
    ):
        actual = hs_distance(circuit_unitary(circuit), baseline_unitary)
        assert actual <= bound + 1e-6


def test_ensemble_output_close_to_ground_truth(tfim_result):
    ground_truth = ideal_distribution(tfim_result.baseline)
    ensemble = ensemble_distribution(tfim_result.circuits)
    assert tvd(ground_truth, ensemble) < 0.15


def test_timings_populated(tfim_result):
    timings = tfim_result.timings
    assert timings.synthesis_seconds > 0.0
    assert timings.total_seconds >= timings.synthesis_seconds


def test_noisy_ensemble_records_timing(tfim_result):
    from repro.noise import NoiseModel

    assert tfim_result.timings.noisy_eval_seconds == 0.0
    noisy = tfim_result.noisy_ensemble(NoiseModel.from_noise_level(0.01))
    assert noisy.shape == (2**tfim_result.baseline.num_qubits,)
    assert noisy.sum() == pytest.approx(1.0)
    first = tfim_result.timings.noisy_eval_seconds
    assert first > 0.0
    # A second evaluation accumulates rather than overwrites.
    tfim_result.noisy_ensemble(NoiseModel.from_noise_level(0.001))
    assert tfim_result.timings.noisy_eval_seconds > first
    # Noisy-eval time is post-pipeline work, not part of the Fig. 12 total.
    assert tfim_result.timings.total_seconds == pytest.approx(
        tfim_result.timings.partition_seconds
        + tfim_result.timings.synthesis_seconds
        + tfim_result.timings.annealing_seconds
    )


def test_pools_always_contain_original(tfim_result):
    for pool in tfim_result.pools:
        assert pool.candidates[0].distance == 0.0
        assert np.allclose(
            pool.candidates[0].unitary, pool.original_unitary
        )


def test_measurements_are_stripped():
    circuit = tfim(3, steps=1)
    circuit.measure_all()
    result = run_quest(circuit, FAST)
    for approx in result.circuits:
        assert not approx.has_measurements()


def test_summary_format(tfim_result):
    text = tfim_result.summary()
    assert "approximations" in text
    assert "%" in text


def test_empty_selection_raises_selection_error():
    """Satellite of the resilience PR: an empty ensemble is a typed,

    catchable failure — not a bare ValueError (min of empty list) or a
    silent NaN reduction.
    """
    from repro.core.quest import QuestResult

    empty = QuestResult(original=tfim(3, steps=1), baseline=tfim(3, steps=1))
    with pytest.raises(SelectionError, match="no circuits"):
        empty.best_cnot_count
    with pytest.raises(SelectionError, match="no circuits"):
        empty.cnot_reduction
