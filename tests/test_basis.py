"""Tests for basis translation to {rotations, CX}."""

from __future__ import annotations

import pytest

from repro.circuits import (
    GATE_NUM_PARAMS,
    GATE_NUM_QUBITS,
    Circuit,
    Gate,
    Operation,
    random_circuit,
)
from repro.linalg import equal_up_to_global_phase
from repro.sim import circuit_unitary
from repro.transpile import lower_to_basis

_BASIS = frozenset({"cx", "rx", "ry", "rz", "p"})

ALL_GATES = [
    name
    for name in GATE_NUM_PARAMS
    if name not in ("measure", "barrier")
]


@pytest.mark.parametrize("name", ALL_GATES)
def test_each_gate_lowers_equivalently(name):
    arity = GATE_NUM_QUBITS[name]
    params = tuple(0.37 * (i + 1) for i in range(GATE_NUM_PARAMS[name]))
    circuit = Circuit(max(arity, 1))
    circuit.append(Operation(Gate(name, params), tuple(range(arity))))
    lowered = lower_to_basis(circuit)
    assert all(op.name in _BASIS for op in lowered.operations)
    assert equal_up_to_global_phase(
        circuit_unitary(lowered), circuit_unitary(circuit), atol=1e-8
    )


def test_lowering_preserves_measure_and_barrier():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.barrier()
    circuit.measure(0, 1)
    lowered = lower_to_basis(circuit)
    names = [op.name for op in lowered.operations]
    assert "barrier" in names
    assert "measure" in names
    measure = [op for op in lowered.operations if op.name == "measure"][0]
    assert measure.cbit == 1


def test_lowering_random_circuits(rng):
    for _ in range(5):
        circuit = random_circuit(4, 5, rng=rng)
        lowered = lower_to_basis(circuit)
        assert equal_up_to_global_phase(
            circuit_unitary(lowered), circuit_unitary(circuit), atol=1e-8
        )


def test_cnot_count_after_lowering_matches_cost():
    circuit = Circuit(3)
    circuit.swap(0, 1)
    circuit.ccx(0, 1, 2)
    circuit.rzz(0.4, 1, 2)
    lowered = lower_to_basis(circuit)
    native_cx = sum(1 for op in lowered.operations if op.name == "cx")
    assert native_cx == circuit.cnot_count()
