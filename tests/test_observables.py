"""Tests for magnetization observables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import average_magnetization, staggered_magnetization
from repro.circuits import Circuit
from repro.exceptions import ReproError
from repro.sim import ideal_distribution


def test_all_up_state():
    probs = np.zeros(8)
    probs[0] = 1.0  # |000>: all spins up.
    assert average_magnetization(probs, 3) == pytest.approx(1.0)
    assert staggered_magnetization(probs, 3) == pytest.approx(1.0 / 3.0)


def test_all_down_state():
    probs = np.zeros(8)
    probs[7] = 1.0
    assert average_magnetization(probs, 3) == pytest.approx(-1.0)


def test_single_flip():
    probs = np.zeros(4)
    probs[1] = 1.0  # qubit 0 down, qubit 1 up.
    assert average_magnetization(probs, 2) == pytest.approx(0.0)
    assert staggered_magnetization(probs, 2) == pytest.approx(-1.0)


def test_uniform_distribution_zero_magnetization():
    probs = np.full(16, 1.0 / 16.0)
    assert average_magnetization(probs, 4) == pytest.approx(0.0)
    assert staggered_magnetization(probs, 4) == pytest.approx(0.0)


def test_neel_state():
    # |0101> (little-endian: qubits 0,2 down? index 5 = bits 101 -> q0=1,q2=1).
    probs = np.zeros(16)
    probs[0b0101] = 1.0  # qubits 0 and 2 down, 1 and 3 up.
    assert average_magnetization(probs, 4) == pytest.approx(0.0)
    assert staggered_magnetization(probs, 4) == pytest.approx(-1.0)


def test_shape_validation():
    with pytest.raises(ReproError):
        average_magnetization(np.zeros(5), 3)
    with pytest.raises(ReproError):
        staggered_magnetization(np.zeros(5), 3)


def test_superposition_magnetization():
    circuit = Circuit(2)
    circuit.h(0)
    probs = ideal_distribution(circuit)
    # Qubit 0 contributes 0, qubit 1 contributes +1.
    assert average_magnetization(probs, 2) == pytest.approx(0.5)
