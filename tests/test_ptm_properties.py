"""Property-based agreement tests for the PTM engine (hypothesis).

The PTM and density-matrix engines implement the same exact channel
semantics through entirely different linear algebra (Pauli-basis
contraction vs. operator conjugation), so pointwise agreement on random
circuits under random noise models is a strong end-to-end check of
both.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import random_circuit
from repro.metrics.tolerances import PTM_DENSITY_AGREEMENT_ATOL
from repro.noise import NoiseModel, run_density, run_ptm
from repro.noise.ptm import PtmCache, unitary_ptm
from repro.resilience.validation import validate_ptm

noise_models = st.builds(
    NoiseModel,
    one_qubit_error=st.floats(0.0, 0.05),
    two_qubit_error=st.floats(0.0, 0.1),
    readout_error=st.floats(0.0, 0.05),
    idle_decoherence=st.floats(0.0, 0.02),
)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 4),
    depth=st.integers(1, 5),
    noise=noise_models,
)
def test_ptm_agrees_with_density(seed, n, depth, noise):
    circuit = random_circuit(n, depth, rng=seed)
    np.testing.assert_allclose(
        run_ptm(circuit, noise, cache=PtmCache()),
        run_density(circuit, noise),
        atol=PTM_DENSITY_AGREEMENT_ATOL,
        rtol=0.0,
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 4), noise=noise_models)
def test_ptm_distribution_is_normalized(seed, n, noise):
    circuit = random_circuit(n, 3, rng=seed)
    probs = run_ptm(circuit, noise)
    assert np.all(probs >= 0.0)
    assert abs(probs.sum() - 1.0) < 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), k=st.integers(1, 2))
def test_random_unitary_ptm_validates(seed, k):
    from repro.circuits.random_circuits import random_unitary

    gate = random_unitary(2**k, rng=seed)
    ptm = unitary_ptm(gate, k)
    validate_ptm(ptm, k)  # trace-preserving and completely positive
