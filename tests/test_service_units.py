"""Service-layer units: scheduler, breaker, ledger, protocol.

Everything here runs without a daemon: the scheduler and breaker are
plain lock-guarded state, the ledger is a directory, and the protocol
is pure serialization — which is exactly why they are separable from
the asyncio front end and testable at this granularity.
"""

from __future__ import annotations

import json

import pytest

from repro.core.quest import QuestConfig
from repro.exceptions import AdmissionRejected, ServiceError
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.ledger import JobLedger
from repro.service.protocol import (
    JOB_DONE,
    JOB_PENDING,
    JOB_RUNNING,
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
    REJECT_TENANT_QUOTA,
    JobRecord,
    decode_message,
    encode_message,
    merge_config,
    rejection_from_message,
    rejection_to_message,
)
from repro.service.scheduler import FairScheduler


def _job(job_id: str, tenant: str = "default") -> JobRecord:
    return JobRecord(job_id=job_id, tenant=tenant, qasm="OPENQASM 2.0;")


# ----------------------------------------------------------------------
# FairScheduler: bounded admission
# ----------------------------------------------------------------------
def test_admit_within_capacity_then_structured_queue_full():
    scheduler = FairScheduler(capacity=2)
    assert scheduler.admit(_job("a")) is None
    assert scheduler.admit(_job("b")) is None
    rejection = scheduler.admit(_job("c"))
    assert isinstance(rejection, AdmissionRejected)
    assert rejection.reason == REJECT_QUEUE_FULL
    assert rejection.queue_depth == 2
    assert rejection.capacity == 2
    assert scheduler.depth == 2
    assert scheduler.rejected == {REJECT_QUEUE_FULL: 1}


def test_tenant_quota_rejects_before_global_capacity():
    scheduler = FairScheduler(capacity=10, tenant_quotas={"noisy": 1})
    assert scheduler.admit(_job("a", "noisy")) is None
    rejection = scheduler.admit(_job("b", "noisy"))
    assert rejection.reason == REJECT_TENANT_QUOTA
    assert rejection.tenant == "noisy"
    # Other tenants are unaffected by the noisy tenant's quota.
    assert scheduler.admit(_job("c", "quiet")) is None
    assert scheduler.depths() == {"noisy": 1, "quiet": 1}


def test_draining_scheduler_rejects_everything():
    scheduler = FairScheduler(capacity=4)
    assert scheduler.admit(_job("a")) is None
    leftover = scheduler.drain()
    assert [j.job_id for j in leftover] == ["a"]
    assert scheduler.depth == 0
    assert scheduler.draining
    rejection = scheduler.admit(_job("b"))
    assert rejection.reason == REJECT_SHUTTING_DOWN


def test_scheduler_validation():
    with pytest.raises(ValueError, match="capacity"):
        FairScheduler(capacity=0)
    with pytest.raises(ValueError, match="weight"):
        FairScheduler(tenant_weights={"t": 0.0})
    with pytest.raises(ValueError, match="default_weight"):
        FairScheduler(default_weight=-1.0)


# ----------------------------------------------------------------------
# FairScheduler: weighted fairness
# ----------------------------------------------------------------------
def test_equal_weights_interleave_tenants():
    scheduler = FairScheduler(capacity=16)
    for i in range(3):
        scheduler.admit(_job(f"a{i}", "a"))
        scheduler.admit(_job(f"b{i}", "b"))
    order = [scheduler.next_job().tenant for _ in range(6)]
    assert order == ["a", "b", "a", "b", "a", "b"]
    assert scheduler.next_job() is None


def test_weighted_tenant_drains_proportionally():
    """Weight 2 vs. 1: the heavy tenant gets two dispatches per one."""
    scheduler = FairScheduler(capacity=32, tenant_weights={"heavy": 2.0})
    for i in range(6):
        scheduler.admit(_job(f"h{i}", "heavy"))
        scheduler.admit(_job(f"l{i}", "light"))
    first_six = [scheduler.next_job().tenant for _ in range(6)]
    assert first_six.count("heavy") == 4
    assert first_six.count("light") == 2


def test_idle_tenant_does_not_accumulate_credit():
    """A tenant that sat idle re-enters at the current virtual time, so
    its backlog interleaves fairly instead of monopolizing the head."""
    scheduler = FairScheduler(capacity=32)
    for i in range(4):
        scheduler.admit(_job(f"a{i}", "a"))
    # Drain two of a's jobs while b is idle.
    assert scheduler.next_job().tenant == "a"
    assert scheduler.next_job().tenant == "a"
    # b arrives late with a burst; it must not get all its jobs first.
    for i in range(4):
        scheduler.admit(_job(f"b{i}", "b"))
    order = [scheduler.next_job().tenant for _ in range(6)]
    assert order.count("a") == 2 and order.count("b") == 4
    assert set(order[:2]) == {"a", "b"}


def test_fifo_within_a_tenant():
    scheduler = FairScheduler(capacity=8)
    for i in range(3):
        scheduler.admit(_job(f"j{i}"))
    assert [scheduler.next_job().job_id for _ in range(3)] == [
        "j0", "j1", "j2",
    ]


def test_tenant_summary_reports_accounting():
    scheduler = FairScheduler(capacity=8, tenant_weights={"a": 2.0})
    scheduler.admit(_job("x", "a"))
    scheduler.next_job()
    summary = scheduler.tenant_summary()
    assert summary["a"]["dispatched"] == 1
    assert summary["a"]["queued"] == 0
    assert summary["a"]["weight"] == 2.0


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_breaker_opens_after_threshold_consecutive_failures():
    clock = _FakeClock()
    breaker = CircuitBreaker(3, 10.0, clock=clock)
    assert breaker.state == CLOSED
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    assert breaker.allow_full_path()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow_full_path()
    assert breaker.times_opened == 1


def test_breaker_success_resets_the_consecutive_count():
    breaker = CircuitBreaker(2, 10.0, clock=_FakeClock())
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never two *consecutive* failures


def test_breaker_half_open_admits_exactly_one_probe():
    clock = _FakeClock()
    breaker = CircuitBreaker(1, 10.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.now = 10.0
    assert breaker.state == HALF_OPEN
    assert breaker.allow_full_path()       # the probe
    assert not breaker.allow_full_path()   # everyone else stays degraded
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow_full_path()


def test_breaker_failed_probe_reopens_for_another_cooldown():
    clock = _FakeClock()
    breaker = CircuitBreaker(1, 10.0, clock=clock)
    breaker.record_failure()
    clock.now = 10.0
    assert breaker.allow_full_path()
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.now = 19.0
    assert breaker.state == OPEN  # the cooldown restarted at t=10
    clock.now = 20.0
    assert breaker.state == HALF_OPEN
    assert breaker.times_opened == 2


def test_breaker_validation_and_snapshot():
    with pytest.raises(ValueError, match="failure_threshold"):
        CircuitBreaker(0)
    with pytest.raises(ValueError, match="cooldown_seconds"):
        CircuitBreaker(1, 0.0)
    snapshot = CircuitBreaker(3, 5.0).snapshot()
    assert snapshot["state"] == CLOSED
    assert snapshot["failure_threshold"] == 3
    assert snapshot["cooldown_seconds"] == 5.0


# ----------------------------------------------------------------------
# JobLedger
# ----------------------------------------------------------------------
def test_ledger_round_trips_records(tmp_path):
    ledger = JobLedger(tmp_path / "ledger")
    record = JobRecord(
        job_id="job000001",
        tenant="t",
        qasm="OPENQASM 2.0;",
        config_overrides={"max_samples": 3},
        deadline_at=1234.5,
    )
    ledger.store(record)
    loaded = ledger.load("job000001")
    assert loaded == record
    assert ledger.load("missing") is None


def test_ledger_state_transitions_overwrite_atomically(tmp_path):
    ledger = JobLedger(tmp_path)
    record = JobRecord(job_id="j1", tenant="t", qasm="q")
    for state in (JOB_PENDING, JOB_RUNNING, JOB_DONE):
        record.state = state
        ledger.store(record)
    assert ledger.load("j1").state == JOB_DONE
    assert len(list(tmp_path.glob("job-*.json"))) == 1


def test_ledger_load_all_orders_by_submission(tmp_path):
    ledger = JobLedger(tmp_path)
    for job_id, submitted in (("b", 2.0), ("a", 1.0), ("c", 3.0)):
        ledger.store(
            JobRecord(job_id=job_id, tenant="t", qasm="q", submitted_at=submitted)
        )
    assert [r.job_id for r in ledger.load_all()] == ["a", "b", "c"]


def test_ledger_quarantines_corrupt_entries(tmp_path):
    ledger = JobLedger(tmp_path)
    ledger.store(JobRecord(job_id="good", tenant="t", qasm="q"))
    ledger.store(JobRecord(job_id="bad", tenant="t", qasm="q"))
    path = tmp_path / "job-bad.json"
    envelope = json.loads(path.read_text())
    envelope["record"] = envelope["record"].replace('"t"', '"x"', 1)
    path.write_text(json.dumps(envelope))
    survivors = ledger.load_all()
    assert [r.job_id for r in survivors] == ["good"]
    assert ledger.corrupt_entries == 1
    assert list(tmp_path.glob("*.corrupt"))
    # The quarantined entry no longer shadows the id.
    assert ledger.load("bad") is None


def test_ledger_rejects_pathological_job_ids(tmp_path):
    ledger = JobLedger(tmp_path)
    for bad in ("", "a/b", "a\\b", ".", "..", "x" * 129):
        with pytest.raises(ServiceError, match="invalid job id"):
            ledger.store(JobRecord(job_id=bad, tenant="t", qasm="q"))


def test_ledger_checkpoint_dir_is_per_job(tmp_path):
    ledger = JobLedger(tmp_path)
    a = ledger.checkpoint_dir("job1")
    b = ledger.checkpoint_dir("job2")
    assert a != b
    assert a.parent == ledger.directory


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
def test_merge_config_applies_known_overrides():
    base = QuestConfig(max_samples=16)
    merged = merge_config(base, {"max_samples": 3, "threshold_per_block": 0.3})
    assert merged.max_samples == 3
    assert merged.threshold_per_block == 0.3
    assert base.max_samples == 16  # base untouched
    assert merge_config(base, None) is base


def test_merge_config_rejects_unknown_and_substrate_fields():
    base = QuestConfig()
    with pytest.raises(ServiceError, match="unknown QuestConfig field"):
        merge_config(base, {"no_such_knob": 1})
    with pytest.raises(ServiceError, match="substrate-owned"):
        merge_config(base, {"workers": 8})
    with pytest.raises(ServiceError, match="substrate-owned"):
        merge_config(base, {"checkpoint_dir": "/tmp/x"})
    with pytest.raises(ServiceError, match="must be an object"):
        merge_config(base, ["not", "a", "dict"])


def test_job_record_round_trip_and_validation():
    record = JobRecord(job_id="j", tenant="t", qasm="q", deadline_at=5.0)
    assert JobRecord.from_dict(record.to_dict()) == record
    with pytest.raises(ServiceError, match="unknown field"):
        JobRecord.from_dict({**record.to_dict(), "bogus": 1})
    with pytest.raises(ServiceError, match="unknown state"):
        JobRecord.from_dict({**record.to_dict(), "state": "limbo"})
    with pytest.raises(ServiceError, match="malformed"):
        JobRecord.from_dict({"job_id": "j"})


def test_deadline_remaining():
    record = JobRecord(job_id="j", tenant="t", qasm="q", deadline_at=100.0)
    assert record.deadline_remaining(40.0) == 60.0
    assert record.deadline_remaining(120.0) == -20.0
    unbounded = JobRecord(job_id="j", tenant="t", qasm="q")
    assert unbounded.deadline_remaining(40.0) is None


def test_rejection_round_trips_the_wire():
    rejection = AdmissionRejected(
        REJECT_QUEUE_FULL,
        "queue at capacity (4 jobs)",
        tenant="t",
        queue_depth=4,
        capacity=4,
    )
    rebuilt = rejection_from_message(rejection_to_message(rejection))
    assert rebuilt.reason == rejection.reason
    assert rebuilt.detail == rejection.detail
    assert rebuilt.tenant == "t"
    assert rebuilt.queue_depth == 4
    assert rebuilt.capacity == 4


def test_encode_decode_message_round_trip_and_garbage():
    frame = encode_message({"type": "status", "n": 1})
    assert frame.endswith(b"\n")
    assert decode_message(frame) == {"type": "status", "n": 1}
    with pytest.raises(ServiceError, match="undecodable"):
        decode_message(b"not json\n")
    with pytest.raises(ServiceError, match="'type'"):
        decode_message(b'{"no": "type"}\n')
