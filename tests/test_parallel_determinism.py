"""Determinism regression tests for parallel/cached synthesis.

The contract: for a fixed ``QuestConfig.seed``, worker count and cache
state are pure performance knobs — selections, CNOT counts, and bounds
are byte-identical across every combination.  This holds because
(a) per-block seeds are drawn up front in block order, (b) blocks with
identical content keys canonicalize to the first occurrence's seed, and
(c) LEAP is deterministic given (target, config, seed).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel.executor as executor_module
from repro.algorithms import qft, tfim
from repro.circuits.random_circuits import random_circuit
from repro.core.quest import QuestConfig, _draw_block_seeds, run_quest

BASE = dict(
    seed=11,
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,  # a binding wall-clock budget is the one
    # legitimate source of nondeterminism, so determinism tests run
    # unbounded
)

CIRCUITS = {
    "tfim": lambda: tfim(4, steps=2),
    "qft": lambda: qft(4),
    "random": lambda: random_circuit(4, depth=3, rng=5),
}


def _signature(result):
    """Everything the acceptance contract pins, as plain comparables."""
    return {
        "choices": [
            tuple(int(i) for i in choice)
            for choice in result.selection.choices
        ],
        "cnot_counts": result.cnot_counts,
        "bounds": result.selection.bounds,
        "pool_distances": [
            pool.distances().tolist() for pool in result.pools
        ],
    }


@pytest.fixture(scope="module")
def reference():
    """Serial, cache-on runs: the baseline every variant must match."""
    return {
        name: run_quest(make(), QuestConfig(**BASE, workers=1, cache=True))
        for name, make in CIRCUITS.items()
    }


@pytest.mark.parametrize("name", list(CIRCUITS))
@pytest.mark.parametrize(
    "workers,cache",
    [(1, False), (4, True), (4, False)],
    ids=["serial-nocache", "parallel-cache", "parallel-nocache"],
)
def test_selections_identical_across_modes(reference, name, workers, cache):
    config = QuestConfig(**BASE, workers=workers, cache=cache)
    result = run_quest(CIRCUITS[name](), config)
    assert _signature(result) == _signature(reference[name])


def test_trotterized_repeats_hit_the_cache(reference):
    """TFIM's repeated Trotter-step blocks synthesize once per run."""
    result = reference["tfim"]
    assert result.cache_hits > 0
    assert result.cache_misses < len(result.blocks)


def test_disk_cache_preserves_results(tmp_path, reference):
    config = QuestConfig(**BASE, cache_dir=str(tmp_path))
    cold = run_quest(CIRCUITS["tfim"](), config)
    warm = run_quest(CIRCUITS["tfim"](), config)
    assert _signature(cold) == _signature(reference["tfim"])
    assert _signature(warm) == _signature(reference["tfim"])
    assert warm.cache_misses == 0
    assert warm.cache_hits > 0


def test_repeated_runs_are_reproducible(reference):
    again = run_quest(
        CIRCUITS["qft"](), QuestConfig(**BASE, workers=1, cache=True)
    )
    assert _signature(again) == _signature(reference["qft"])


@pytest.mark.slow
def test_full_matrix_determinism_at_scale(tmp_path):
    """Heavier cross-product (TFIM-5, disk tier, 4 workers): same contract.

    Excluded from tier-1 by the ``slow`` marker; run with ``-m slow``.
    """
    heavy = dict(BASE, max_layers_per_block=3, max_optimizer_iterations=80)
    circuit = tfim(5, steps=2)
    reference = run_quest(circuit, QuestConfig(**heavy))
    variants = [
        QuestConfig(**heavy, workers=4),
        QuestConfig(**heavy, cache=False),
        QuestConfig(**heavy, workers=4, cache=False),
        QuestConfig(**heavy, cache_dir=str(tmp_path)),
        QuestConfig(**heavy, workers=4, cache_dir=str(tmp_path)),
    ]
    for config in variants:
        assert _signature(run_quest(circuit, config)) == _signature(
            reference
        )


# ----------------------------------------------------------------------
# The seed stream (regression for the lazy-draw bug)
# ----------------------------------------------------------------------
def test_block_seed_stream_is_pinned():
    """The per-block seed stream for a given config seed never changes.

    Seeds used to be drawn lazily inside the synthesis loop; these
    literals pin the pre-computed stream (PCG64 is stable across numpy
    versions) so any change to draw order or count is caught here.
    """
    rng = np.random.default_rng(7)
    assert _draw_block_seeds(rng, 6) == [
        2029167940,
        1342382291,
        1469265225,
        1926751965,
        1241873584,
        1665772334,
    ]
    # The annealing seed is drawn *after* the full block stream, so it is
    # independent of how many blocks synthesized, in which order, or on
    # how many workers.
    assert int(rng.integers(2**31 - 1)) == 1790251936


def test_blocks_receive_position_pinned_canonical_seeds(monkeypatch):
    """Each block synthesizes under the seed drawn for its position —
    except repeats, which canonicalize to the first occurrence's seed."""
    received: list[tuple[int, int]] = []
    real_task = executor_module._synthesize_solutions_task

    def recording_task(block, config, seed):
        received.append((block.index, seed))
        return real_task(block, config, seed)

    monkeypatch.setattr(
        executor_module, "_synthesize_solutions_task", recording_task
    )
    config = QuestConfig(**BASE, workers=1, cache=False)
    result = run_quest(CIRCUITS["tfim"](), config)

    drawn = _draw_block_seeds(
        np.random.default_rng(config.seed), len(result.blocks)
    )
    # Recompute the canonicalization independently: the first occurrence
    # of each content key claims its positional draw and dispatches the
    # one job that serves every repeat (repeats dedup, even cache-off).
    from repro.parallel.cache import content_key

    expected: dict[int, int] = {}
    nontrivial = 0
    first_by_content: dict[str, int] = {}
    for index, block in enumerate(result.blocks):
        if block.num_qubits == 1 or block.circuit.cnot_count() == 0:
            continue
        nontrivial += 1
        fingerprint = executor_module.leap_config_for_block(
            block.circuit.cnot_count(), config, seed=None
        ).fingerprint()
        content = content_key(block.unitary(), fingerprint)
        if content not in first_by_content:
            first_by_content[content] = drawn[index]
            expected[index] = drawn[index]

    by_index = dict(received)
    assert by_index == expected
    # TFIM Trotter steps repeat blocks, so dedup must have actually
    # collapsed some jobs (the test would be vacuous otherwise).
    assert len(expected) < nontrivial
    assert result.dedup_joins == nontrivial - len(expected)
