"""Tests for gate embedding and tensor application."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import gate_matrix, random_unitary
from repro.exceptions import SimulationError
from repro.linalg import (
    apply_gate_to_matrix,
    apply_gate_to_state,
    apply_gate_to_states,
    embed_unitary,
)


def test_one_qubit_embedding_matches_kron(rng):
    gate = random_unitary(2, rng)
    identity = np.eye(2)
    # Qubit 0 is the low-order factor.
    assert np.allclose(embed_unitary(gate, (0,), 2), np.kron(identity, gate))
    assert np.allclose(embed_unitary(gate, (1,), 2), np.kron(gate, identity))


def test_two_qubit_embedding_adjacent(rng):
    gate = random_unitary(4, rng)
    # On qubits (0, 1) of a 2-qubit system the embedding is the gate itself.
    assert np.allclose(embed_unitary(gate, (0, 1), 2), gate)


def test_two_qubit_embedding_reversed_is_swap_conjugation(rng):
    gate = random_unitary(4, rng)
    swap = gate_matrix("swap")
    embedded = embed_unitary(gate, (1, 0), 2)
    assert np.allclose(embedded, swap @ gate @ swap)


def test_three_qubit_embedding_middle(rng):
    gate = random_unitary(2, rng)
    expected = np.kron(np.eye(2), np.kron(gate, np.eye(2)))
    assert np.allclose(embed_unitary(gate, (1,), 3), expected)


def test_apply_state_matches_dense(rng):
    n = 4
    state = random_unitary(2**n, rng)[:, 0]
    gate = random_unitary(4, rng)
    for qubits in [(0, 2), (3, 1), (2, 3)]:
        dense = embed_unitary(gate, qubits, n)
        assert np.allclose(
            apply_gate_to_state(state, gate, qubits, n), dense @ state
        )


def test_apply_matrix_matches_dense(rng):
    n = 3
    matrix = random_unitary(2**n, rng)
    gate = random_unitary(2, rng)
    dense = embed_unitary(gate, (1,), n)
    assert np.allclose(
        apply_gate_to_matrix(matrix, gate, (1,), n), dense @ matrix
    )


def test_apply_preserves_norm(rng):
    state = random_unitary(8, rng)[:, 0]
    gate = random_unitary(4, rng)
    out = apply_gate_to_state(state, gate, (0, 2), 3)
    assert np.isclose(np.linalg.norm(out), 1.0)


def test_duplicate_targets_rejected(rng):
    state = np.zeros(4, dtype=complex)
    state[0] = 1.0
    with pytest.raises(SimulationError):
        apply_gate_to_state(state, np.eye(4), (0, 0), 2)


def test_out_of_range_target_rejected():
    state = np.zeros(4, dtype=complex)
    state[0] = 1.0
    with pytest.raises(SimulationError):
        apply_gate_to_state(state, np.eye(2), (5,), 2)


def test_gate_shape_mismatch_rejected():
    state = np.zeros(4, dtype=complex)
    state[0] = 1.0
    with pytest.raises(SimulationError):
        apply_gate_to_state(state, np.eye(4), (0,), 2)


def test_embedding_is_unitary(rng):
    gate = random_unitary(4, rng)
    embedded = embed_unitary(gate, (2, 0), 3)
    assert np.allclose(embedded.conj().T @ embedded, np.eye(8), atol=1e-10)


def test_one_qubit_fast_path_beyond_identity_cache(monkeypatch, rng):
    # The fast Kronecker path used to index a fixed identity cache and
    # raise a bare KeyError past 12 qubits; it must now fall back to a
    # fresh np.eye.  Shrinking the cache exercises the fallback without
    # allocating a 2^13-dim operator.
    from repro.linalg import embed as embed_module

    monkeypatch.setattr(
        embed_module,
        "_IDENTITIES",
        {k: np.eye(2**k, dtype=complex) for k in range(2)},
    )
    gate = random_unitary(2, rng)
    for qubit in range(4):
        dense = embed_module.embed_unitary(gate, (qubit,), 4)
        expected = embed_module.apply_gate_to_matrix(
            np.eye(16, dtype=complex), gate, (qubit,), 4
        )
        assert np.allclose(dense, expected, atol=1e-12)


# ----------------------------------------------------------------------
# Batched application
# ----------------------------------------------------------------------

def test_batched_matches_per_state(rng):
    n = 4
    batch = np.linalg.qr(
        rng.standard_normal((2**n, 7)) + 1j * rng.standard_normal((2**n, 7))
    )[0].T
    gate = random_unitary(4, rng)
    for qubits in [(0, 2), (3, 1), (2, 3), (1, 0)]:
        out = apply_gate_to_states(batch, gate, qubits, n)
        for row in range(batch.shape[0]):
            expected = apply_gate_to_state(batch[row], gate, qubits, n)
            assert np.allclose(out[row], expected, atol=1e-12)


def test_batched_single_row_matches_state(rng):
    state = random_unitary(8, rng)[:, 0]
    gate = random_unitary(2, rng)
    out = apply_gate_to_states(state[None, :], gate, (1,), 3)
    assert np.allclose(out[0], apply_gate_to_state(state, gate, (1,), 3))


def test_batched_input_not_modified(rng):
    batch = random_unitary(4, rng)[:2, :].copy()
    before = batch.copy()
    apply_gate_to_states(batch, gate_matrix("cx"), (0, 1), 2)
    assert np.array_equal(batch, before)


def test_batched_shape_validation(rng):
    gate = random_unitary(2, rng)
    with pytest.raises(SimulationError):
        apply_gate_to_states(np.zeros(4, dtype=complex), gate, (0,), 2)
    with pytest.raises(SimulationError):
        apply_gate_to_states(np.zeros((3, 5), dtype=complex), gate, (0,), 2)
    with pytest.raises(SimulationError):
        apply_gate_to_states(np.zeros((3, 4), dtype=complex), gate, (0, 0), 2)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_qubits=st.integers(2, 5),
    batch=st.integers(1, 6),
    gate_arity=st.integers(1, 2),
)
def test_batched_property_matches_per_state(seed, num_qubits, batch, gate_arity):
    """The batched kernel equals row-by-row application for random gates
    and targets — including non-adjacent and reversed qubit tuples."""
    rng = np.random.default_rng(seed)
    gate_arity = min(gate_arity, num_qubits)
    qubits = tuple(
        int(q) for q in rng.choice(num_qubits, size=gate_arity, replace=False)
    )
    gate = random_unitary(2**gate_arity, rng)
    states = rng.standard_normal((batch, 2**num_qubits)) + 1j * rng.standard_normal(
        (batch, 2**num_qubits)
    )
    states /= np.linalg.norm(states, axis=1, keepdims=True)
    out = apply_gate_to_states(states, gate, qubits, num_qubits)
    for row in range(batch):
        expected = apply_gate_to_state(states[row], gate, qubits, num_qubits)
        assert np.allclose(out[row], expected, atol=1e-12)
    # Reversing the qubit tuple must act like reversing it per-state too.
    if gate_arity == 2:
        reversed_out = apply_gate_to_states(
            states, gate, qubits[::-1], num_qubits
        )
        for row in range(batch):
            expected = apply_gate_to_state(
                states[row], gate, qubits[::-1], num_qubits
            )
            assert np.allclose(reversed_out[row], expected, atol=1e-12)
