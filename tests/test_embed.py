"""Tests for gate embedding and tensor application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import gate_matrix, random_unitary
from repro.exceptions import SimulationError
from repro.linalg import apply_gate_to_matrix, apply_gate_to_state, embed_unitary


def test_one_qubit_embedding_matches_kron(rng):
    gate = random_unitary(2, rng)
    identity = np.eye(2)
    # Qubit 0 is the low-order factor.
    assert np.allclose(embed_unitary(gate, (0,), 2), np.kron(identity, gate))
    assert np.allclose(embed_unitary(gate, (1,), 2), np.kron(gate, identity))


def test_two_qubit_embedding_adjacent(rng):
    gate = random_unitary(4, rng)
    # On qubits (0, 1) of a 2-qubit system the embedding is the gate itself.
    assert np.allclose(embed_unitary(gate, (0, 1), 2), gate)


def test_two_qubit_embedding_reversed_is_swap_conjugation(rng):
    gate = random_unitary(4, rng)
    swap = gate_matrix("swap")
    embedded = embed_unitary(gate, (1, 0), 2)
    assert np.allclose(embedded, swap @ gate @ swap)


def test_three_qubit_embedding_middle(rng):
    gate = random_unitary(2, rng)
    expected = np.kron(np.eye(2), np.kron(gate, np.eye(2)))
    assert np.allclose(embed_unitary(gate, (1,), 3), expected)


def test_apply_state_matches_dense(rng):
    n = 4
    state = random_unitary(2**n, rng)[:, 0]
    gate = random_unitary(4, rng)
    for qubits in [(0, 2), (3, 1), (2, 3)]:
        dense = embed_unitary(gate, qubits, n)
        assert np.allclose(
            apply_gate_to_state(state, gate, qubits, n), dense @ state
        )


def test_apply_matrix_matches_dense(rng):
    n = 3
    matrix = random_unitary(2**n, rng)
    gate = random_unitary(2, rng)
    dense = embed_unitary(gate, (1,), n)
    assert np.allclose(
        apply_gate_to_matrix(matrix, gate, (1,), n), dense @ matrix
    )


def test_apply_preserves_norm(rng):
    state = random_unitary(8, rng)[:, 0]
    gate = random_unitary(4, rng)
    out = apply_gate_to_state(state, gate, (0, 2), 3)
    assert np.isclose(np.linalg.norm(out), 1.0)


def test_duplicate_targets_rejected(rng):
    state = np.zeros(4, dtype=complex)
    state[0] = 1.0
    with pytest.raises(SimulationError):
        apply_gate_to_state(state, np.eye(4), (0, 0), 2)


def test_out_of_range_target_rejected():
    state = np.zeros(4, dtype=complex)
    state[0] = 1.0
    with pytest.raises(SimulationError):
        apply_gate_to_state(state, np.eye(2), (5,), 2)


def test_gate_shape_mismatch_rejected():
    state = np.zeros(4, dtype=complex)
    state[0] = 1.0
    with pytest.raises(SimulationError):
        apply_gate_to_state(state, np.eye(4), (0,), 2)


def test_embedding_is_unitary(rng):
    gate = random_unitary(4, rng)
    embedded = embed_unitary(gate, (2, 0), 3)
    assert np.allclose(embedded.conj().T @ embedded, np.eye(8), atol=1e-10)
