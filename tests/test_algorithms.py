"""Tests for the Table-1 benchmark algorithm generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    adder,
    adder_layout,
    benchmark_suite,
    heisenberg,
    hlf,
    multiplier,
    multiplier_layout,
    qaoa_maxcut,
    qft,
    inverse_qft,
    random_hlf,
    random_qaoa,
    spin_evolution,
    SpinModelParams,
    tfim,
    vqe_ansatz,
    xy_model,
)
from repro.circuits import Circuit
from repro.exceptions import CircuitError
from repro.linalg import equal_up_to_global_phase
from repro.sim import circuit_unitary, ideal_distribution, run_statevector


def _dominant_state(circuit: Circuit) -> int:
    state = run_statevector(circuit)
    index = int(np.argmax(np.abs(state) ** 2))
    assert abs(state[index]) ** 2 > 0.999
    return index


def _read_register(index: int, qubits: list[int]) -> int:
    return sum(((index >> q) & 1) << i for i, q in enumerate(qubits))


class TestAdder:
    @pytest.mark.parametrize("nbits", [1, 2])
    def test_classical_addition(self, nbits):
        layout = adder_layout(nbits)
        base = adder(nbits)
        for a in range(2**nbits):
            for b in range(2**nbits):
                circuit = Circuit(base.num_qubits)
                for i, q in enumerate(layout["a"]):
                    if (a >> i) & 1:
                        circuit.x(q)
                for i, q in enumerate(layout["b"]):
                    if (b >> i) & 1:
                        circuit.x(q)
                circuit.extend(base.operations)
                index = _dominant_state(circuit)
                total = _read_register(index, layout["b"]) + (
                    _read_register(index, layout["cout"]) << nbits
                )
                assert total == a + b
                assert _read_register(index, layout["a"]) == a

    def test_smallest_adder_is_four_qubits(self):
        assert adder(1).num_qubits == 4

    def test_rejects_zero_bits(self):
        with pytest.raises(CircuitError):
            adder(0)


class TestMultiplier:
    @pytest.mark.parametrize("nbits", [1, 2])
    def test_classical_multiplication(self, nbits):
        layout = multiplier_layout(nbits)
        base = multiplier(nbits)
        for a in range(2**nbits):
            for b in range(2**nbits):
                circuit = Circuit(base.num_qubits)
                for i, q in enumerate(layout["a"]):
                    if (a >> i) & 1:
                        circuit.x(q)
                for i, q in enumerate(layout["b"]):
                    if (b >> i) & 1:
                        circuit.x(q)
                circuit.extend(base.operations)
                index = _dominant_state(circuit)
                assert _read_register(index, layout["out"]) == a * b
                # The temporary register is uncomputed.
                assert _read_register(index, layout["temp"]) == 0

    def test_rejects_zero_bits(self):
        with pytest.raises(CircuitError):
            multiplier(0)


class TestQft:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        unitary = circuit_unitary(qft(n))
        dim = 2**n
        omega = np.exp(2j * np.pi / dim)
        dft = np.array(
            [[omega ** (j * k) for k in range(dim)] for j in range(dim)]
        ) / np.sqrt(dim)
        assert np.allclose(unitary, dft, atol=1e-9)

    def test_inverse_qft(self):
        product = circuit_unitary(qft(3)) @ circuit_unitary(inverse_qft(3))
        assert equal_up_to_global_phase(product, np.eye(8), atol=1e-8)

    def test_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            qft(0)


class TestHlf:
    def test_rejects_asymmetric(self):
        with pytest.raises(CircuitError):
            hlf(np.array([[0, 1], [0, 0]]))

    def test_rejects_non_binary(self):
        with pytest.raises(CircuitError):
            hlf(np.array([[2]]))

    def test_structure(self):
        adjacency = np.array([[1, 1], [1, 0]])
        circuit = hlf(adjacency)
        names = [op.name for op in circuit.operations]
        assert names.count("h") == 4
        assert names.count("cz") == 1
        assert names.count("s") == 1

    def test_random_instance_runs(self, rng):
        circuit = random_hlf(4, rng=rng)
        probs = ideal_distribution(circuit)
        assert probs.sum() == pytest.approx(1.0)


class TestVariational:
    def test_qaoa_needs_angles(self):
        import networkx as nx

        graph = nx.path_graph(3)
        with pytest.raises(CircuitError):
            qaoa_maxcut(graph, [], [])

    def test_qaoa_structure(self):
        import networkx as nx

        graph = nx.path_graph(3)
        circuit = qaoa_maxcut(graph, [0.4], [0.3])
        counts = circuit.gate_counts()
        assert counts["h"] == 3
        assert counts["rzz"] == 2
        assert counts["rx"] == 3

    def test_random_qaoa_nonzero_entanglement(self, rng):
        circuit = random_qaoa(4, rounds=2, rng=rng)
        assert circuit.cnot_count() > 0

    def test_vqe_param_shape_checked(self):
        with pytest.raises(CircuitError):
            vqe_ansatz(3, layers=2, params=np.zeros((1, 3)))

    def test_vqe_deterministic_with_params(self):
        params = np.zeros((3, 4))
        a = vqe_ansatz(4, layers=2, params=params)
        b = vqe_ansatz(4, layers=2, params=params)
        assert a == b

    def test_vqe_circular_entangler(self):
        circuit = vqe_ansatz(4, layers=1, entangler="circular", rng=0)
        assert circuit.cnot_count() == 4
        with pytest.raises(CircuitError):
            vqe_ansatz(4, entangler="ring-of-fire")


class TestSpinModels:
    def test_zero_steps_is_empty(self):
        assert len(tfim(4, steps=0)) == 0

    def test_tfim_gate_structure(self):
        circuit = tfim(4, steps=1)
        counts = circuit.gate_counts()
        assert counts["rzz"] == 3
        assert counts["rx"] == 4

    def test_heisenberg_gate_structure(self):
        circuit = heisenberg(3, steps=1)
        counts = circuit.gate_counts()
        assert counts["rxx"] == 2
        assert counts["ryy"] == 2
        assert counts["rzz"] == 2
        assert counts["rz"] == 3

    def test_xy_gate_structure(self):
        circuit = xy_model(3, steps=2)
        counts = circuit.gate_counts()
        assert counts["rxx"] == 4
        assert counts["ryy"] == 4
        assert "rzz" not in counts

    def test_trotter_convergence(self):
        # Finer Trotter steps converge to the exact propagator.
        from scipy.linalg import expm

        n, total_time = 3, 0.4
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        z = np.diag([1, -1]).astype(complex)
        identity = np.eye(2, dtype=complex)

        def kron_chain(ops):
            out = ops[-1]
            for op in reversed(ops[:-1]):
                out = np.kron(op, out)
            return out  # little-endian: first op is lowest qubit

        ham = np.zeros((8, 8), dtype=complex)
        for q in range(n - 1):
            ops = [identity] * n
            ops[q] = z
            ops[q + 1] = z
            ham -= kron_chain(ops)
        for q in range(n):
            ops = [identity] * n
            ops[q] = x
            ham -= kron_chain(ops)
        exact = expm(-1j * ham * total_time)
        errors = []
        for steps in (2, 8, 32):
            circuit = tfim(n, steps=steps, dt=total_time / steps)
            diff = np.linalg.norm(circuit_unitary(circuit) - exact)
            errors.append(diff)
        assert errors[2] < errors[1] < errors[0]

    def test_params_validation(self):
        with pytest.raises(CircuitError):
            SpinModelParams(num_spins=1)
        with pytest.raises(CircuitError):
            SpinModelParams(num_spins=3, dt=0.0)
        with pytest.raises(CircuitError):
            spin_evolution(SpinModelParams(num_spins=3), steps=-1)


def test_benchmark_suite_complete():
    suite = benchmark_suite(rng=0)
    assert len(suite) == 9
    for name, circuit in suite.items():
        assert circuit.cnot_count() > 0, name
