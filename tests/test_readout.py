"""Tests for classical-bit (post-routing) distribution mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.exceptions import SimulationError
from repro.sim import ideal_distribution
from repro.sim.readout import (
    distribution_over_cbits,
    logical_distribution,
    measurement_map,
)


def test_measurement_map_extraction():
    circuit = Circuit(3)
    circuit.measure(2, 0)
    circuit.measure(0, 1)
    assert measurement_map(circuit) == {0: 2, 1: 0}


def test_measurement_map_duplicate_cbit():
    circuit = Circuit(2)
    circuit.measure(0, 0)
    circuit.measure(1, 0)
    with pytest.raises(SimulationError):
        measurement_map(circuit)


def test_identity_mapping_is_noop():
    probs = np.array([0.1, 0.2, 0.3, 0.4])
    out = distribution_over_cbits(probs, 2, {0: 0, 1: 1})
    assert np.allclose(out, probs)


def test_swap_mapping_permutes():
    # State |01> (qubit0=1) becomes cbit1=1 under the swapped mapping.
    probs = np.array([0.0, 1.0, 0.0, 0.0])
    out = distribution_over_cbits(probs, 2, {0: 1, 1: 0})
    assert out[2] == pytest.approx(1.0)


def test_marginalization():
    # Uniform over 2 qubits, read only qubit 1.
    probs = np.full(4, 0.25)
    out = distribution_over_cbits(probs, 2, {0: 1})
    assert np.allclose(out, [0.5, 0.5])


def test_cbits_must_be_contiguous():
    with pytest.raises(SimulationError):
        distribution_over_cbits(np.full(4, 0.25), 2, {1: 0})


def test_two_cbits_same_qubit_rejected():
    with pytest.raises(SimulationError):
        distribution_over_cbits(np.full(4, 0.25), 2, {0: 1, 1: 1})


def test_logical_distribution_without_measures(bell_circuit):
    probs = ideal_distribution(bell_circuit)
    assert np.allclose(logical_distribution(bell_circuit, probs), probs)


def test_logical_distribution_with_permuted_measures():
    # Prepare |x=1> on qubit 0 only, but read qubit 0 into cbit 1.
    circuit = Circuit(2)
    circuit.x(0)
    circuit.measure(0, 1)
    circuit.measure(1, 0)
    physical = ideal_distribution(circuit.without_measurements())
    logical = logical_distribution(circuit, physical)
    # Physical outcome is index 1 (qubit0=1); logical has cbit1=1 -> index 2.
    assert logical[2] == pytest.approx(1.0)
