"""Full-pipeline selection regression against pinned seed behavior.

The choice vectors below were recorded by running the pre-vectorization
selection engine (scalar objective, Python-loop similarity tables,
odometer exhaustive search) on these exact circuits and configs; the
vectorized engine was then verified byte-identical against that build.
All three instances resolve on the exhaustive path in both builds, so
the selections are fully deterministic — any drift in the padded gather
tables, the einsum similarity construction, the batched scorer, or the
chunked enumeration order shows up here as a changed vector.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import QuestConfig, run_quest
from repro.algorithms import qft, tfim
from repro.circuits.random_circuits import random_circuit

_FAST = dict(
    seed=7,
    max_samples=4,
    max_block_qubits=2,
    max_layers_per_block=3,
    solutions_per_layer=2,
    instantiation_starts=2,
    max_optimizer_iterations=120,
    block_time_budget=10.0,
    threshold_per_block=0.3,
)

#: (circuit factory, config, expected choices, expected per-choice CNOTs)
_CASES = {
    "tfim": (
        lambda: tfim(4, steps=2),
        QuestConfig(**_FAST, sphere_variants_per_count=0),
        [[1, 1, 1, 1, 1, 1]],
        [0],
    ),
    "qft": (
        lambda: qft(4),
        QuestConfig(**_FAST),
        [[0, 1, 1, 0, 1, 0, 0, 0]],
        [12],
    ),
    "random": (
        lambda: random_circuit(4, depth=10, rng=np.random.default_rng(5)),
        QuestConfig(**_FAST),
        [
            [0, 0, 1, 0, 0, 0, 0, 0, 0],
            [0, 0, 2, 0, 0, 0, 0, 0, 0],
            [0, 0, 4, 0, 0, 0, 0, 0, 0],
        ],
        [7, 7, 7],
    ),
}


@pytest.mark.parametrize("name", sorted(_CASES))
def test_selected_choices_unchanged_from_seed(name):
    factory, config, expected_choices, expected_cnots = _CASES[name]
    result = run_quest(factory(), config)
    got = [list(map(int, choice)) for choice in result.selection.choices]
    assert got == expected_choices
    assert list(result.selection.cnot_counts) == expected_cnots


@pytest.mark.parametrize("name", sorted(_CASES))
def test_selection_counters_populated(name):
    factory, config, expected_choices, _ = _CASES[name]
    result = run_quest(factory(), config)
    # All three cases take the exhaustive path: every enumerated point is
    # a batched evaluation, plus one scalar call per selection round to
    # record the chosen point's objective value.
    assert result.selection.batched_evaluations > 0
    assert result.selection.scalar_evaluations >= len(expected_choices)
    assert result.objective_evaluations == (
        result.selection.scalar_evaluations
        + result.selection.batched_evaluations
    )
    assert result.timings.selection_seconds == (
        result.timings.annealing_seconds
    )
    summary = result.summary()
    assert "selection scored" in summary
    assert str(result.objective_evaluations) in summary
