"""Mid-run SIGKILL: resume must be bit-identical to an uninterrupted run.

The harshest leg of the fault matrix.  A child process runs the full
pipeline with a checkpoint directory and a scheduled ``kill`` fault
that SIGKILLs it at the start of the *last* synthesis job — after the
earlier blocks journaled, before the run could finish.  The parent then
verifies the kill actually happened (exit by SIGKILL, a partial
journal on disk) and that resuming from the journal reproduces an
uninterrupted run bit for bit.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import heisenberg
from repro.core.quest import QuestConfig, run_quest

FAST = dict(
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)
SEED = 5

# heisenberg(4, steps=1) partitions into 3 nontrivial blocks with 3
# distinct content keys, so the inline executor runs 3 synthesis jobs in
# block order; killing at job 2 leaves blocks 0 and 1 journaled.
KILL_BLOCK = 2

_CHILD_SCRIPT = """\
import sys

from repro.algorithms import heisenberg
from repro.core.quest import QuestConfig, run_quest
from repro.resilience import FaultInjector, FaultSpec

config = QuestConfig(seed={seed}, **{fast!r})
injector = FaultInjector(specs=(FaultSpec("kill", {kill_block}, 0),))
run_quest(
    heisenberg(4, steps=1),
    config,
    checkpoint_dir={checkpoint_dir!r},
    fault_injector=injector,
)
print("UNREACHABLE: the kill fault did not fire", file=sys.stderr)
sys.exit(3)
"""


def _dump_artifacts(name: str, payload: dict) -> None:
    """Persist diagnostics for CI's failure-artifact upload."""
    artifact_dir = os.environ.get("FAULT_ARTIFACT_DIR")
    if not artifact_dir:
        return
    directory = Path(artifact_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_text(json.dumps(payload, indent=1))


@pytest.mark.slow
def test_resume_after_sigkill_is_bit_identical(tmp_path):
    checkpoint_dir = tmp_path / "ckpt"
    script = tmp_path / "killed_run.py"
    script.write_text(
        _CHILD_SCRIPT.format(
            seed=SEED,
            fast=FAST,
            kill_block=KILL_BLOCK,
            checkpoint_dir=str(checkpoint_dir),
        )
    )
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    journaled = sorted(checkpoint_dir.glob("block_*.qckpt"))
    _dump_artifacts(
        "sigkill_child",
        {
            "returncode": proc.returncode,
            "stdout": proc.stdout,
            "stderr": proc.stderr,
            "journaled": [p.name for p in journaled],
        },
    )

    # The child died by SIGKILL, not by finishing or erroring out.
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    # It got partway: earlier blocks journaled, the killed one did not.
    assert (checkpoint_dir / "manifest.json").exists()
    names = [p.name for p in journaled]
    assert names, "no blocks were journaled before the kill"
    assert f"block_{KILL_BLOCK:04d}.qckpt" not in names

    # Resume and compare with an uninterrupted run, bit for bit.
    config = QuestConfig(seed=SEED, **FAST)
    clean = run_quest(heisenberg(4, steps=1), config)
    resumed = run_quest(
        heisenberg(4, steps=1), config, checkpoint_dir=checkpoint_dir
    )
    assert resumed.checkpoint_hits == len(names)
    assert resumed.checkpoint_corrupt_entries == 0
    assert clean.selection.bounds == resumed.selection.bounds
    assert len(clean.selection.choices) == len(resumed.selection.choices)
    for a, b in zip(clean.selection.choices, resumed.selection.choices):
        assert np.array_equal(a, b)
    assert len(clean.circuits) == len(resumed.circuits)
    for ca, cb in zip(clean.circuits, resumed.circuits):
        assert ca.cnot_count() == cb.cnot_count()
        assert np.array_equal(ca.unitary(), cb.unitary())
    for pa, pb in zip(clean.pools, resumed.pools):
        assert pa.cnot_counts().tolist() == pb.cnot_counts().tolist()
        assert pa.distances().tolist() == pb.distances().tolist()
        for ca, cb in zip(pa.candidates, pb.candidates):
            assert np.array_equal(ca.unitary, cb.unitary)
