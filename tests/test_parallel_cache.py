"""Property-style tests for the content-addressed pool cache."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.random_circuits import random_unitary
from repro.parallel.cache import (
    CACHE_VERSION,
    PoolCache,
    canonical_unitary_bytes,
    content_key,
    entry_key,
)
from repro.store import ENTRY_SUFFIX, shard_of
from repro.synthesis.leap import LeapConfig, SynthesisSolution


def _entry_path(root, key, namespace="default"):
    """Where the sharded store keeps ``key``'s entry on disk."""
    return root / namespace / shard_of(key) / f"{key}{ENTRY_SUFFIX}"


def _entries(root):
    """All entry files under ``root``, any namespace/shard."""
    return sorted(root.rglob(f"*{ENTRY_SUFFIX}"))


def _solutions() -> list[SynthesisSolution]:
    circuit = Circuit(2)
    circuit.ry(0.3, 0)
    circuit.cx(0, 1)
    return [
        SynthesisSolution(circuit=circuit, distance=0.01, cnot_count=1),
    ]


FINGERPRINT = LeapConfig(max_layers=3, target_distance=0.2).fingerprint()


# ----------------------------------------------------------------------
# Key properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("phase", [0.1, np.pi / 3, np.pi, -2.5])
def test_global_phase_invariance(rng, phase):
    """U and e^{i theta} U address the same cache entry."""
    unitary = random_unitary(4, rng)
    shifted = np.exp(1j * phase) * unitary
    assert canonical_unitary_bytes(unitary) == canonical_unitary_bytes(shifted)
    assert content_key(unitary, FINGERPRINT) == content_key(
        shifted, FINGERPRINT
    )


def test_distinct_unitaries_miss(rng):
    a = random_unitary(4, rng)
    b = random_unitary(4, rng)
    assert content_key(a, FINGERPRINT) != content_key(b, FINGERPRINT)


def test_same_matrix_different_dtype_layout(rng):
    unitary = random_unitary(4, rng)
    assert canonical_unitary_bytes(unitary) == canonical_unitary_bytes(
        np.asfortranarray(unitary)
    )


def test_tiny_perturbations_below_resolution_collide(rng):
    """Sub-1e-9 noise (far below any distance QUEST resolves) still hits."""
    unitary = random_unitary(4, rng)
    wiggled = unitary * np.exp(1j * 1e-10)
    assert content_key(unitary, FINGERPRINT) == content_key(
        wiggled, FINGERPRINT
    )


@pytest.mark.parametrize(
    "other",
    [
        LeapConfig(max_layers=4, target_distance=0.2),  # layer budget
        LeapConfig(max_layers=3, target_distance=0.1),  # threshold
        LeapConfig(max_layers=3, target_distance=0.2, solutions_per_layer=5),
        LeapConfig(max_layers=3, target_distance=0.2, instantiation_starts=7),
        LeapConfig(
            max_layers=3, target_distance=0.2, max_optimizer_iterations=9
        ),
        LeapConfig(max_layers=3, target_distance=0.2, time_budget=1.0),
        LeapConfig(max_layers=3, target_distance=0.2, stop_when_exact=True),
        LeapConfig(max_layers=3, target_distance=0.2, coupling=[(0, 1)]),
    ],
)
def test_differing_leap_config_fields_miss(rng, other):
    unitary = random_unitary(4, rng)
    assert other.fingerprint() != FINGERPRINT
    assert content_key(unitary, other.fingerprint()) != content_key(
        unitary, FINGERPRINT
    )


def test_seed_is_not_part_of_the_fingerprint():
    """Seed policy is mixed in via entry_key, never the fingerprint."""
    assert (
        LeapConfig(max_layers=3, seed=1).fingerprint()
        == LeapConfig(max_layers=3, seed=2).fingerprint()
    )
    content = "ab" * 32
    assert entry_key(content, 1) != entry_key(content, 2)
    assert entry_key(content, 1) == entry_key(content, 1)


# ----------------------------------------------------------------------
# Store behaviour
# ----------------------------------------------------------------------
def test_memory_roundtrip():
    cache = PoolCache()
    key = entry_key("c" * 64, 3)
    assert cache.get(key) is None
    cache.put(key, _solutions())
    got = cache.get(key)
    assert got is not None and len(got) == 1
    assert got[0].cnot_count == 1
    assert cache.hits == 1 and cache.misses == 1


def test_disk_roundtrip_across_instances(tmp_path):
    key = entry_key("d" * 64, 5)
    PoolCache(tmp_path).put(key, _solutions())
    fresh = PoolCache(tmp_path)
    got = fresh.get(key)
    assert got is not None
    assert got[0].circuit.cnot_count() == 1
    assert fresh.hits == 1


@pytest.mark.parametrize(
    "corruption",
    [
        b"",  # empty file
        b"not a pickle at all",
        os.urandom(64),  # random bytes
    ],
    ids=["empty", "text", "random"],
)
def test_corrupt_disk_entries_are_misses(tmp_path, corruption):
    key = entry_key("e" * 64, 5)
    cache = PoolCache(tmp_path)
    cache.put(key, _solutions())
    (path,) = _entries(tmp_path)
    path.write_bytes(corruption)
    fresh = PoolCache(tmp_path)
    assert fresh.get(key) is None
    # Recompute path: a put after the miss repairs the entry.
    fresh.put(key, _solutions())
    assert PoolCache(tmp_path).get(key) is not None


def test_truncated_disk_entry_is_a_miss(tmp_path):
    """A partially-written (crash mid-write) file never poisons a run."""
    key = entry_key("f" * 64, 5)
    cache = PoolCache(tmp_path)
    cache.put(key, _solutions())
    (path,) = _entries(tmp_path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    assert PoolCache(tmp_path).get(key) is None


def test_checksum_mismatch_is_a_miss(tmp_path):
    """A well-formed envelope with a tampered payload is rejected."""
    key = entry_key("a" * 64, 5)
    cache = PoolCache(tmp_path)
    cache.put(key, _solutions())
    (path,) = _entries(tmp_path)
    envelope = pickle.loads(path.read_bytes())
    envelope["payload"] = envelope["payload"][:-1] + b"\x00"
    path.write_bytes(pickle.dumps(envelope))
    assert PoolCache(tmp_path).get(key) is None


def test_wrong_version_or_key_is_a_miss(tmp_path):
    key = entry_key("b" * 64, 5)
    cache = PoolCache(tmp_path)
    cache.put(key, _solutions())
    (path,) = _entries(tmp_path)
    good = pickle.loads(path.read_bytes())

    stale = dict(good, version=CACHE_VERSION + 1)
    path.write_bytes(pickle.dumps(stale))
    assert PoolCache(tmp_path).get(key) is None

    mislabeled = dict(good, key=entry_key("b" * 64, 6))
    path.write_bytes(pickle.dumps(mislabeled))
    assert PoolCache(tmp_path).get(key) is None

    # The unmodified envelope still loads, proving the rejections above
    # came from the tampering and not the roundtrip itself.
    path.write_bytes(pickle.dumps(good))
    assert PoolCache(tmp_path).get(key) is not None


def test_payload_type_is_validated(tmp_path):
    """An entry whose payload is not a solution list is a miss."""
    key = entry_key("9" * 64, 5)
    cache = PoolCache(tmp_path)
    cache.put(key, _solutions())
    (path,) = _entries(tmp_path)
    envelope = pickle.loads(path.read_bytes())
    import hashlib

    payload = pickle.dumps(["definitely", "not", "solutions"])
    envelope["payload"] = payload
    envelope["checksum"] = hashlib.sha256(payload).hexdigest()
    path.write_bytes(pickle.dumps(envelope))
    assert PoolCache(tmp_path).get(key) is None


def test_leftover_tmp_files_are_ignored(tmp_path):
    """An abandoned temp file from a crashed writer is not an entry,
    and once past the grace window it is swept at open."""
    key = entry_key("7" * 64, 5)
    shard_dir = _entry_path(tmp_path, key).parent
    shard_dir.mkdir(parents=True)
    orphan = shard_dir / f".{key[:16]}-dead.tmp"
    orphan.write_bytes(b"half-written")
    os.utime(orphan, (100, 100))  # long past any grace window
    cache = PoolCache(tmp_path)
    assert cache.get(key) is None
    assert not orphan.exists()
    assert cache.store.orphans_swept == 1


def test_young_tmp_files_survive_the_sweep(tmp_path):
    """A temp file inside the grace window may belong to a live writer
    in another replica, so opening the store leaves it alone."""
    key = entry_key("8" * 64, 5)
    shard_dir = _entry_path(tmp_path, key).parent
    shard_dir.mkdir(parents=True)
    live = shard_dir / f".{key[:16]}-live.tmp"
    live.write_bytes(b"mid-publish")
    cache = PoolCache(tmp_path)
    assert live.exists()
    assert cache.store.orphans_swept == 0


# ----------------------------------------------------------------------
# Size-bounded disk tier (LRU by mtime)
# ----------------------------------------------------------------------
def _age(tmp_path, key, mtime):
    os.utime(_entry_path(tmp_path, key), (mtime, mtime))


def test_max_entries_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="max_entries"):
        PoolCache(tmp_path, max_entries=0)
    with pytest.raises(ValueError, match="max_entries"):
        PoolCache(tmp_path, max_entries=-3)


def test_lru_evicts_oldest_by_mtime(tmp_path):
    cache = PoolCache(tmp_path, max_entries=2)
    keys = [entry_key("e" * 64, seed) for seed in range(3)]
    cache.put(keys[0], _solutions())
    cache.put(keys[1], _solutions())
    assert cache.evictions == 0
    # Pin ages so the victim choice is deterministic, then overflow.
    _age(tmp_path, keys[0], 100)
    _age(tmp_path, keys[1], 200)
    cache.put(keys[2], _solutions())
    assert cache.evictions == 1
    assert not _entry_path(tmp_path, keys[0]).exists()
    assert _entry_path(tmp_path, keys[1]).exists()
    assert _entry_path(tmp_path, keys[2]).exists()


def test_lru_hit_refreshes_recency(tmp_path):
    keys = [entry_key("f" * 64, seed) for seed in range(3)]
    seeded = PoolCache(tmp_path, max_entries=2)
    seeded.put(keys[0], _solutions())
    seeded.put(keys[1], _solutions())
    _age(tmp_path, keys[0], 100)
    _age(tmp_path, keys[1], 200)
    cache = PoolCache(tmp_path, max_entries=2)
    # The disk hit bumps keys[0]'s mtime, so the *unread* keys[1] is now
    # the coldest entry and gets evicted by the overflowing put.
    assert cache.get(keys[0]) is not None
    cache.put(keys[2], _solutions())
    assert cache.evictions == 1
    assert _entry_path(tmp_path, keys[0]).exists()
    assert not _entry_path(tmp_path, keys[1]).exists()


def test_eviction_does_not_touch_memory_tier(tmp_path):
    """An evicted key this run already cached in memory still hits."""
    keys = [entry_key("a1" * 32, seed) for seed in range(3)]
    cache = PoolCache(tmp_path, max_entries=1)
    for index, key in enumerate(keys):
        cache.put(key, _solutions())
        _age(tmp_path, key, 100 + index)
    on_disk = sorted(path.name for path in _entries(tmp_path))
    assert on_disk == [f"{keys[2]}.qpool"]
    assert cache.evictions == 2
    for key in keys:
        assert cache.get(key) is not None
    assert cache.misses == 0


def test_unbounded_cache_never_evicts(tmp_path):
    cache = PoolCache(tmp_path)
    for seed in range(8):
        cache.put(entry_key("b2" * 32, seed), _solutions())
    assert cache.evictions == 0
    assert len(_entries(tmp_path)) == 8


def test_bound_survives_across_instances(tmp_path):
    """A fresh bounded instance over a pre-populated dir enforces the cap
    on its next store (startup itself does not scan)."""
    for seed in range(4):
        PoolCache(tmp_path).put(entry_key("c3" * 32, seed), _solutions())
    for index, key in enumerate(sorted(p.stem for p in _entries(tmp_path))):
        _age(tmp_path, key, 100 + index)
    bounded = PoolCache(tmp_path, max_entries=2)
    bounded.put(entry_key("c3" * 32, 99), _solutions())
    assert len(_entries(tmp_path)) == 2
    assert bounded.evictions == 3


def test_corrupt_entries_counter(tmp_path):
    """Integrity failures are *counted*; plain misses are not.

    The counter surfaces through the executor's stats as
    ``cache_corrupt_entries`` and from there into ``QuestResult``, so a
    rotting cache directory is visible instead of silently slow.
    """
    key = entry_key("c" * 64, 5)
    cache = PoolCache(tmp_path)
    cache.put(key, _solutions())
    (path,) = _entries(tmp_path)
    good = path.read_bytes()

    # Missing entry: a miss, not corruption.
    fresh = PoolCache(tmp_path)
    assert fresh.get(entry_key("d" * 64, 5)) is None
    assert fresh.corrupt_entries == 0

    # Stale format version: a miss, not corruption.
    stale = dict(pickle.loads(good), version=CACHE_VERSION + 1)
    path.write_bytes(pickle.dumps(stale))
    fresh = PoolCache(tmp_path)
    assert fresh.get(key) is None
    assert fresh.corrupt_entries == 0

    # Garbled bytes: counted.
    path.write_bytes(b"rotted")
    fresh = PoolCache(tmp_path)
    assert fresh.get(key) is None
    assert fresh.corrupt_entries == 1
    # Repeated probes of the same bad entry keep counting (each get()
    # re-reads disk after the memory miss).
    assert fresh.get(key) is None
    assert fresh.corrupt_entries == 2

    # Repair by put(): the counter is a high-water history, not state.
    path.write_bytes(good)
    fresh = PoolCache(tmp_path)
    assert fresh.get(key) is not None
    assert fresh.corrupt_entries == 0
