"""Objective weight extremes and selection interplay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.core.annealing import select_approximations
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool, Candidate
from repro.exceptions import SelectionError
from repro.linalg import hs_distance
from repro.partition.blocks import CircuitBlock


def _phase_circuit(angle: float) -> Circuit:
    circuit = Circuit(2)
    circuit.cx(0, 1)
    circuit.rz(angle, 1)
    circuit.cx(0, 1)
    return circuit


def _pools(blocks: int = 2):
    spec = [(0.5, 2), (0.8, 1), (0.2, 1)]
    pools = []
    for index in range(blocks):
        original = _phase_circuit(0.5)
        block = CircuitBlock(
            index=index, qubits=(2 * index, 2 * index + 1), circuit=original
        )
        original_unitary = original.unitary()
        pool = BlockPool(block=block, original_unitary=original_unitary)
        for angle, cnots in spec:
            circuit = _phase_circuit(angle)
            unitary = circuit.unitary()
            pool.candidates.append(
                Candidate(
                    circuit=circuit,
                    unitary=unitary,
                    distance=hs_distance(unitary, original_unitary),
                    cnot_count=cnots,
                )
            )
        pools.append(pool)
    return pools


def test_weight_zero_ignores_similarity():
    # weight=0: pure CNOT minimization, so re-selecting the cheapest
    # choice scores identically to the first round.
    objective = SelectionObjective(
        pools=_pools(), threshold=1.0, original_cnot_count=4, weight=0.0
    )
    cheap = np.array([1.0, 1.0])
    objective.selected.append(objective.decode(cheap))
    assert objective(cheap) == pytest.approx(0.5)


def test_weight_one_ignores_cnots():
    objective = SelectionObjective(
        pools=_pools(), threshold=1.0, original_cnot_count=4, weight=1.0
    )
    first = objective.decode(np.array([1.0, 1.0]))
    objective.selected.append(first)
    # A fully dissimilar choice scores 0 regardless of its CNOT count.
    dissimilar = np.array([2.0, 2.0])
    assert objective(dissimilar) == pytest.approx(0.0)


def test_invalid_weight_rejected():
    with pytest.raises(SelectionError):
        SelectionObjective(
            pools=_pools(), threshold=1.0, original_cnot_count=4, weight=1.5
        )


def test_selection_under_weight_extremes():
    for weight in (0.0, 0.5, 1.0):
        objective = SelectionObjective(
            pools=_pools(), threshold=1.0, original_cnot_count=4, weight=weight
        )
        result = select_approximations(objective, max_samples=4, seed=0)
        assert result.num_selected >= 1


def test_selection_deterministic_given_seed():
    results = []
    for _ in range(2):
        objective = SelectionObjective(
            pools=_pools(3), threshold=1.0, original_cnot_count=6
        )
        result = select_approximations(objective, max_samples=4, seed=11)
        results.append([tuple(c) for c in result.choices])
    assert results[0] == results[1]
