"""Tests for fake backend descriptors."""

from __future__ import annotations

import pytest

from repro.exceptions import NoiseModelError
from repro.noise import (
    Backend,
    NoiseModel,
    all_to_all_coupling,
    fake_manila,
    ideal_backend,
    linear_backend,
    linear_coupling,
)


def test_linear_coupling_chain():
    assert linear_coupling(4) == ((0, 1), (1, 2), (2, 3))


def test_all_to_all_coupling_complete():
    edges = all_to_all_coupling(4)
    assert len(edges) == 6


def test_fake_manila_shape():
    manila = fake_manila()
    assert manila.num_qubits == 5
    assert manila.coupling_map == linear_coupling(5)
    assert not manila.is_fully_connected
    # Calibration hierarchy: CX error an order of magnitude above 1q.
    assert manila.noise.two_qubit_error > 10 * manila.noise.one_qubit_error


def test_neighbors():
    manila = fake_manila()
    assert manila.neighbors(0) == (1,)
    assert manila.neighbors(2) == (1, 3)


def test_ideal_backend_fully_connected():
    backend = ideal_backend(4)
    assert backend.is_fully_connected
    assert backend.noise.is_noiseless


def test_linear_backend_custom_noise():
    model = NoiseModel.from_noise_level(0.005)
    backend = linear_backend(6, model)
    assert backend.num_qubits == 6
    assert backend.noise is model


def test_bad_coupling_rejected():
    with pytest.raises(NoiseModelError):
        Backend(name="bad", num_qubits=2, coupling_map=((0, 0),))
    with pytest.raises(NoiseModelError):
        Backend(name="bad", num_qubits=2, coupling_map=((0, 5),))
