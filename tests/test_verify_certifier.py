"""Unit tests for the independent certification layer (`repro.verify`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, random_circuit
from repro.core.pool import Candidate, exact_pool
from repro.exceptions import CertificationError, ValidationError
from repro.metrics.tolerances import INDEPENDENT_AGREEMENT_TOL
from repro.partition.blocks import CircuitBlock
from repro.resilience.validation import validate_pool
from repro.sim import circuit_unitary
from repro.verify import (
    BlockClaim,
    certify_equivalence,
    circuit_hs_distance,
    claims_from_manifest,
    claims_to_manifest,
    independent_hs_distance,
    independent_unitary,
    stimulus_evidence,
)


# ----------------------------------------------------------------------
# Independent primitives
# ----------------------------------------------------------------------
def test_independent_unitary_matches_simulator_path(ghz3_circuit):
    rebuilt = independent_unitary(ghz3_circuit)
    assert np.allclose(rebuilt, circuit_unitary(ghz3_circuit), atol=1e-12)


def test_independent_unitary_ignores_measurements(bell_circuit):
    measured = bell_circuit.copy()
    measured.measure_all()
    assert np.allclose(
        independent_unitary(measured), independent_unitary(bell_circuit)
    )


def test_independent_hs_distance_rejects_shape_mismatch():
    with pytest.raises(CertificationError):
        independent_hs_distance(np.eye(2), np.eye(4))


def test_circuit_hs_distance_rejects_width_mismatch():
    with pytest.raises(CertificationError):
        circuit_hs_distance(Circuit(2), Circuit(3))


# ----------------------------------------------------------------------
# Claims and manifests
# ----------------------------------------------------------------------
def _sample_claims():
    return [
        BlockClaim(index=0, qubits=(0, 1), op_count=3, epsilon=0.05),
        BlockClaim(index=1, qubits=(1, 2), op_count=2, epsilon=0.0),
    ]


def test_manifest_round_trip():
    claims = _sample_claims()
    manifest = claims_to_manifest(claims, block_qubits=2)
    block_qubits, recovered = claims_from_manifest(manifest)
    assert block_qubits == 2
    assert recovered == claims


def test_manifest_rejects_bad_version():
    manifest = claims_to_manifest(_sample_claims(), block_qubits=2)
    manifest["version"] = 99
    with pytest.raises(CertificationError):
        claims_from_manifest(manifest)


def test_manifest_rejects_tampered_total():
    manifest = claims_to_manifest(_sample_claims(), block_qubits=2)
    manifest["total_epsilon"] = 0.001  # understated sum
    with pytest.raises(CertificationError):
        claims_from_manifest(manifest)


def test_manifest_rejects_missing_fields():
    with pytest.raises(CertificationError):
        claims_from_manifest({"version": 1, "block_qubits": 2})
    with pytest.raises(CertificationError):
        claims_from_manifest([1, 2, 3])


def test_block_claim_validates_itself():
    with pytest.raises(CertificationError):
        BlockClaim(index=0, qubits=(1, 0), op_count=1, epsilon=0.0)
    with pytest.raises(CertificationError):
        BlockClaim(index=0, qubits=(0,), op_count=-1, epsilon=0.0)
    with pytest.raises(CertificationError):
        BlockClaim(index=0, qubits=(0,), op_count=1, epsilon=float("nan"))


# ----------------------------------------------------------------------
# certify_equivalence
# ----------------------------------------------------------------------
def test_identical_circuits_certify_at_zero_budget(ghz3_circuit):
    report = certify_equivalence(ghz3_circuit, ghz3_circuit, budget=0.0)
    assert report.ok
    assert report.regime == "exact"
    # sqrt(1 - |overlap|^2) amplifies float noise to ~1e-8 at zero
    assert report.measured_distance == pytest.approx(0.0, abs=1e-7)
    assert report.first_failed_block is None


def test_distinct_circuits_violate_a_tight_budget(ghz3_circuit):
    other = random_circuit(3, 3, rng=5)
    report = certify_equivalence(ghz3_circuit, other, budget=1e-3)
    assert not report.ok
    assert report.failures


def test_width_mismatch_is_structural(bell_circuit, ghz3_circuit):
    with pytest.raises(CertificationError):
        certify_equivalence(bell_circuit, ghz3_circuit, budget=1.0)


def test_missing_budget_and_claims_is_structural(bell_circuit):
    with pytest.raises(CertificationError):
        certify_equivalence(bell_circuit, bell_circuit)


def test_claims_without_block_qubits_is_structural(bell_circuit):
    with pytest.raises(CertificationError):
        certify_equivalence(
            bell_circuit, bell_circuit, _sample_claims()
        )


def test_claims_that_mismatch_the_partition_are_structural(ghz3_circuit):
    claims = [BlockClaim(index=0, qubits=(0, 1, 2), op_count=3, epsilon=0.5)]
    # GHZ-3 partitions into two 2-qubit blocks at width 2, not one
    # 3-qubit block.
    with pytest.raises(CertificationError):
        certify_equivalence(
            ghz3_circuit, ghz3_circuit, claims, block_qubits=2
        )


def test_stimulus_regime_certifies_honest_pair(ghz3_circuit):
    report = certify_equivalence(
        ghz3_circuit,
        ghz3_circuit,
        budget=0.0,
        max_exact_qubits=1,
        rng=0,
    )
    assert report.ok
    assert report.regime == "stimulus"
    assert report.measured_distance is None
    assert report.stimulus is not None
    assert report.stimulus.distance_bound == pytest.approx(0.0, abs=1e-9)


def test_stimulus_regime_refutes_a_false_claim(ghz3_circuit):
    other = random_circuit(3, 4, rng=11)
    exact = circuit_hs_distance(ghz3_circuit, other)
    assert exact > 0.1  # the pair is far apart
    report = certify_equivalence(
        ghz3_circuit,
        other,
        budget=1e-4,
        max_exact_qubits=1,
        rng=0,
    )
    assert not report.ok


def test_stimulus_bound_is_deterministic(ghz3_circuit):
    other = random_circuit(3, 4, rng=11)
    first = stimulus_evidence(ghz3_circuit, other, rng=42)
    second = stimulus_evidence(ghz3_circuit, other, rng=42)
    assert first == second


def test_report_to_dict_is_json_ready(ghz3_circuit):
    import json

    report = certify_equivalence(
        ghz3_circuit, ghz3_circuit, budget=0.0, max_exact_qubits=1, rng=0
    )
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is True
    assert payload["regime"] == "stimulus"
    assert payload["stimulus"]["haar_count"] > 0


# ----------------------------------------------------------------------
# Independent candidate validation (the resilience seam)
# ----------------------------------------------------------------------
def _tampered_pool():
    """A pool whose candidate unitary was replaced by a *different*
    unitary, close enough to pass every plain health check."""
    block_circuit = Circuit(2)
    block_circuit.h(0)
    block_circuit.cx(0, 1)
    block_circuit.rz(0.4, 1)
    block = CircuitBlock(index=0, qubits=(0, 1), circuit=block_circuit)
    pool = exact_pool(block)
    honest = pool.candidates[0]
    # A tiny extra rotation: the matrix stays exactly unitary and its
    # distance to the target moves by far less than the health-check
    # tolerance, but it is no longer the unitary of the circuit.
    drift = np.diag(np.exp(1j * np.array([0.0, 5e-8, 5e-8, 1e-7])))
    pool.candidates[0] = Candidate(
        circuit=honest.circuit,
        unitary=drift @ honest.unitary,
        distance=honest.distance,
        cnot_count=honest.cnot_count,
    )
    return pool


def test_plain_validation_misses_a_tampered_unitary():
    validate_pool(_tampered_pool())  # passes: still unitary, distance ok


def test_independent_validation_catches_a_tampered_unitary():
    with pytest.raises(ValidationError, match="independently rebuilt"):
        validate_pool(_tampered_pool(), independent=True)


def test_independent_validation_accepts_honest_pools():
    block_circuit = Circuit(2)
    block_circuit.h(0)
    block_circuit.cx(0, 1)
    block = CircuitBlock(index=0, qubits=(0, 1), circuit=block_circuit)
    validate_pool(exact_pool(block), independent=True)


def test_tampering_is_above_the_agreement_tolerance():
    pool = _tampered_pool()
    rebuilt = independent_unitary(pool.candidates[0].circuit)
    drift = float(np.max(np.abs(rebuilt - pool.candidates[0].unitary)))
    assert drift > INDEPENDENT_AGREEMENT_TOL
