"""Tests for the pluggable array-API shim (repro.linalg.array_api)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ArrayBackendError
from repro.linalg.array_api import (
    ARRAY_BACKEND_ENV,
    BACKEND_NAMES,
    ArrayBackend,
    available_backends,
    get_backend,
)


def _installed(module: str) -> bool:
    try:
        __import__(module)
    except ImportError:
        return False
    return True


def test_numpy_backend_is_default():
    backend = get_backend()
    assert backend.name == "numpy"
    assert get_backend("numpy") is backend  # resolution is cached


def test_numpy_backend_operations_roundtrip():
    xb = get_backend("numpy")
    a = xb.asarray([[1.0, 2.0], [3.0, 4.0]], dtype="float64")
    assert xb.to_numpy(a).dtype == np.float64
    z = xb.zeros((2, 3))
    assert xb.to_numpy(z).shape == (2, 3)
    stacked = xb.stack([a, a])
    assert xb.to_numpy(stacked).shape == (2, 2, 2)
    product = xb.einsum("ij,jk->ik", a, a)
    np.testing.assert_allclose(xb.to_numpy(product), xb.to_numpy(a) @ xb.to_numpy(a))
    taken = xb.take(a, (1,), 1)
    np.testing.assert_allclose(xb.to_numpy(taken), [[2.0], [4.0]])
    reshaped = xb.reshape(a, (4,))
    np.testing.assert_allclose(xb.to_numpy(reshaped), [1.0, 2.0, 3.0, 4.0])


def test_backend_instance_passes_through():
    xb = get_backend("numpy")
    assert get_backend(xb) is xb


def test_env_var_resolution(monkeypatch):
    monkeypatch.setenv(ARRAY_BACKEND_ENV, "numpy")
    assert get_backend().name == "numpy"
    monkeypatch.setenv(ARRAY_BACKEND_ENV, "definitely-not-a-backend")
    with pytest.raises(ArrayBackendError, match="unknown array backend"):
        get_backend()
    # An explicit argument beats the (broken) environment setting.
    assert get_backend("numpy").name == "numpy"


def test_unknown_backend_error_names_choices():
    with pytest.raises(ArrayBackendError) as excinfo:
        get_backend("fortran")
    for name in BACKEND_NAMES:
        assert name in str(excinfo.value)


def test_available_backends_always_contains_numpy():
    names = available_backends()
    assert "numpy" in names
    assert set(names) <= set(BACKEND_NAMES)


@pytest.mark.parametrize("name", ["cupy", "torch"])
def test_missing_optional_backend_fails_gracefully(name):
    if _installed(name):
        pytest.skip(f"{name} is installed in this environment")
    with pytest.raises(ArrayBackendError) as excinfo:
        get_backend(name)
    message = str(excinfo.value)
    assert name in message
    assert "available backends" in message


def test_abstract_backend_methods_raise():
    backend = ArrayBackend()
    for call in (
        lambda: backend.asarray([1.0]),
        lambda: backend.zeros((1,)),
        lambda: backend.stack([]),
        lambda: backend.einsum("i->i", np.zeros(1)),
        lambda: backend.take(np.zeros(1), (0,), 0),
        lambda: backend.reshape(np.zeros(1), (1,)),
        lambda: backend.to_numpy(np.zeros(1)),
    ):
        with pytest.raises(NotImplementedError):
            call()


def test_cli_exits_2_when_backend_missing(tmp_path, capsys):
    if _installed("cupy"):
        pytest.skip("cupy is installed in this environment")
    from repro.algorithms import tfim
    from repro.circuits import circuit_to_qasm
    from repro.cli import main

    qasm_path = tmp_path / "tfim.qasm"
    qasm_path.write_text(circuit_to_qasm(tfim(3, steps=1)))
    code = main(
        [
            str(qasm_path),
            "--out-dir", str(tmp_path / "out"),
            "--array-backend", "cupy",
        ]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "cupy" in captured.err
    assert not (tmp_path / "out").exists()  # failed before any synthesis
