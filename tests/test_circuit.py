"""Unit tests for the circuit IR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, Operation
from repro.exceptions import CircuitError
from repro.linalg import equal_up_to_global_phase


def test_empty_circuit_properties():
    circuit = Circuit(3)
    assert circuit.num_qubits == 3
    assert len(circuit) == 0
    assert circuit.depth() == 0
    assert circuit.cnot_count() == 0
    assert circuit.gate_counts() == {}
    assert circuit.active_qubits() == ()


def test_zero_qubits_rejected():
    with pytest.raises(CircuitError):
        Circuit(0)


def test_builder_methods(bell_circuit):
    assert [op.name for op in bell_circuit] == ["h", "cx"]
    assert bell_circuit.cnot_count() == 1
    assert bell_circuit.depth() == 2


def test_out_of_range_qubit_rejected():
    circuit = Circuit(2)
    with pytest.raises(CircuitError):
        circuit.h(2)
    with pytest.raises(CircuitError):
        circuit.cx(0, 5)


def test_duplicate_qubits_rejected():
    with pytest.raises(CircuitError):
        Operation(Gate("cx"), (1, 1))


def test_wrong_arity_rejected():
    with pytest.raises(CircuitError):
        Operation(Gate("cx"), (0,))


def test_depth_counts_parallelism():
    circuit = Circuit(4)
    circuit.h(0)
    circuit.h(1)
    circuit.h(2)
    circuit.h(3)
    assert circuit.depth() == 1
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    assert circuit.depth() == 2
    circuit.cx(1, 2)
    assert circuit.depth() == 3


def test_barrier_flattens_depth():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.barrier()
    circuit.h(1)
    # The barrier forces h(1) to start after h(0)'s layer.
    assert circuit.depth() == 2


def test_cnot_count_includes_lowering_costs():
    circuit = Circuit(3)
    circuit.swap(0, 1)
    circuit.rzz(0.3, 1, 2)
    circuit.ccx(0, 1, 2)
    assert circuit.cnot_count() == 3 + 2 + 6


def test_measure_and_measure_all():
    circuit = Circuit(2)
    circuit.measure(0)
    assert circuit.operations[0].cbit == 0
    circuit2 = Circuit(3)
    circuit2.measure_all()
    assert len(circuit2) == 3
    assert circuit2.has_measurements()


def test_without_measurements(bell_circuit):
    bell_circuit.measure_all()
    stripped = bell_circuit.without_measurements()
    assert not stripped.has_measurements()
    assert len(stripped) == 2


def test_inverse_rejects_measurements(bell_circuit):
    bell_circuit.measure_all()
    with pytest.raises(CircuitError):
        bell_circuit.inverse()


def test_inverse_is_adjoint(small_entangled_circuit):
    unitary = small_entangled_circuit.unitary()
    inverse_unitary = small_entangled_circuit.inverse().unitary()
    assert equal_up_to_global_phase(
        inverse_unitary @ unitary, np.eye(8), atol=1e-8
    )


def test_remap_into_wider_circuit(bell_circuit):
    wide = bell_circuit.remap({0: 2, 1: 0}, num_qubits=4)
    assert wide.num_qubits == 4
    assert wide.operations[1].qubits == (2, 0)


def test_compose_width_mismatch(bell_circuit):
    with pytest.raises(CircuitError):
        bell_circuit.compose(Circuit(3))


def test_compose_concatenates(bell_circuit):
    other = Circuit(2)
    other.x(1)
    combined = bell_circuit.compose(other)
    assert len(combined) == 3
    assert combined.operations[-1].name == "x"


def test_equality_semantics(bell_circuit):
    other = Circuit(2)
    other.h(0)
    other.cx(0, 1)
    assert bell_circuit == other
    other.x(0)
    assert bell_circuit != other
    assert bell_circuit != "not a circuit"


def test_copy_is_independent(bell_circuit):
    clone = bell_circuit.copy()
    clone.x(0)
    assert len(bell_circuit) == 2
    assert len(clone) == 3


def test_gate_counts(small_entangled_circuit):
    counts = small_entangled_circuit.gate_counts()
    assert counts["cx"] == 3
    assert counts["h"] == 1


def test_active_qubits():
    circuit = Circuit(5)
    circuit.h(1)
    circuit.cx(3, 1)
    assert circuit.active_qubits() == (1, 3)


def test_summary_mentions_counts(small_entangled_circuit):
    text = small_entangled_circuit.summary()
    assert "3 qubits" in text
    assert "3 CNOTs" in text
