"""Adversarial certification harness.

Each test plants one deliberate defect in an otherwise-honest QUEST
output — a flipped phase, a nudged rotation angle, a swapped block, a
shifted qubit mapping, an understated error claim — and asserts that
the certifier both *catches* the defect and *localizes* it to the
faulty block.  The honest-run tests close the loop: unmodified pipeline
outputs must certify clean, and enabling certification must not perturb
the selections themselves.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms import qft, tfim
from repro.circuits import Circuit, circuit_to_qasm, random_circuit
from repro.core import QuestConfig, run_quest
from repro.metrics.tolerances import CERTIFICATION_SLACK
from repro.verify import (
    BlockClaim,
    certify_equivalence,
    claims_for_choice,
)

def _small_config(**overrides) -> QuestConfig:
    base = dict(
        seed=7,
        max_samples=2,
        max_block_qubits=2,
        threshold_per_block=0.3,
        max_layers_per_block=3,
        solutions_per_layer=2,
        instantiation_starts=1,
        max_optimizer_iterations=80,
        annealing_maxiter=60,
        block_time_budget=10.0,
        sphere_variants_per_count=1,
    )
    base.update(overrides)
    return QuestConfig(**base)


@pytest.fixture(scope="module")
def quest_run():
    """One honest TFIM-4 run shared by every adversarial test."""
    result = run_quest(tfim(4, steps=2), _small_config())
    claims = claims_for_choice(result.pools, result.selection.choices[0])
    return result, result.circuits[0], claims


def _spans(claims: list[BlockClaim]) -> list[tuple[int, int]]:
    """(start, stop) op index of each block in the stitched circuit."""
    spans, cursor = [], 0
    for claim in claims:
        spans.append((cursor, cursor + claim.op_count))
        cursor += claim.op_count
    return spans


def _rebuild(circuit: Circuit, ops) -> Circuit:
    rebuilt = Circuit(circuit.num_qubits)
    for op in ops:
        rebuilt.add_gate(op.gate.name, op.qubits, op.gate.params)
    return rebuilt


def _certify(result, stitched, claims):
    return certify_equivalence(
        result.baseline,
        stitched,
        claims,
        block_qubits=2,
    )


def _parameterized_site(ops, spans, *, block: int):
    """Index of the first parameterized op inside the given block."""
    start, stop = spans[block]
    for position in range(start, stop):
        if ops[position].gate.params:
            return position
    raise AssertionError(f"block {block} has no parameterized op")


def _block_with_parameterized_op(ops, spans) -> int:
    for index, (start, stop) in enumerate(spans):
        if any(ops[position].gate.params for position in range(start, stop)):
            return index
    raise AssertionError("no block has a parameterized op")


def _nudge(circuit: Circuit, site: int, delta: float) -> Circuit:
    ops = list(circuit.operations)
    gate = ops[site].gate
    params = (gate.params[0] + delta, *gate.params[1:])
    tampered = _rebuild(circuit, ops[:site])
    tampered.add_gate(gate.name, ops[site].qubits, params)
    for op in ops[site + 1 :]:
        tampered.add_gate(op.gate.name, op.qubits, op.gate.params)
    return tampered


# ----------------------------------------------------------------------
# Defect 1: single-gate phase flip
# ----------------------------------------------------------------------
def test_phase_flip_is_caught_and_localized(quest_run):
    result, stitched, claims = quest_run
    ops = list(stitched.operations)
    spans = _spans(claims)
    block = _block_with_parameterized_op(ops, spans)
    site = _parameterized_site(ops, spans, block=block)

    report = _certify(result, _nudge(stitched, site, math.pi), claims)
    assert not report.ok
    assert report.first_failed_block == block


# ----------------------------------------------------------------------
# Defect 2: perturbed rotation angle
# ----------------------------------------------------------------------
def test_perturbed_angle_is_caught_and_localized(quest_run):
    result, stitched, claims = quest_run
    ops = list(stitched.operations)
    spans = _spans(claims)
    block = _block_with_parameterized_op(ops, spans)
    site = _parameterized_site(ops, spans, block=block)

    # 0.75 rad moves a single-qubit rotation by >= sin(0.375) ~ 0.366 in
    # HS distance — far beyond any claimed epsilon in this run.
    report = _certify(result, _nudge(stitched, site, 0.75), claims)
    assert not report.ok
    assert report.first_failed_block == block
    failed = report.blocks[block]
    assert failed.measured_distance is not None
    assert failed.measured_distance > failed.claimed_epsilon + CERTIFICATION_SLACK


# ----------------------------------------------------------------------
# Defect 3: two adjacent blocks swapped
# ----------------------------------------------------------------------
def test_swapped_blocks_are_caught_and_localized(quest_run):
    result, stitched, claims = quest_run
    ops = list(stitched.operations)
    spans = _spans(claims)
    pair = next(
        index
        for index in range(len(claims) - 1)
        if claims[index].qubits != claims[index + 1].qubits
    )
    (a0, a1), (b0, b1) = spans[pair], spans[pair + 1]
    reordered = ops[:a0] + ops[b0:b1] + ops[a0:a1] + ops[b1:]

    report = _certify(result, _rebuild(stitched, reordered), claims)
    assert not report.ok
    assert report.first_failed_block == pair


# ----------------------------------------------------------------------
# Defect 4: off-by-one qubit mapping
# ----------------------------------------------------------------------
def test_shifted_qubit_mapping_is_caught_and_localized(quest_run):
    result, stitched, claims = quest_run
    ops = list(stitched.operations)
    spans = _spans(claims)
    block = next(
        index
        for index, claim in enumerate(claims)
        if max(claim.qubits) + 1 < stitched.num_qubits
    )
    start, stop = spans[block]
    tampered = _rebuild(stitched, ops[:start])
    for op in ops[start:stop]:
        tampered.add_gate(op.gate.name, tuple(q + 1 for q in op.qubits), op.gate.params)
    for op in ops[stop:]:
        tampered.add_gate(op.gate.name, op.qubits, op.gate.params)

    report = _certify(result, tampered, claims)
    assert not report.ok
    assert report.first_failed_block == block
    # the defect is structural: the block touches a qubit it did not claim
    assert "qubit" in report.blocks[block].reason


# ----------------------------------------------------------------------
# Defect 5: per-block epsilon understated 2x
# ----------------------------------------------------------------------
def test_understated_epsilon_is_caught_and_localized(quest_run):
    result, stitched, claims = quest_run
    block = next(
        index for index, claim in enumerate(claims) if claim.epsilon > 1e-4
    )
    lying = [
        BlockClaim(
            index=claim.index,
            qubits=claim.qubits,
            op_count=claim.op_count,
            epsilon=claim.epsilon / 2 if index == block else claim.epsilon,
        )
        for index, claim in enumerate(claims)
    ]

    report = _certify(result, stitched, lying)
    assert not report.ok
    assert report.first_failed_block == block


# ----------------------------------------------------------------------
# Honest runs certify clean
# ----------------------------------------------------------------------
def test_honest_run_certifies_clean(quest_run):
    result, stitched, claims = quest_run
    report = _certify(result, stitched, claims)
    assert report.ok
    assert report.first_failed_block is None
    assert all(block.ok for block in report.blocks)


@pytest.mark.parametrize(
    "circuit_factory",
    [
        lambda: tfim(4, steps=2),
        lambda: qft(3),
        lambda: random_circuit(4, 4, rng=3),
    ],
    ids=["tfim", "qft", "random"],
)
def test_pipeline_certification_passes_on_honest_outputs(circuit_factory):
    result = run_quest(circuit_factory(), _small_config(certify=True))
    assert result.certified is True
    assert result.certifications
    assert all(report.ok for report in result.certifications)
    assert "CERTIFIED" in result.summary()


def test_certification_does_not_perturb_selections():
    baseline = run_quest(tfim(4, steps=2), _small_config())
    certified = run_quest(tfim(4, steps=2), _small_config(certify=True))
    assert len(baseline.selection.choices) == len(certified.selection.choices)
    assert all(
        np.array_equal(a, b)
        for a, b in zip(baseline.selection.choices, certified.selection.choices)
    )
    assert [circuit_to_qasm(c) for c in baseline.circuits] == [
        circuit_to_qasm(c) for c in certified.circuits
    ]
    assert np.allclose(baseline.selection.bounds, certified.selection.bounds)
