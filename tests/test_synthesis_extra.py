"""Additional synthesis-engine behaviors: multi-start results, threshold
stopping, and LEAP stopping rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, random_unitary
from repro.sim import circuit_unitary
from repro.synthesis import (
    LeapConfig,
    build_leap_ansatz,
    synthesize,
)
from repro.synthesis.instantiate import instantiate_multi


def test_multi_returns_one_result_per_start(rng):
    ansatz = build_leap_ansatz(2, [(0, 1)])
    target = random_unitary(4, rng)
    results = instantiate_multi(ansatz, target, rng=rng, starts=3)
    assert len(results) == 3
    costs = [r.cost for r in results]
    assert costs == sorted(costs)


def test_multi_early_exit_on_success(rng):
    # A reachable target lets the first start hit success_cost and stop.
    ansatz = build_leap_ansatz(2, [(0, 1)])
    truth = rng.uniform(-np.pi, np.pi, ansatz.num_params)
    target = ansatz.unitary(truth)
    results = instantiate_multi(
        ansatz,
        target,
        rng=rng,
        starts=5,
        initial_params=truth,
        success_cost=1e-10,
    )
    assert len(results) < 5
    assert results[0].cost <= 1e-10


def test_threshold_stopping_scatters_solutions(rng):
    # With stop_at_cost, secondary starts halt near the threshold instead
    # of converging to the shared minimum.
    ansatz = build_leap_ansatz(2, [(0, 1), (1, 0), (0, 1)])
    target = random_unitary(4, rng)
    stop_cost = 0.02
    results = instantiate_multi(
        ansatz, target, rng=1, starts=4, stop_at_cost=stop_cost
    )
    # The first (full) start should beat the threshold-stopped ones.
    stopped = [r for r in results[1:] if r.cost <= stop_cost * 1.5]
    assert results[0].cost < stop_cost
    assert stopped, "no start stopped near the threshold"


def test_leap_stop_when_exact_ends_early():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    target = circuit_unitary(circuit)
    config = LeapConfig(
        max_layers=6,
        seed=0,
        stop_when_exact=True,
        success_threshold=1e-6,
        instantiation_starts=4,
    )
    report = synthesize(target, config)
    assert report.best.distance < 1e-6
    assert report.layers_explored < 6


def test_leap_solutions_sorted(rng):
    target = random_unitary(4, rng)
    report = synthesize(target, LeapConfig(max_layers=2, seed=0))
    keys = [(s.cnot_count, s.distance) for s in report.solutions]
    assert keys == sorted(keys)


def test_leap_pool_never_empty(rng):
    target = random_unitary(4, rng)
    report = synthesize(target, LeapConfig(max_layers=1, seed=0))
    assert report.solutions
    assert report.best is report.solutions[0] or report.best in report.solutions
