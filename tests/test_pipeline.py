"""Tests for the end-to-end transpiler pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, random_circuit
from repro.exceptions import TranspilerError
from repro.linalg import equal_up_to_global_phase
from repro.noise import fake_manila, ideal_backend
from repro.sim import circuit_unitary, ideal_distribution
from repro.sim.readout import logical_distribution
from repro.transpile import transpile


def test_bad_level_rejected(bell_circuit):
    with pytest.raises(TranspilerError):
        transpile(bell_circuit, optimization_level=7)


def test_level_zero_is_basis_translation(bell_circuit):
    result = transpile(bell_circuit, optimization_level=0)
    assert equal_up_to_global_phase(
        circuit_unitary(result.circuit), circuit_unitary(bell_circuit)
    )


@pytest.mark.parametrize("level", [0, 1, 2, 3])
def test_semantics_preserved_all_levels(rng, level):
    circuit = random_circuit(3, 5, rng=rng)
    result = transpile(circuit, optimization_level=level, rng=0)
    assert equal_up_to_global_phase(
        circuit_unitary(result.circuit), circuit_unitary(circuit), atol=1e-6
    )


def test_optimization_never_increases_cnots(rng):
    for seed in range(5):
        circuit = random_circuit(4, 5, rng=rng)
        low = transpile(circuit, optimization_level=0).cnot_count
        high = transpile(circuit, optimization_level=3, rng=seed).cnot_count
        assert high <= low


def test_cancellation_example():
    circuit = Circuit(2)
    circuit.cx(0, 1)
    circuit.rz(0.4, 0)
    circuit.cx(0, 1)
    result = transpile(circuit, optimization_level=2)
    assert result.cnot_count == 0


def test_backend_too_small_rejected():
    circuit = Circuit(6)
    circuit.cx(0, 5)
    with pytest.raises(TranspilerError):
        transpile(circuit, backend=fake_manila())


def test_fully_connected_backend_skips_routing(rng):
    circuit = random_circuit(4, 4, rng=rng)
    result = transpile(circuit, backend=ideal_backend(4))
    assert result.swaps_inserted == 0


def test_routed_distribution_matches(rng):
    manila = fake_manila()
    for seed in range(4):
        circuit = random_circuit(5, 4, rng=rng)
        circuit.measure_all()
        result = transpile(circuit, backend=manila, optimization_level=3, rng=seed)
        physical = ideal_distribution(result.circuit.without_measurements())
        logical = logical_distribution(result.circuit, physical)
        original = ideal_distribution(circuit.without_measurements())
        assert np.allclose(logical, original, atol=1e-6)


def test_routed_respects_coupling(rng):
    manila = fake_manila()
    circuit = random_circuit(5, 4, rng=rng)
    result = transpile(circuit, backend=manila, rng=1)
    allowed = set(manila.coupling_map) | {
        (b, a) for a, b in manila.coupling_map
    }
    for op in result.circuit.operations:
        if len(op.qubits) == 2:
            assert op.qubits in allowed


def test_widening_to_backend_size():
    circuit = Circuit(2)
    circuit.cx(0, 1)
    result = transpile(circuit, backend=ideal_backend(5))
    assert result.circuit.num_qubits == 5
