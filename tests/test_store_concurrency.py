"""Race-regression tests for the shared cache tier.

Each test here pins a concurrency bug class the flat ``PoolCache`` disk
tier had (or could have had) when batch/service substrates hammer one
cache from many threads:

* the ``corrupt_entries`` counter was incremented outside the cache
  lock, so concurrent corrupt loads could lose increments;
* the publish temp name was ``<key>.tmp.<pid>`` — unique per *process*,
  not per writer — so two threads of one daemon publishing the same key
  clobbered each other's half-written temp file;
* LRU eviction globbed + statted + unlinked the whole tier while
  holding the cache lock, stalling every reader behind disk I/O.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.circuits import Circuit
from repro.parallel.cache import PoolCache, entry_key
from repro.store import ArtifactStore
from repro.synthesis.leap import SynthesisSolution


def _solutions(cnots: int = 1) -> list[SynthesisSolution]:
    circuit = Circuit(2)
    circuit.ry(0.3, 0)
    for _ in range(cnots):
        circuit.cx(0, 1)
    return [
        SynthesisSolution(circuit=circuit, distance=0.01, cnot_count=cnots)
    ]


def _run_threads(workers):
    """Start ``workers`` near-simultaneously; re-raise their failures."""
    barrier = threading.Barrier(len(workers))
    errors: list[BaseException] = []

    def runner(work):
        barrier.wait()
        try:
            work()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(work,)) for work in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def test_corrupt_entry_counter_is_exact_under_threads(tmp_path):
    """Regression: ``corrupt_entries += 1`` must happen under the lock.

    16 threads each probe a distinct corrupt disk entry once; without
    the lock, concurrent read-modify-write cycles lose increments and
    the counter undercounts.
    """
    threads = 16
    cache = PoolCache(tmp_path)
    keys = [entry_key("ab" * 32, seed) for seed in range(threads)]
    for key in keys:
        cache.put(key, _solutions())
        cache.store.path_for(key).write_bytes(b"rotted")

    fresh = PoolCache(tmp_path)
    _run_threads(
        [lambda key=key: fresh.get(key) for key in keys]
    )
    assert fresh.corrupt_entries == threads
    assert fresh.misses == threads


def test_same_key_put_storm_single_process(tmp_path):
    """Regression: publish temp files must be unique per *writer*.

    With the old ``<key>.tmp.<pid>`` naming, every thread of one process
    shared one temp path; concurrent writers interleaved their writes
    and the rename could publish a torn entry.  Now each writer owns a
    ``mkstemp`` file, so whichever replace lands last, readers only ever
    see one writer's complete entry.
    """
    cache = PoolCache(tmp_path)
    key = entry_key("cd" * 32, 7)
    writers = [
        lambda n=n: cache._store_disk(key, _solutions(cnots=n + 1))
        for n in range(12)
    ]
    _run_threads(writers)

    fresh = PoolCache(tmp_path)
    got = fresh.get(key)
    assert got is not None, "published entry failed integrity checks"
    assert got[0].cnot_count in range(1, 13)
    assert fresh.corrupt_entries == 0
    # No temp litter left behind by the storm.
    assert not list(tmp_path.rglob("*.tmp"))


def test_put_storm_with_concurrent_readers(tmp_path):
    """Readers racing a same-key put storm never observe a torn entry:
    every successful disk load passes the integrity envelope."""
    key = entry_key("ef" * 32, 3)
    writer_cache = PoolCache(tmp_path)
    torn = []

    def read_loop():
        # A private cache per reader so every get() probes the disk.
        mine = PoolCache(tmp_path)
        for _ in range(50):
            mine._memory.clear()
            got = mine.get(key)
            if got is not None and not got[0].circuit.num_qubits == 2:
                torn.append(got)
        if mine.corrupt_entries:
            torn.append(f"{mine.corrupt_entries} corrupt loads")

    workers = [
        lambda n=n: writer_cache._store_disk(key, _solutions(cnots=n + 1))
        for n in range(8)
    ] + [read_loop for _ in range(4)]
    _run_threads(workers)
    assert not torn


def test_put_vs_evict_race(tmp_path):
    """Publishing into a quota-bounded store while another thread
    forces evictions neither crashes nor deletes young entries."""
    store = ArtifactStore(tmp_path, max_entries=4)
    keys = [entry_key("09" * 32, seed) for seed in range(24)]

    def publisher(subset):
        for key in subset:
            assert store.publish(key, b"payload-" + key.encode())

    def evictor():
        for _ in range(20):
            store.evict()

    _run_threads(
        [
            lambda: publisher(keys[:12]),
            lambda: publisher(keys[12:]),
            evictor,
        ]
    )
    # Every key is within the grace window, so nothing was evictable.
    assert store.evictions == 0
    for key in keys:
        assert store.load(key) == b"payload-" + key.encode()


def test_hits_plus_misses_equals_gets_under_threads(tmp_path):
    """Counter arithmetic stays exact when many threads share a cache."""
    cache = PoolCache(tmp_path)
    present = [entry_key("77" * 32, seed) for seed in range(8)]
    absent = [entry_key("88" * 32, seed) for seed in range(8)]
    for key in present:
        cache.put(key, _solutions())

    rounds = 25

    def prober(key, expect_hit):
        for _ in range(rounds):
            got = cache.get(key)
            assert (got is not None) == expect_hit

    _run_threads(
        [lambda k=k: prober(k, True) for k in present]
        + [lambda k=k: prober(k, False) for k in absent]
    )
    total_gets = (len(present) + len(absent)) * rounds
    assert cache.hits == len(present) * rounds
    assert cache.misses == len(absent) * rounds
    assert cache.hits + cache.misses == total_gets


def test_concurrent_corrupt_storm_then_repair(tmp_path):
    """A corrupt-entry storm followed by a put leaves a clean entry and
    a counter equal to the number of observed corrupt loads."""
    key = entry_key("ba" * 32, 1)
    cache = PoolCache(tmp_path)
    cache.put(key, _solutions())
    path = cache.store.path_for(key)
    path.write_bytes(pickle.dumps({"version": 1, "key": key}))  # no payload

    shared = PoolCache(tmp_path)
    probes = 10

    def prober():
        for _ in range(probes):
            assert shared.get(key) is None

    _run_threads([prober for _ in range(4)])
    assert shared.corrupt_entries == 4 * probes

    shared.put(key, _solutions())
    repaired = PoolCache(tmp_path)
    assert repaired.get(key) is not None
    assert repaired.corrupt_entries == 0


def test_eviction_scan_does_not_block_readers(tmp_path):
    """The store lock is never held across eviction file I/O.

    Monkeypatch the shard scan to block mid-eviction; a concurrent
    load() must still complete while the scan is stuck, proving readers
    do not serialize behind eviction's disk walk.
    """
    key_old = entry_key("dd" * 32, 1)
    key_new = entry_key("ee" * 32, 2)
    seeder = ArtifactStore(tmp_path)
    seeder.publish(key_old, b"old")
    seeder.publish(key_new, b"new")
    store = ArtifactStore(tmp_path, max_entries=1, grace_seconds=0.0)

    scan_started = threading.Event()
    release_scan = threading.Event()
    original_scan = store._scan_shard

    def blocking_scan(shard):
        scan_started.set()
        assert release_scan.wait(timeout=10.0), "reader never released us"
        return original_scan(shard)

    store._scan_shard = blocking_scan
    evictor = threading.Thread(target=store.evict)
    evictor.start()
    try:
        assert scan_started.wait(timeout=10.0)
        # Eviction is mid-scan; a read through the same store instance
        # must not deadlock on the store lock.
        assert store.load(key_old) in (b"old", None)
        release_scan.set()
    finally:
        release_scan.set()
        evictor.join(timeout=10.0)
    assert not evictor.is_alive()


@pytest.mark.parametrize("namespace_count", [3])
def test_namespace_storm_stays_isolated(tmp_path, namespace_count):
    """Concurrent writers in different namespaces never cross-publish."""
    caches = [
        PoolCache(tmp_path, namespace=f"tenant{n}")
        for n in range(namespace_count)
    ]
    key = entry_key("fa" * 32, 5)

    def writer(index):
        caches[index].put(key, _solutions(cnots=index + 1))

    _run_threads([lambda n=n: writer(n) for n in range(namespace_count)])
    for index in range(namespace_count):
        fresh = PoolCache(tmp_path, namespace=f"tenant{index}")
        got = fresh.get(key)
        assert got is not None
        assert got[0].cnot_count == index + 1
