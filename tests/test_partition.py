"""Tests for the scan partitioner and block stitching."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, random_circuit
from repro.exceptions import PartitionError
from repro.linalg import equal_up_to_global_phase
from repro.partition import CircuitBlock, scan_partition, stitch_blocks
from repro.sim import circuit_unitary


def test_single_block_for_small_circuit(ghz3_circuit):
    blocks = scan_partition(ghz3_circuit, max_block_qubits=3)
    assert len(blocks) == 1
    assert blocks[0].qubits == (0, 1, 2)


def test_blocks_respect_size_limit(rng):
    circuit = random_circuit(6, 5, rng=rng)
    for limit in (2, 3, 4):
        blocks = scan_partition(circuit, max_block_qubits=limit)
        assert all(b.num_qubits <= limit for b in blocks)


def test_stitching_reconstructs_circuit(rng):
    for _ in range(10):
        n = int(rng.integers(2, 7))
        circuit = random_circuit(n, int(rng.integers(2, 7)), rng=rng)
        blocks = scan_partition(circuit, max_block_qubits=3)
        stitched = stitch_blocks(blocks, n)
        assert equal_up_to_global_phase(
            circuit_unitary(stitched), circuit_unitary(circuit), atol=1e-8
        )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(2, 6),
    depth=st.integers(1, 6),
    limit=st.integers(2, 4),
)
def test_partition_roundtrip_property(seed, n, depth, limit):
    circuit = random_circuit(n, depth, rng=seed)
    blocks = scan_partition(circuit, max_block_qubits=limit)
    stitched = stitch_blocks(blocks, n)
    assert equal_up_to_global_phase(
        circuit_unitary(stitched), circuit_unitary(circuit), atol=1e-7
    )


def test_per_qubit_block_order_monotonic(rng):
    # The correctness invariant behind the scan partitioner.
    circuit = random_circuit(6, 6, rng=rng)
    blocks = scan_partition(circuit, max_block_qubits=3)
    op_block: dict[int, list[int]] = {}
    for block in blocks:
        for op in block.circuit.operations:
            for local in op.qubits:
                global_q = block.qubits[local]
                op_block.setdefault(global_q, []).append(block.index)
    # Gate order within a block follows circuit order by construction;
    # across blocks each qubit's block indices must be non-decreasing.
    for indices in op_block.values():
        assert indices == sorted(indices)


def test_gate_count_preserved(rng):
    circuit = random_circuit(5, 5, rng=rng)
    blocks = scan_partition(circuit, max_block_qubits=3)
    total = sum(len(b.circuit) for b in blocks)
    unitary_ops = [
        op for op in circuit.operations if op.name not in ("measure", "barrier")
    ]
    assert total == len(unitary_ops)


def test_partition_rejects_measurements(bell_circuit):
    bell_circuit.measure_all()
    with pytest.raises(PartitionError):
        scan_partition(bell_circuit)


def test_partition_rejects_tiny_blocks(bell_circuit):
    with pytest.raises(PartitionError):
        scan_partition(bell_circuit, max_block_qubits=1)


def test_partition_rejects_oversized_gate():
    circuit = Circuit(3)
    circuit.ccx(0, 1, 2)
    with pytest.raises(PartitionError):
        scan_partition(circuit, max_block_qubits=2)


def test_block_validation():
    with pytest.raises(PartitionError):
        CircuitBlock(index=0, qubits=(2, 1), circuit=Circuit(2))
    with pytest.raises(PartitionError):
        CircuitBlock(index=0, qubits=(0, 1), circuit=Circuit(3))


def test_block_replacement_width_checked(ghz3_circuit):
    blocks = scan_partition(ghz3_circuit, max_block_qubits=3)
    with pytest.raises(PartitionError):
        blocks[0].with_circuit(Circuit(2))


def test_stitch_requires_contiguous_indices(ghz3_circuit):
    blocks = scan_partition(ghz3_circuit, max_block_qubits=3)
    from dataclasses import replace

    broken = [replace(blocks[0], index=5)]
    with pytest.raises(PartitionError):
        stitch_blocks(broken, 3)


def test_blocks_have_local_unitaries(rng):
    circuit = random_circuit(5, 4, rng=rng)
    blocks = scan_partition(circuit, max_block_qubits=3)
    for block in blocks:
        unitary = block.unitary()
        dim = 2**block.num_qubits
        assert unitary.shape == (dim, dim)
        assert np.allclose(
            unitary.conj().T @ unitary, np.eye(dim), atol=1e-10
        )
