"""Tests for synthesis templates and their analytic gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import random_unitary
from repro.exceptions import SynthesisError
from repro.synthesis import Ansatz, Slot, all_placements, build_leap_ansatz
from repro.synthesis.instantiate import _cost_and_gradient


def test_build_structure():
    ansatz = build_leap_ansatz(2, [(0, 1)], layer_rotations=("ry", "rz"))
    # Initial ZYZ on 2 qubits (6 params) + 1 CNOT + 2x2 rotations.
    assert ansatz.num_params == 6 + 4
    assert ansatz.cnot_count == 1


def test_build_circuit_binds_params(rng):
    ansatz = build_leap_ansatz(2, [(0, 1)])
    params = rng.uniform(-np.pi, np.pi, ansatz.num_params)
    circuit = ansatz.build_circuit(params)
    assert circuit.cnot_count() == 1
    rotation_params = [
        op.params[0] for op in circuit.operations if op.params
    ]
    assert rotation_params == pytest.approx(list(params))


def test_build_circuit_checks_length():
    ansatz = build_leap_ansatz(2, [])
    with pytest.raises(SynthesisError):
        ansatz.build_circuit(np.zeros(99))


def test_unitary_matches_circuit(rng):
    ansatz = build_leap_ansatz(3, [(0, 1), (1, 2)])
    params = rng.uniform(-np.pi, np.pi, ansatz.num_params)
    direct = ansatz.unitary(params)
    via_circuit = ansatz.build_circuit(params).unitary()
    assert np.allclose(direct, via_circuit, atol=1e-10)


def test_gradient_matches_finite_differences(rng):
    ansatz = build_leap_ansatz(2, [(0, 1), (1, 0)])
    target = random_unitary(4, rng)
    params = rng.uniform(-np.pi, np.pi, ansatz.num_params)
    _, grad = _cost_and_gradient(params, ansatz, target.conj(), 4)
    eps = 1e-6
    for k in range(ansatz.num_params):
        plus, minus = params.copy(), params.copy()
        plus[k] += eps
        minus[k] -= eps
        numeric = (
            _cost_and_gradient(plus, ansatz, target.conj(), 4)[0]
            - _cost_and_gradient(minus, ansatz, target.conj(), 4)[0]
        ) / (2 * eps)
        assert grad[k] == pytest.approx(numeric, abs=1e-6)


def test_gradient_shapes(rng):
    ansatz = build_leap_ansatz(3, [(0, 2)])
    params = rng.uniform(-1, 1, ansatz.num_params)
    unitary, gradient = ansatz.unitary_and_gradient(params)
    assert unitary.shape == (8, 8)
    assert gradient.shape == (ansatz.num_params, 8, 8)


def test_trace_and_gradient_matches_full_gradient(rng):
    ansatz = build_leap_ansatz(3, [(0, 1), (1, 2)])
    target = random_unitary(8, rng)
    target_conj = target.conj()
    params = rng.uniform(-np.pi, np.pi, ansatz.num_params)
    unitary, gradient = ansatz.unitary_and_gradient(params)
    trace, dtraces = ansatz.trace_and_gradient(params, target_conj)
    assert trace == pytest.approx(complex(np.sum(target_conj * unitary)))
    expected = np.sum(target_conj[None, :, :] * gradient, axis=(1, 2))
    assert np.allclose(dtraces, expected, atol=1e-10)


def test_instantiate_avoids_full_gradient_tensor(rng, monkeypatch):
    # The L-BFGS hot loop must use the trace-only sweep, never the
    # (num_params, dim, dim) tensor from unitary_and_gradient.
    from repro.synthesis.instantiate import instantiate

    def _boom(self, params):
        raise AssertionError("unitary_and_gradient called in the hot loop")

    monkeypatch.setattr(Ansatz, "unitary_and_gradient", _boom)
    ansatz = build_leap_ansatz(2, [(0, 1)])
    truth = rng.uniform(-np.pi, np.pi, ansatz.num_params)
    target = ansatz.unitary(truth)
    result = instantiate(ansatz, target, rng=rng, starts=2)
    assert result.cost < 1e-8


def test_bad_placement_rejected():
    with pytest.raises(SynthesisError):
        build_leap_ansatz(2, [(1, 1)])


def test_bad_param_indices_rejected():
    with pytest.raises(SynthesisError):
        Ansatz(1, [Slot("ry", (0,), 5)])


def test_all_placements_full_connectivity():
    placements = all_placements(3)
    assert len(placements) == 6
    assert (0, 1) in placements and (1, 0) in placements


def test_all_placements_with_coupling():
    placements = all_placements(3, coupling=[(0, 1)])
    assert sorted(placements) == [(0, 1), (1, 0)]
