"""File-level QASM I/O: the artifact-exchange path of the original repo."""

from __future__ import annotations

import numpy as np

from repro.algorithms import benchmark_suite
from repro.circuits import circuit_from_qasm, circuit_to_qasm
from repro.linalg import equal_up_to_global_phase
from repro.sim import circuit_unitary
from repro.transpile import lower_to_basis


def test_suite_roundtrips_through_files(tmp_path):
    # Every Table-1 benchmark serializes to disk and parses back intact,
    # mirroring the original artifact's input_qasm_files directory.
    for name, circuit in benchmark_suite(rng=3).items():
        path = tmp_path / f"{name}.qasm"
        path.write_text(circuit_to_qasm(circuit))
        parsed = circuit_from_qasm(path.read_text())
        assert parsed == circuit, name


def test_lowered_suite_roundtrips(tmp_path):
    for name, circuit in benchmark_suite(rng=3).items():
        if circuit.num_qubits > 6:
            continue
        lowered = lower_to_basis(circuit)
        path = tmp_path / f"{name}_lowered.qasm"
        path.write_text(circuit_to_qasm(lowered))
        parsed = circuit_from_qasm(path.read_text())
        assert equal_up_to_global_phase(
            circuit_unitary(parsed), circuit_unitary(circuit), atol=1e-7
        ), name


def test_qasm_float_parameters_exact(tmp_path):
    from repro.circuits import Circuit

    circuit = Circuit(1)
    angle = float(np.nextafter(0.1, 1.0))
    circuit.rz(angle, 0)
    parsed = circuit_from_qasm(circuit_to_qasm(circuit))
    # repr-based emission preserves the parameter bit-exactly.
    assert parsed.operations[0].params[0] == angle
