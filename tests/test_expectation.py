"""Tests for observable expectations and the shot protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import average_magnetization
from repro.circuits import Circuit
from repro.exceptions import SimulationError
from repro.metrics import tvd
from repro.sim import ideal_distribution
from repro.sim.expectation import (
    DEFAULT_SHOTS,
    diagonal_expectation,
    sampled_distribution,
    z_string_expectation,
)


def test_z_expectation_on_basis_states():
    probs = np.zeros(4)
    probs[0b01] = 1.0  # qubit 0 down
    assert z_string_expectation(probs, (0,)) == pytest.approx(-1.0)
    assert z_string_expectation(probs, (1,)) == pytest.approx(1.0)
    assert z_string_expectation(probs, (0, 1)) == pytest.approx(-1.0)


def test_z_expectation_empty_string_is_one():
    probs = np.full(4, 0.25)
    assert z_string_expectation(probs, ()) == pytest.approx(1.0)


def test_z_expectation_validation():
    with pytest.raises(SimulationError):
        z_string_expectation(np.full(3, 1 / 3), (0,))
    with pytest.raises(SimulationError):
        z_string_expectation(np.full(4, 0.25), (7,))


def test_magnetization_consistency():
    # average_magnetization is the mean of single-qubit Z expectations.
    gen = np.random.default_rng(0)
    probs = gen.random(8)
    probs /= probs.sum()
    mean_z = np.mean([z_string_expectation(probs, (q,)) for q in range(3)])
    assert average_magnetization(probs, 3) == pytest.approx(mean_z)


def test_diagonal_expectation():
    probs = np.array([0.25, 0.75])
    diag = np.array([2.0, -2.0])
    assert diagonal_expectation(probs, diag) == pytest.approx(-1.0)
    with pytest.raises(SimulationError):
        diagonal_expectation(probs, np.zeros(3))


def test_sampled_distribution_converges(bell_circuit):
    exact = ideal_distribution(bell_circuit)
    estimate = sampled_distribution(bell_circuit, shots=DEFAULT_SHOTS, rng=0)
    assert tvd(exact, estimate) < 0.03


def test_sampled_distribution_shot_scaling(ghz3_circuit):
    exact = ideal_distribution(ghz3_circuit)
    coarse = np.mean([
        tvd(exact, sampled_distribution(ghz3_circuit, shots=64, rng=s))
        for s in range(10)
    ])
    fine = np.mean([
        tvd(exact, sampled_distribution(ghz3_circuit, shots=4096, rng=s))
        for s in range(10)
    ])
    assert fine < coarse
