"""Tests for peephole optimization passes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit, random_circuit
from repro.linalg import equal_up_to_global_phase
from repro.sim import circuit_unitary
from repro.transpile import (
    cancel_adjacent_cx,
    consolidate_two_qubit_runs,
    lower_to_basis,
    merge_one_qubit_gates,
    remove_identity_rotations,
)


def _equivalent(a: Circuit, b: Circuit) -> bool:
    return equal_up_to_global_phase(
        circuit_unitary(a), circuit_unitary(b), atol=1e-6
    )


class TestMergeOneQubitGates:
    def test_merges_rotation_run(self):
        circuit = Circuit(1)
        circuit.rz(0.1, 0)
        circuit.rz(0.2, 0)
        circuit.rz(0.3, 0)
        merged = merge_one_qubit_gates(circuit)
        assert len(merged) == 1
        assert _equivalent(merged, circuit)

    def test_identity_run_disappears(self):
        circuit = Circuit(1)
        circuit.h(0)
        circuit.h(0)
        merged = merge_one_qubit_gates(circuit)
        assert len(merged) == 0

    def test_flushes_at_two_qubit_gates(self):
        circuit = Circuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.h(0)
        merged = merge_one_qubit_gates(circuit)
        assert _equivalent(merged, circuit)
        assert merged.cnot_count() == 1

    def test_random_circuits_preserved(self, rng):
        for _ in range(8):
            circuit = random_circuit(3, 6, rng=rng)
            assert _equivalent(merge_one_qubit_gates(circuit), circuit)

    def test_never_increases_one_qubit_count(self, rng):
        circuit = random_circuit(2, 10, rng=rng, cx_probability=0.1)
        merged = merge_one_qubit_gates(circuit)
        assert len(merged) <= len(circuit)


class TestCancelAdjacentCx:
    def test_plain_pair_cancels(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        assert len(cancel_adjacent_cx(circuit)) == 0

    def test_reversed_pair_kept(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        assert cancel_adjacent_cx(circuit).cnot_count() == 2

    def test_rz_on_control_commutes(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        circuit.rz(0.5, 0)
        circuit.cx(0, 1)
        cancelled = cancel_adjacent_cx(circuit)
        assert cancelled.cnot_count() == 0
        assert _equivalent(cancelled, circuit)

    def test_rx_on_target_commutes(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        circuit.rx(0.5, 1)
        circuit.cx(0, 1)
        cancelled = cancel_adjacent_cx(circuit)
        assert cancelled.cnot_count() == 0
        assert _equivalent(cancelled, circuit)

    def test_ry_blocks_cancellation(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        circuit.ry(0.5, 1)
        circuit.cx(0, 1)
        assert cancel_adjacent_cx(circuit).cnot_count() == 2

    def test_shared_control_commutes(self):
        circuit = Circuit(3)
        circuit.cx(0, 1)
        circuit.cx(0, 2)
        circuit.cx(0, 1)
        cancelled = cancel_adjacent_cx(circuit)
        assert cancelled.cnot_count() == 1
        assert _equivalent(cancelled, circuit)

    def test_shared_target_commutes(self):
        circuit = Circuit(3)
        circuit.cx(0, 2)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        cancelled = cancel_adjacent_cx(circuit)
        assert cancelled.cnot_count() == 1
        assert _equivalent(cancelled, circuit)

    def test_barrier_blocks_cancellation(self):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        circuit.barrier()
        circuit.cx(0, 1)
        assert cancel_adjacent_cx(circuit).cnot_count() == 2

    def test_random_circuits_preserved(self, rng):
        for _ in range(8):
            circuit = random_circuit(3, 6, rng=rng)
            assert _equivalent(cancel_adjacent_cx(circuit), circuit)


class TestRemoveIdentityRotations:
    def test_removes_two_pi(self):
        circuit = Circuit(1)
        circuit.rz(2.0 * np.pi, 0)
        circuit.rx(0.0, 0)
        circuit.ry(0.5, 0)
        out = remove_identity_rotations(circuit)
        assert len(out) == 1
        assert out.operations[0].name == "ry"


class TestConsolidation:
    def test_reduces_long_same_pair_run(self, rng):
        circuit = Circuit(2)
        for i in range(6):
            circuit.cx(i % 2, (i + 1) % 2)
            circuit.ry(0.3 + 0.1 * i, 0)
            circuit.rz(0.2 + 0.1 * i, 1)
        consolidated = consolidate_two_qubit_runs(circuit, rng=rng)
        assert consolidated.cnot_count() <= 3
        assert _equivalent(consolidated, circuit)

    def test_leaves_cheap_runs_alone(self, rng):
        circuit = Circuit(2)
        circuit.cx(0, 1)
        consolidated = consolidate_two_qubit_runs(circuit, rng=rng)
        assert consolidated.cnot_count() == 1

    def test_preserves_interleaved_other_qubits(self, rng):
        circuit = Circuit(3)
        circuit.cx(0, 1)
        circuit.h(2)
        circuit.cx(0, 1)
        circuit.ry(0.4, 2)
        circuit.cx(1, 2)
        consolidated = consolidate_two_qubit_runs(circuit, rng=rng)
        assert _equivalent(consolidated, circuit)

    def test_random_circuits_preserved(self, rng):
        for _ in range(4):
            circuit = lower_to_basis(random_circuit(3, 5, rng=rng))
            consolidated = consolidate_two_qubit_runs(circuit, rng=rng)
            assert _equivalent(consolidated, circuit)
