"""Additional transpiler edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.linalg import equal_up_to_global_phase
from repro.sim import circuit_unitary
from repro.transpile import (
    cancel_adjacent_cx,
    consolidate_two_qubit_runs,
    merge_one_qubit_gates,
    transpile,
)


def test_merge_keeps_measurements_in_place():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.h(0)
    circuit.measure(0, 0)
    merged = merge_one_qubit_gates(circuit)
    assert [op.name for op in merged] == ["measure"]


def test_cancel_ignores_measured_qubits():
    circuit = Circuit(2)
    circuit.cx(0, 1)
    circuit.measure(0, 0)
    circuit.cx(0, 1)
    cancelled = cancel_adjacent_cx(circuit)
    assert cancelled.cnot_count() == 2


def test_consolidation_min_run_setting(rng):
    circuit = Circuit(2)
    circuit.cx(0, 1)
    circuit.ry(0.2, 1)
    circuit.cx(0, 1)
    # min_run_cnots=3 leaves a 2-CNOT run untouched.
    untouched = consolidate_two_qubit_runs(circuit, min_run_cnots=3, rng=rng)
    assert untouched.cnot_count() == 2
    # Default consolidates it down to <= 2 (here: an RZZ-class gate, 2 CX;
    # the pass only rewrites when strictly cheaper, so it may keep 2).
    consolidated = consolidate_two_qubit_runs(circuit, rng=rng)
    assert consolidated.cnot_count() <= 2
    assert equal_up_to_global_phase(
        circuit_unitary(consolidated), circuit_unitary(circuit), atol=1e-6
    )


def test_consolidation_collapses_identity_pair(rng):
    circuit = Circuit(2)
    circuit.cx(0, 1)
    circuit.cx(0, 1)
    consolidated = consolidate_two_qubit_runs(circuit, rng=rng)
    assert consolidated.cnot_count() == 0


def test_transpile_result_exposes_cnot_count(bell_circuit):
    result = transpile(bell_circuit, optimization_level=1)
    assert result.cnot_count == result.circuit.cnot_count() == 1


def test_transpile_idempotent(rng):
    from repro.circuits import random_circuit

    circuit = random_circuit(3, 5, rng=rng)
    once = transpile(circuit, optimization_level=2, rng=0)
    twice = transpile(once.circuit, optimization_level=2, rng=0)
    assert twice.cnot_count <= once.cnot_count
    assert equal_up_to_global_phase(
        circuit_unitary(twice.circuit), circuit_unitary(circuit), atol=1e-6
    )


def test_swap_heavy_circuit_reduction():
    # SWAP then identical SWAP: level-2 passes cancel all six CNOTs.
    circuit = Circuit(2)
    circuit.swap(0, 1)
    circuit.swap(0, 1)
    result = transpile(circuit, optimization_level=2)
    assert result.cnot_count == 0


def test_remap_measurement_cbits():
    circuit = Circuit(3)
    circuit.measure(0, 0)
    remapped = circuit.remap({0: 2, 1: 1, 2: 0})
    op = remapped.operations[0]
    assert op.qubits == (2,)
    assert op.cbit == 2
