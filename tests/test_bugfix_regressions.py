"""Regression tests for the correctness-bugfix sweep.

Each test pins one fixed bug:

* LEAP's time budget measured on ``perf_counter`` while the cooperative
  deadline used ``monotonic`` — unified on ``monotonic``;
* per-run dual-annealing seeds drawn as bounded ``rng.integers`` (weak,
  collision-prone single-integer seeding) — now spawned
  ``SeedSequence`` children;
* the executor's exact-pool fallback only ``warnings.warn``-ed, leaving
  no structured record of the degradation.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.algorithms import tfim
from repro.circuits import random_circuit
from repro.core import annealing as annealing_module
from repro.core.annealing import select_approximations
from repro.core.quest import QuestConfig
from repro.parallel.executor import BlockSynthesisExecutor
from repro.partition.scan import scan_partition
from repro.resilience.retry import FAILURE_FALLBACK, RetryPolicy
from repro.synthesis.leap import LeapConfig, synthesize
from repro.transpile.basis import lower_to_basis


# ----------------------------------------------------------------------
# Clock unification (leap.py)
# ----------------------------------------------------------------------
def test_leap_time_budget_uses_monotonic_not_perf_counter(monkeypatch):
    """A perf_counter discontinuity must not exhaust the LEAP budget.

    The cooperative deadline layer measures on ``time.monotonic``; the
    budget check used ``time.perf_counter``.  The two clocks can drift
    (perf_counter may or may not tick across suspend, and their epochs
    differ), so mixing them let one bound fire hours before the other.
    Here perf_counter jumps an hour per call: on the fixed clock the
    two-layer search still completes inside its generous budget.
    """
    fake_now = [0.0]

    def jumping_perf_counter():
        fake_now[0] += 3600.0
        return fake_now[0]

    monkeypatch.setattr(time, "perf_counter", jumping_perf_counter)
    target = random_circuit(2, 4, rng=1).unitary()
    config = LeapConfig(
        max_layers=2,
        solutions_per_layer=1,
        instantiation_starts=1,
        max_optimizer_iterations=40,
        seed=0,
        time_budget=120.0,
    )
    report = synthesize(target, config)
    assert report.layers_explored == config.max_layers
    # elapsed_seconds is real (monotonic) time, not the jumping clock.
    assert report.elapsed_seconds < 120.0


# ----------------------------------------------------------------------
# Annealer seed derivation (annealing.py)
# ----------------------------------------------------------------------
class _FakeObjective:
    """Just enough of SelectionObjective to drive the annealer loop."""

    def __init__(self, num_blocks: int = 2, pool_size: int = 4) -> None:
        self.pools = [
            SimpleNamespace(size=pool_size) for _ in range(num_blocks)
        ]
        self.num_blocks = num_blocks
        self.threshold = 10.0
        self.selected: list[np.ndarray] = []
        self.scalar_evaluations = 0
        self.batched_evaluations = 0
        self._pool_size = pool_size

    def bounds(self):
        return [(0.0, 1.0)] * self.num_blocks

    def __call__(self, x):
        self.scalar_evaluations += 1
        return float(np.sum(x))

    def decode(self, x):
        scaled = np.asarray(x) * self._pool_size
        return np.clip(scaled.astype(int), 0, self._pool_size - 1)

    def choice_bound(self, choice):
        return 0.0

    def choice_cnot_count(self, choice):
        return int(np.sum(choice))


def _capture_annealer_seeds(monkeypatch, seed, max_samples=3):
    captured = []
    counter = [0]

    def fake_dual_annealing(objective, bounds, maxiter, seed, **kwargs):
        captured.append(seed)
        counter[0] += 1
        # Distinct choices per run so the repeat stopping rule never
        # fires before max_samples.
        x = np.full(len(bounds), (counter[0] % 4) / 4 + 0.01)
        return SimpleNamespace(x=x)

    monkeypatch.setattr(
        annealing_module, "dual_annealing", fake_dual_annealing
    )
    select_approximations(
        _FakeObjective(),
        max_samples=max_samples,
        seed=seed,
        exhaustive_cutoff=0,  # force the annealer path
    )
    return captured


def test_annealer_run_seeds_are_spawned_seedsequence_children(monkeypatch):
    captured = _capture_annealer_seeds(monkeypatch, seed=42)
    assert len(captured) == 3
    # Generators, not bounded ints: full-entropy independent streams.
    assert all(isinstance(s, np.random.Generator) for s in captured)
    expected = np.random.SeedSequence(42).spawn(3)
    for generator, child in zip(captured, expected):
        assert generator.integers(2**63) == np.random.default_rng(
            child
        ).integers(2**63)


def test_annealer_seed_accepts_a_seedsequence(monkeypatch):
    root = np.random.SeedSequence(7)
    captured = _capture_annealer_seeds(monkeypatch, seed=root)
    expected = np.random.SeedSequence(7).spawn(3)
    for generator, child in zip(captured, expected):
        assert generator.integers(2**63) == np.random.default_rng(
            child
        ).integers(2**63)


def test_annealer_run_streams_are_pairwise_distinct(monkeypatch):
    captured = _capture_annealer_seeds(monkeypatch, seed=0)
    draws = [g.integers(2**63, size=4).tolist() for g in captured]
    assert len({tuple(d) for d in draws}) == len(draws)


# ----------------------------------------------------------------------
# Structured fallback records (executor.py)
# ----------------------------------------------------------------------
CONFIG = QuestConfig(
    seed=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)


def _always_fails(block, config, seed):
    raise RuntimeError("synthetic synthesis failure")


def test_fallback_degradation_is_recorded_structurally():
    """The exact-pool downgrade must leave a FailureRecord, not only a
    RuntimeWarning."""
    baseline = lower_to_basis(tfim(3, steps=1).without_measurements())
    blocks = scan_partition(baseline, CONFIG.max_block_qubits)
    rng = np.random.default_rng(CONFIG.seed)
    seeds = [int(rng.integers(2**31 - 1)) for _ in blocks]
    runner = BlockSynthesisExecutor(
        synthesize_fn=_always_fails,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    with pytest.warns(RuntimeWarning, match="falling back to the exact block"):
        pools, stats = runner.run(blocks, CONFIG, seeds)
    assert stats.fallback_blocks
    fallback_records = [
        r for r in stats.failure_log if r.kind == FAILURE_FALLBACK
    ]
    assert sorted(r.block_index for r in fallback_records) == sorted(
        stats.fallback_blocks
    )
    for record in fallback_records:
        assert record.attempt == 2  # terminal: after max_attempts
        assert "degraded to exact block" in record.message
        assert "RuntimeError" in record.message
    # Serializes cleanly for artifacts/CLI like every other record.
    assert all(
        r.as_dict()["kind"] == FAILURE_FALLBACK for r in fallback_records
    )
