"""Property tests: batched selection objective vs. the frozen seed scalar.

The vectorized selection layer (padded gather tables, einsum similarity
construction, ``evaluate_batch``) must reproduce the pre-vectorization
implementation *exactly*.  This module freezes that seed implementation —
per-block Python loops, ``hs_distance`` pair loops, per-prior similarity
loops, left-to-right Python sums — and asserts elementwise equality on
randomized pools.

Exactness note: the generators draw distances as multiples of 1/64 and
thresholds as multiples of 1/128, and keep ``num_blocks`` and the
selected-set size below 8.  Sums of such values are exact in float64 and
numpy's reduction is bitwise identical to a left-to-right Python sum for
fewer than 8 addends, so every comparison below is ``==``, not
``approx`` — reduction-order is genuinely preserved at these sizes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, random_unitary
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool, Candidate
from repro.core.similarity import are_similar
from repro.linalg import hs_distance
from repro.partition.blocks import CircuitBlock


# ----------------------------------------------------------------------
# Frozen seed implementation (pre-vectorization)
# ----------------------------------------------------------------------

def seed_tables(
    candidate_unitaries: list[list[np.ndarray]],
    original_unitaries: list[np.ndarray],
) -> list[np.ndarray]:
    """The seed's O(count^2) scalar similarity-table construction."""
    tables = []
    for candidates, original in zip(candidate_unitaries, original_unitaries):
        count = len(candidates)
        to_original = np.array(
            [hs_distance(c, original) for c in candidates]
        )
        table = np.zeros((count, count), dtype=bool)
        for i in range(count):
            table[i, i] = True
            for j in range(i + 1, count):
                mutual = hs_distance(candidates[i], candidates[j])
                similar = are_similar(mutual, to_original[i], to_original[j])
                table[i, j] = table[j, i] = similar
        tables.append(table)
    return tables


def seed_objective_value(
    objective: SelectionObjective,
    tables: list[np.ndarray],
    choice: np.ndarray,
) -> float:
    """The seed's scalar objective: Python loops and left-to-right sums."""
    num_blocks = objective.num_blocks
    distances = [pool.distances() for pool in objective.pools]
    cnots = [pool.cnot_counts() for pool in objective.pools]
    bound = float(
        sum(distances[b][choice[b]] for b in range(num_blocks))
    )
    if bound > objective.threshold:
        return 1.0
    c_norm = (
        int(sum(cnots[b][choice[b]] for b in range(num_blocks)))
        / objective.original_cnot_count
    )
    if not objective.selected:
        return c_norm
    total = sum(
        sum(
            1
            for b in range(num_blocks)
            if tables[b][int(choice[b]), int(prior[b])]
        )
        / num_blocks
        for prior in objective.selected
    )
    m = total / len(objective.selected)
    return objective.weight * m + (1.0 - objective.weight) * c_norm


# ----------------------------------------------------------------------
# Randomized instances
# ----------------------------------------------------------------------

def _build_pools(
    rng: np.random.Generator, pool_sizes: list[int]
) -> list[BlockPool]:
    """Pools with random 1-qubit candidate unitaries and grid distances."""
    pools = []
    for index, size in enumerate(pool_sizes):
        dummy = Circuit(1)
        block = CircuitBlock(index=index, qubits=(index,), circuit=dummy)
        original = random_unitary(2, rng)
        pool = BlockPool(block=block, original_unitary=original)
        pool.candidates.append(
            Candidate(circuit=dummy, unitary=original, distance=0.0,
                      cnot_count=int(rng.integers(1, 9)))
        )
        for _ in range(size - 1):
            pool.candidates.append(
                Candidate(
                    circuit=dummy,
                    unitary=random_unitary(2, rng),
                    distance=int(rng.integers(0, 129)) / 64.0,
                    cnot_count=int(rng.integers(0, 9)),
                )
            )
        pools.append(pool)
    return pools


@st.composite
def selection_instances(draw):
    num_blocks = draw(st.integers(min_value=1, max_value=7))
    pool_sizes = draw(
        st.lists(st.integers(min_value=1, max_value=5),
                 min_size=num_blocks, max_size=num_blocks)
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    threshold = draw(st.integers(min_value=0, max_value=512)) / 128.0
    weight = draw(st.integers(min_value=0, max_value=16)) / 16.0
    original_cnots = draw(st.integers(min_value=1, max_value=40))
    num_selected = draw(st.integers(min_value=0, max_value=7))
    batch = draw(st.integers(min_value=1, max_value=24))
    return (pool_sizes, seed, threshold, weight, original_cnots,
            num_selected, batch)


def _random_choices(
    rng: np.random.Generator, pool_sizes: list[int], rows: int
) -> np.ndarray:
    return np.column_stack(
        [rng.integers(0, size, rows) for size in pool_sizes]
    )


@settings(max_examples=80, deadline=None)
@given(selection_instances())
def test_evaluate_batch_matches_frozen_seed_objective(instance):
    (pool_sizes, seed, threshold, weight, original_cnots,
     num_selected, batch) = instance
    rng = np.random.default_rng(seed)
    pools = _build_pools(rng, pool_sizes)
    objective = SelectionObjective(
        pools=pools, threshold=threshold,
        original_cnot_count=original_cnots, weight=weight,
    )
    frozen = seed_tables(
        [[c.unitary for c in pool.candidates] for pool in pools],
        [pool.original_unitary for pool in pools],
    )
    # The einsum Gram-matrix tables equal the scalar pair-loop tables.
    for block in range(len(pools)):
        assert np.array_equal(objective.tables._tables[block], frozen[block])

    for prior in _random_choices(rng, pool_sizes, num_selected):
        objective.selected.append(prior.astype(int))
    choices = _random_choices(rng, pool_sizes, batch)

    batched = objective.evaluate_batch(choices)
    assert batched.shape == (batch,)
    for row, choice in enumerate(choices):
        reference = seed_objective_value(objective, frozen, choice)
        # Exact equality: see the module docstring for why no tolerance
        # is needed at these sizes.
        assert batched[row] == reference
        # The scalar path is routed through the same gathers; it must
        # agree bitwise with both the batch row and the seed value.
        assert objective(choice.astype(float)) == reference


@settings(max_examples=30, deadline=None)
@given(selection_instances())
def test_single_point_accessors_match_seed_loops(instance):
    pool_sizes, seed, threshold, weight, original_cnots, _, _ = instance
    rng = np.random.default_rng(seed)
    pools = _build_pools(rng, pool_sizes)
    objective = SelectionObjective(
        pools=pools, threshold=threshold,
        original_cnot_count=original_cnots, weight=weight,
    )
    distances = [pool.distances() for pool in pools]
    cnots = [pool.cnot_counts() for pool in pools]
    for choice in _random_choices(rng, pool_sizes, 8):
        n = len(pools)
        assert objective.choice_cnot_count(choice) == int(
            sum(cnots[b][choice[b]] for b in range(n))
        )
        assert objective.choice_bound(choice) == float(
            sum(distances[b][choice[b]] for b in range(n))
        )


def test_evaluation_counters_track_both_entry_points():
    rng = np.random.default_rng(3)
    pools = _build_pools(rng, [3, 3])
    objective = SelectionObjective(
        pools=pools, threshold=4.0, original_cnot_count=8
    )
    objective(np.array([0.0, 0.0]))
    objective(np.array([1.0, 2.0]))
    assert objective.scalar_evaluations == 2
    assert objective.batched_evaluations == 0
    objective.evaluate_batch(np.array([[0, 0], [1, 1], [2, 2]]))
    assert objective.batched_evaluations == 3
    assert objective.scalar_evaluations == 2
