"""The deterministic fault-injection matrix.

Every recovery path gets a scheduled fault and must recover — retry,
quarantine, or recompute — with results bit-identical to an unfaulted
run whenever the retry succeeds under the original seed.  The mid-run
SIGKILL leg of the matrix lives in ``test_resilience_kill.py`` (it
needs a subprocess harness).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import tfim
from repro.core.pool import exact_pool
from repro.core.quest import QuestConfig, run_quest
from repro.exceptions import BlockTimeoutError, ValidationError
from repro.parallel.cache import PoolCache
from repro.parallel.executor import BlockSynthesisExecutor
from repro.partition.scan import scan_partition
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    block_deadline,
    check_deadline,
    deadline_remaining,
    parse_fault_spec,
)
from repro.resilience.faults import InjectedFault
from repro.resilience.retry import FAILURE_TIMEOUT
from repro.resilience.validation import validate_pool, validate_solutions
from repro.synthesis.leap import SynthesisSolution
from repro.transpile.basis import lower_to_basis

FAST = dict(
    max_samples=3,
    max_block_qubits=2,
    max_layers_per_block=2,
    solutions_per_layer=2,
    instantiation_starts=1,
    max_optimizer_iterations=40,
    annealing_maxiter=40,
    threshold_per_block=0.25,
    sphere_variants_per_count=2,
    block_time_budget=None,
)
CONFIG = QuestConfig(seed=3, **FAST)


def _blocks():
    baseline = lower_to_basis(tfim(4, steps=1).without_measurements())
    return scan_partition(baseline, CONFIG.max_block_qubits)


def _seeds(blocks):
    rng = np.random.default_rng(CONFIG.seed)
    return [int(rng.integers(2**31 - 1)) for _ in blocks]


def _pools_equal(pools_a, pools_b):
    assert len(pools_a) == len(pools_b)
    for a, b in zip(pools_a, pools_b):
        assert a.cnot_counts().tolist() == b.cnot_counts().tolist()
        assert a.distances().tolist() == b.distances().tolist()
        for ca, cb in zip(a.candidates, b.candidates):
            assert np.array_equal(ca.unitary, cb.unitary)


# ----------------------------------------------------------------------
# Cooperative deadline primitives
# ----------------------------------------------------------------------
def test_check_deadline_is_a_noop_without_a_deadline():
    check_deadline()
    assert deadline_remaining() is None


def test_block_deadline_none_is_a_noop():
    with block_deadline(None):
        check_deadline()
        assert deadline_remaining() is None


def test_expired_deadline_raises():
    with block_deadline(0.0):
        with pytest.raises(BlockTimeoutError):
            check_deadline()


def test_deadline_restores_on_exit():
    with block_deadline(0.0):
        pass
    check_deadline()  # must not raise


def test_nested_deadlines_take_the_minimum():
    with block_deadline(60.0):
        outer = deadline_remaining()
        with block_deadline(0.0):
            with pytest.raises(BlockTimeoutError):
                check_deadline()
        # Inner expiry never tightens the outer deadline.
        assert deadline_remaining() is not None
        assert abs(deadline_remaining() - outer) < 1.0
        check_deadline()


# ----------------------------------------------------------------------
# Validation primitives
# ----------------------------------------------------------------------
def _exact_solution(block):
    return SynthesisSolution(
        circuit=block.circuit,
        distance=0.0,
        cnot_count=block.circuit.cnot_count(),
    )


def test_honest_solutions_validate():
    block = next(b for b in _blocks() if b.num_qubits > 1)
    validate_solutions(block.unitary(), [_exact_solution(block)])
    validate_pool(exact_pool(block))


def test_nan_distance_is_rejected():
    from dataclasses import replace

    block = next(b for b in _blocks() if b.num_qubits > 1)
    bad = replace(_exact_solution(block), distance=float("nan"))
    with pytest.raises(ValidationError, match="not finite"):
        validate_solutions(block.unitary(), [bad])


def test_wrong_distance_is_rejected():
    from dataclasses import replace

    block = next(b for b in _blocks() if b.num_qubits > 1)
    bad = replace(_exact_solution(block), distance=0.5)
    with pytest.raises(ValidationError, match="disagrees with recorded"):
        validate_solutions(block.unitary(), [bad])


def test_non_list_payload_is_rejected():
    block = next(b for b in _blocks() if b.num_qubits > 1)
    with pytest.raises(ValidationError, match="expected list"):
        validate_solutions(block.unitary(), "garbage")


def test_non_unitary_candidate_is_rejected():
    from dataclasses import replace

    block = next(b for b in _blocks() if b.num_qubits > 1)
    pool = exact_pool(block)
    # The exact candidate shares its array with pool.original_unitary,
    # so corrupt a copy — this targets the *candidate* check.
    pool.candidates[0] = replace(
        pool.candidates[0], unitary=pool.candidates[0].unitary * 1.5
    )
    with pytest.raises(ValidationError, match="unitarity defect"):
        validate_pool(pool)


def test_empty_pool_is_rejected():
    block = next(b for b in _blocks() if b.num_qubits > 1)
    pool = exact_pool(block)
    pool.candidates.clear()
    with pytest.raises(ValidationError, match="no candidates"):
        validate_pool(pool)


# ----------------------------------------------------------------------
# Fault schedule parsing
# ----------------------------------------------------------------------
def test_parse_fault_spec_full_syntax():
    injector = parse_fault_spec("raise@0, hang@2:1, nan@*", seed=7)
    assert injector.seed == 7
    assert injector.specs == (
        FaultSpec("raise", 0, 0),
        FaultSpec("hang", 2, 1),
        FaultSpec("nan", None, 0),
    )


def test_parse_fault_spec_bare_kind_matches_everywhere():
    injector = parse_fault_spec("raise")
    assert injector.specs == (FaultSpec("raise", None, 0),)
    assert injector.specs[0].matches(0) and injector.specs[0].matches(17)
    assert not injector.specs[0].matches(0, attempt=1)


@pytest.mark.parametrize("bad", ["explode@1", "", " , "])
def test_parse_fault_spec_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_fault_spec(bad)


def test_fault_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("explode")


def test_raise_fault_fires_only_at_its_coordinates():
    injector = FaultInjector(specs=(FaultSpec("raise", 2, 1),))
    injector.on_synthesis_start(2, 0)  # wrong attempt: no fire
    injector.on_synthesis_start(1, 1)  # wrong block: no fire
    with pytest.raises(InjectedFault):
        injector.on_synthesis_start(2, 1)
    assert injector.fired == [("raise", 2, 1)]


def test_hang_fault_honours_the_cooperative_deadline():
    injector = FaultInjector(specs=(FaultSpec("hang", 0, 0),), hang_seconds=30.0)
    start = time.monotonic()
    with block_deadline(0.2):
        with pytest.raises(BlockTimeoutError):
            injector.on_synthesis_start(0, 0)
    assert time.monotonic() - start < 5.0  # interrupted, not slept out


# ----------------------------------------------------------------------
# Matrix leg: hang -> cooperative timeout on the inline path
# ----------------------------------------------------------------------
def test_inline_hang_times_out_and_recovers_bit_identically():
    """Satellite (c): the inline path enforces the block time budget.

    A hang on attempt 0 is cut off by the cooperative deadline (no
    worker process to abandon), logged as a timeout, and the same-seed
    retry recovers bit-identically.
    """
    blocks = _blocks()
    seeds = _seeds(blocks)
    clean_pools, _ = BlockSynthesisExecutor(workers=1).run(blocks, CONFIG, seeds)

    injector = FaultInjector(
        specs=(FaultSpec("hang", None, 0),), hang_seconds=60.0
    )
    runner = BlockSynthesisExecutor(
        workers=1,
        hard_timeout=0.5,
        retry_policy=RetryPolicy(max_attempts=2),
        fault_injector=injector,
    )
    start = time.monotonic()
    pools, stats = runner.run(blocks, CONFIG, seeds)
    # Cut off cooperatively: nowhere near the 60s the hang would take.
    assert time.monotonic() - start < 30.0
    assert not stats.fallback_blocks
    assert stats.retries > 0
    assert stats.failure_log
    assert all(r.kind == FAILURE_TIMEOUT for r in stats.failure_log)
    _pools_equal(clean_pools, pools)


@pytest.mark.slow
def test_pool_hang_hits_the_hard_timeout_and_recovers():
    """The process-pool path bounds a hung worker via the future timeout."""
    blocks = _blocks()
    seeds = _seeds(blocks)
    clean_pools, _ = BlockSynthesisExecutor(workers=2).run(blocks, CONFIG, seeds)

    injector = FaultInjector(
        specs=(FaultSpec("hang", None, 0),), hang_seconds=45.0
    )
    runner = BlockSynthesisExecutor(
        workers=2,
        hard_timeout=3.0,
        retry_policy=RetryPolicy(max_attempts=2),
        fault_injector=injector,
    )
    pools, stats = runner.run(blocks, CONFIG, seeds)
    assert not stats.fallback_blocks
    assert stats.retries > 0
    assert all(r.kind == FAILURE_TIMEOUT for r in stats.failure_log)
    _pools_equal(clean_pools, pools)


# ----------------------------------------------------------------------
# Matrix leg: corrupt disk-cache entry
# ----------------------------------------------------------------------
def test_flipped_cache_entry_is_quarantined_and_recomputed(tmp_path):
    blocks = _blocks()
    seeds = _seeds(blocks)
    clean_pools, _ = BlockSynthesisExecutor(
        cache=PoolCache(tmp_path / "clean")
    ).run(blocks, CONFIG, seeds)

    cache_dir = tmp_path / "cache"
    # Run 1 populates the disk tier; the injector bit-flips the first
    # entry written, after its atomic publish (at-rest corruption).
    injector = FaultInjector(specs=(FaultSpec("flip-cache", 0),), seed=5)
    BlockSynthesisExecutor(
        cache=PoolCache(cache_dir, fault_injector=injector)
    ).run(blocks, CONFIG, seeds)
    assert injector.fired == [("flip-cache", 0, 0)]

    # Run 2 reads the poisoned tier: the checksum catches the flip, the
    # entry is counted corrupt and recomputed, results stay identical.
    cache = PoolCache(cache_dir)
    pools, stats = BlockSynthesisExecutor(cache=cache).run(blocks, CONFIG, seeds)
    assert cache.corrupt_entries == 1
    assert stats.cache_corrupt_entries == 1
    assert not stats.fallback_blocks
    _pools_equal(clean_pools, pools)

    # Run 3: the recompute overwrote the bad file, so the tier is clean.
    cache = PoolCache(cache_dir)
    pools, stats = BlockSynthesisExecutor(cache=cache).run(blocks, CONFIG, seeds)
    assert cache.corrupt_entries == 0
    assert stats.cache_misses == 0
    _pools_equal(clean_pools, pools)


# ----------------------------------------------------------------------
# Matrix leg: torn checkpoint write
# ----------------------------------------------------------------------
def test_torn_checkpoint_is_quarantined_on_resume(tmp_path):
    circuit = tfim(4, steps=1)
    config = QuestConfig(seed=5, **FAST)
    clean = run_quest(circuit, config)

    # Tear every journal entry as it is written (crash mid-checkpoint).
    injector = FaultInjector(specs=(FaultSpec("torn-checkpoint", None),), seed=9)
    run_quest(
        circuit,
        config,
        checkpoint_dir=tmp_path / "ckpt",
        fault_injector=injector,
    )
    assert any(kind == "torn-checkpoint" for kind, _, _ in injector.fired)

    # Resume: torn entries fail their checksum, are quarantined, and the
    # blocks resynthesize under the journaled seed stream — identical.
    resumed = run_quest(circuit, config, checkpoint_dir=tmp_path / "ckpt")
    assert resumed.checkpoint_corrupt_entries > 0
    assert resumed.checkpoint_hits == 0
    assert clean.selection.bounds == resumed.selection.bounds
    for ca, cb in zip(clean.circuits, resumed.circuits):
        assert ca.cnot_count() == cb.cnot_count()
        assert np.array_equal(ca.unitary(), cb.unitary())
    # The re-journaled entries are whole: a second resume skips synthesis.
    again = run_quest(circuit, config, checkpoint_dir=tmp_path / "ckpt")
    assert again.checkpoint_corrupt_entries == 0
    assert again.checkpoint_hits > 0
    assert again.cache_misses == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_inject_faults_flag(tmp_path, capsys):
    from repro.circuits import circuit_to_qasm
    from repro.cli import main

    qasm_path = tmp_path / "tfim.qasm"
    qasm_path.write_text(circuit_to_qasm(tfim(3, steps=1)))
    code = main(
        [
            str(qasm_path),
            "--out-dir", str(tmp_path / "out"),
            "--threshold", "0.3",
            "--max-samples", "2",
            "--block-qubits", "2",
            "--time-budget", "10",
            "--seed", "1",
            "--inject-faults", "raise@*:0",
            "--fault-seed", "3",
        ]
    )
    assert code == 0  # the default retry policy absorbs the fault
    captured = capsys.readouterr()
    assert "CNOTs" in captured.out
    assert "[exception]" in captured.err  # failure log reaches stderr


def test_cli_rejects_a_bad_fault_spec(tmp_path, capsys):
    from repro.circuits import circuit_to_qasm
    from repro.cli import main

    qasm_path = tmp_path / "tfim.qasm"
    qasm_path.write_text(circuit_to_qasm(tfim(3, steps=1)))
    code = main([str(qasm_path), "--inject-faults", "explode@1"])
    assert code == 2
    assert "unknown fault kind" in capsys.readouterr().err


def test_cli_resume_requires_checkpoint_dir(tmp_path, capsys):
    from repro.circuits import circuit_to_qasm
    from repro.cli import main

    qasm_path = tmp_path / "tfim.qasm"
    qasm_path.write_text(circuit_to_qasm(tfim(3, steps=1)))
    code = main([str(qasm_path), "--resume"])
    assert code == 2
    assert "--resume requires --checkpoint-dir" in capsys.readouterr().err
