"""Parameterized circuit templates (ansatze) for numerical synthesis.

A LEAP/QSearch-style template is a sequence of *slots*: fixed entangling
gates (CNOTs at chosen placements) interleaved with one-parameter Pauli
rotations.  The template knows how to

* build a concrete :class:`~repro.circuits.Circuit` from a parameter
  vector, and
* evaluate its unitary together with the analytic gradient with respect
  to every rotation angle (``dR/dtheta = -i/2 * P * R`` for a Pauli
  rotation ``R = exp(-i theta P / 2)``).

The gradient evaluation uses cached prefix products and a single backward
sweep, so one call costs ``O(K)`` small matrix products for ``K`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import gate_matrix
from repro.exceptions import SynthesisError
from repro.linalg.embed import apply_gate_to_matrix, embed_unitary

_PAULI = {
    "rx": np.array([[0, 1], [1, 0]], dtype=complex),
    "ry": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "rz": np.array([[1, 0], [0, -1]], dtype=complex),
}

_ROTATION_BUILDERS = {
    "rx": lambda t: gate_matrix("rx", (t,)),
    "ry": lambda t: gate_matrix("ry", (t,)),
    "rz": lambda t: gate_matrix("rz", (t,)),
}

#: Default rotation pattern applied to each qubit a CNOT touches: the
#: paper's "two rotation gates on both the qubits" (Sec. 3.5).  Combined
#: with the full ZYZ initial layer this is universal in practice and a
#: third cheaper per layer than a ZYZ triple.
DEFAULT_LAYER_ROTATIONS: tuple[str, ...] = ("ry", "rz")


@dataclass(frozen=True)
class Slot:
    """One position in the template.

    ``param_index`` is ``None`` for fixed gates; rotations own exactly one
    parameter.
    """

    name: str
    qubits: tuple[int, ...]
    param_index: int | None


class Ansatz:
    """A fixed-structure parameterized circuit over ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, slots: list[Slot]) -> None:
        self.num_qubits = int(num_qubits)
        self.slots = list(slots)
        indices = [s.param_index for s in slots if s.param_index is not None]
        if sorted(indices) != list(range(len(indices))):
            raise SynthesisError("parameter indices must be 0..P-1 in some order")
        self.num_params = len(indices)
        self._dim = 2**self.num_qubits
        # Fixed-slot embeddings never change; cache them once.  Rotation
        # slots get their embedded derivative generator ``-i/2 * P``
        # cached too: the derivative of an embedded rotation is then one
        # small matmul (generator_embed @ rotation_embed) per optimizer
        # step instead of a fresh gate build + Kronecker embedding.
        self._fixed_embeds: dict[int, np.ndarray] = {}
        self._generator_embeds: dict[int, np.ndarray] = {}
        for position, slot in enumerate(self.slots):
            if slot.param_index is None:
                self._fixed_embeds[position] = embed_unitary(
                    gate_matrix(slot.name), slot.qubits, self.num_qubits
                )
            else:
                self._generator_embeds[position] = embed_unitary(
                    -0.5j * _PAULI[slot.name], slot.qubits, self.num_qubits
                )

    # ------------------------------------------------------------------
    @property
    def cnot_count(self) -> int:
        """Number of fixed CNOT slots in the template."""
        return sum(1 for s in self.slots if s.name == "cx")

    def build_circuit(self, params: np.ndarray) -> Circuit:
        """Materialize the template with bound angles."""
        if len(params) != self.num_params:
            raise SynthesisError(
                f"expected {self.num_params} parameters, got {len(params)}"
            )
        circuit = Circuit(self.num_qubits)
        for slot in self.slots:
            if slot.param_index is None:
                circuit.add_gate(slot.name, slot.qubits)
            else:
                circuit.add_gate(
                    slot.name, slot.qubits, (float(params[slot.param_index]),)
                )
        return circuit

    def unitary(self, params: np.ndarray) -> np.ndarray:
        """Evaluate only the unitary (no gradients)."""
        unitary = np.eye(self._dim, dtype=complex)
        for position, slot in enumerate(self.slots):
            gate = self._slot_matrix(position, slot, params)
            unitary = apply_gate_to_matrix(
                unitary, gate, slot.qubits, self.num_qubits
            )
        return unitary

    def _slot_embeds(self, params: np.ndarray) -> list[np.ndarray]:
        """Embedded slot unitaries for a parameter vector."""
        embeds: list[np.ndarray] = []
        for position, slot in enumerate(self.slots):
            if slot.param_index is None:
                embeds.append(self._fixed_embeds[position])
            else:
                gate = _ROTATION_BUILDERS[slot.name](float(params[slot.param_index]))
                embeds.append(embed_unitary(gate, slot.qubits, self.num_qubits))
        return embeds

    def unitary_and_gradient(
        self, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``U(params)`` and ``dU/dtheta`` for every parameter.

        The gradient is an array of shape ``(num_params, dim, dim)``.
        The instantiation hot loop does not use this — it calls
        :meth:`trace_and_gradient`, which never materializes the full
        gradient tensor; this remains the general-purpose entry point.
        """
        dim = self._dim
        embeds = self._slot_embeds(params)
        # Prefix products: prefixes[k] = E_k ... E_1 (prefixes[0] = I).
        prefixes = [np.eye(dim, dtype=complex)]
        for embed in embeds:
            prefixes.append(embed @ prefixes[-1])
        unitary = prefixes[-1]
        gradient = np.zeros((self.num_params, dim, dim), dtype=complex)
        suffix = np.eye(dim, dtype=complex)
        for position in range(len(self.slots) - 1, -1, -1):
            slot = self.slots[position]
            if slot.param_index is not None:
                derivative_embed = (
                    self._generator_embeds[position] @ embeds[position]
                )
                gradient[slot.param_index] = (
                    suffix @ derivative_embed @ prefixes[position]
                )
            suffix = suffix @ embeds[position]
        return unitary, gradient

    def trace_and_gradient(
        self, params: np.ndarray, target_conj: np.ndarray
    ) -> tuple[complex, np.ndarray]:
        """Return ``Tr(V^dag U)`` and its derivative for every parameter.

        ``target_conj`` is the elementwise conjugate of the target ``V``
        (so the trace is ``sum(target_conj * U)``).  Each derivative
        ``Tr(V^dag * S_p D_p P_p)`` is contracted against the target
        *inside* the backward sweep, so no ``(num_params, dim, dim)``
        gradient tensor is ever allocated — this is the L-BFGS hot path
        of :func:`repro.synthesis.instantiate.instantiate`.  The product
        chain and contraction order match :meth:`unitary_and_gradient`
        exactly, so the optimizer sees bit-identical values.
        """
        dim = self._dim
        embeds = self._slot_embeds(params)
        prefixes = [np.eye(dim, dtype=complex)]
        for embed in embeds:
            prefixes.append(embed @ prefixes[-1])
        trace = complex(np.add.reduce(target_conj * prefixes[-1], axis=None))
        dtraces = np.zeros(self.num_params, dtype=complex)
        suffix = np.eye(dim, dtype=complex)
        for position in range(len(self.slots) - 1, -1, -1):
            slot = self.slots[position]
            if slot.param_index is not None:
                derivative_embed = (
                    self._generator_embeds[position] @ embeds[position]
                )
                dtraces[slot.param_index] = np.add.reduce(
                    target_conj * (suffix @ derivative_embed @ prefixes[position]),
                    axis=None,
                )
            suffix = suffix @ embeds[position]
        return trace, dtraces

    def _slot_matrix(
        self, position: int, slot: Slot, params: np.ndarray
    ) -> np.ndarray:
        if slot.param_index is None:
            return gate_matrix(slot.name)
        return _ROTATION_BUILDERS[slot.name](float(params[slot.param_index]))


def build_leap_ansatz(
    num_qubits: int,
    placements: list[tuple[int, int]],
    layer_rotations: tuple[str, ...] = DEFAULT_LAYER_ROTATIONS,
) -> Ansatz:
    """Build the LEAP template for a given CNOT placement sequence.

    The template starts with a full ZYZ triple on every qubit, then for
    each placement ``(control, target)`` adds a CNOT followed by
    ``layer_rotations`` on both touched qubits (paper Fig. 5).
    """
    slots: list[Slot] = []
    index = 0
    for qubit in range(num_qubits):
        for name in ("rz", "ry", "rz"):
            slots.append(Slot(name, (qubit,), index))
            index += 1
    for control, target in placements:
        if control == target:
            raise SynthesisError(f"bad placement {(control, target)}")
        slots.append(Slot("cx", (control, target), None))
        for qubit in (control, target):
            for name in layer_rotations:
                slots.append(Slot(name, (qubit,), index))
                index += 1
    return Ansatz(num_qubits, slots)


def all_placements(
    num_qubits: int, coupling: list[tuple[int, int]] | None = None
) -> list[tuple[int, int]]:
    """Enumerate candidate CNOT placements.

    With no coupling constraint, all ordered qubit pairs are allowed; with
    a coupling list, both orientations of each allowed edge.
    """
    if coupling is None:
        return [
            (a, b)
            for a in range(num_qubits)
            for b in range(num_qubits)
            if a != b
        ]
    placements: list[tuple[int, int]] = []
    for a, b in coupling:
        placements.append((a, b))
        placements.append((b, a))
    return sorted(set(placements))
