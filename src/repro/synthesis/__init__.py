"""Numerical circuit synthesis: templates, instantiation, LEAP, 2q decomposition."""

from repro.synthesis.ansatz import (
    DEFAULT_LAYER_ROTATIONS,
    Ansatz,
    Slot,
    all_placements,
    build_leap_ansatz,
)
from repro.synthesis.instantiate import InstantiationResult, instantiate
from repro.synthesis.leap import (
    LeapConfig,
    SynthesisReport,
    SynthesisSolution,
    synthesize,
)
from repro.synthesis.two_qubit import decompose_two_qubit

__all__ = [
    "Ansatz",
    "Slot",
    "build_leap_ansatz",
    "all_placements",
    "DEFAULT_LAYER_ROTATIONS",
    "instantiate",
    "InstantiationResult",
    "synthesize",
    "LeapConfig",
    "SynthesisReport",
    "SynthesisSolution",
    "decompose_two_qubit",
]
