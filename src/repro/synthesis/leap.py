"""LEAP-style bottom-up synthesis with multi-solution collection.

The compiler grows a circuit template one CNOT layer at a time (paper
Fig. 5).  At each depth it tries every allowed CNOT placement, numerically
instantiates the resulting template, and keeps the best branch to extend
(LEAP's tree reconstruction).  QUEST's modification (paper Sec. 3.5) is to
*collect* the best ``M`` instantiated circuits per layer — across all
CNOT counts up to the original circuit's count — instead of returning only
the single exact solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SynthesisError
from repro.linalg.su2 import zyz_decompose
from repro.observability import get_metrics, get_tracer
from repro.resilience.deadline import check_deadline
from repro.synthesis.ansatz import (
    DEFAULT_LAYER_ROTATIONS,
    all_placements,
    build_leap_ansatz,
)
from repro.synthesis.instantiate import instantiate, instantiate_multi


@dataclass(frozen=True)
class SynthesisSolution:
    """One synthesized circuit for a target unitary.

    Attributes
    ----------
    circuit:
        The concrete circuit (over block-local qubit indices).
    distance:
        HS process distance to the target.
    cnot_count:
        CNOTs in the circuit (equals the template's layer count).
    """

    circuit: Circuit
    distance: float
    cnot_count: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SynthesisSolution(cnots={self.cnot_count}, "
            f"distance={self.distance:.3e})"
        )


@dataclass
class LeapConfig:
    """Tuning knobs for the LEAP synthesis loop.

    ``solutions_per_layer`` is QUEST's ``M``: how many of the per-layer
    instantiations to keep in the returned pool.
    """

    max_layers: int = 14
    success_threshold: float = 1e-8
    solutions_per_layer: int = 3
    instantiation_starts: int = 3
    max_optimizer_iterations: int = 400
    layer_rotations: tuple[str, ...] = DEFAULT_LAYER_ROTATIONS
    coupling: list[tuple[int, int]] | None = None
    stop_when_exact: bool = False
    seed: int | None = None
    #: Wall-clock budget in seconds; the layer loop exits once exceeded.
    time_budget: float | None = None
    #: Approximate-synthesis threshold (HS distance): secondary starts
    #: stop optimizing once below it, scattering solutions over the
    #: epsilon-sphere (the dissimilar approximations of paper Fig. 6).
    target_distance: float | None = None

    @property
    def target_cost(self) -> float | None:
        """The HS cost equivalent of ``target_distance``."""
        if self.target_distance is None:
            return None
        d = min(max(self.target_distance, 0.0), 1.0)
        return 1.0 - float(np.sqrt(max(0.0, 1.0 - d * d)))

    def fingerprint(self) -> str:
        """Stable digest input of every behaviour-affecting knob but the seed.

        Two configs with equal fingerprints explore identical search
        spaces, so their results are interchangeable *given the same
        seed*; the content-addressed pool cache therefore keys on this
        fingerprint and mixes the seed in separately (see
        :mod:`repro.parallel.cache`).
        """
        coupling = (
            None
            if self.coupling is None
            else tuple(sorted((int(a), int(b)) for a, b in self.coupling))
        )
        fields = (
            ("max_layers", int(self.max_layers)),
            ("success_threshold", float(self.success_threshold)),
            ("solutions_per_layer", int(self.solutions_per_layer)),
            ("instantiation_starts", int(self.instantiation_starts)),
            ("max_optimizer_iterations", int(self.max_optimizer_iterations)),
            ("layer_rotations", tuple(self.layer_rotations)),
            ("coupling", coupling),
            ("stop_when_exact", bool(self.stop_when_exact)),
            ("time_budget", self.time_budget),
            ("target_distance", self.target_distance),
        )
        return repr(fields)


@dataclass
class SynthesisReport:
    """Full output of a synthesis run: the solution pool plus telemetry."""

    solutions: list[SynthesisSolution] = field(default_factory=list)
    best: SynthesisSolution | None = None
    layers_explored: int = 0
    instantiations: int = 0
    elapsed_seconds: float = 0.0


def _one_qubit_solution(target: np.ndarray) -> SynthesisSolution:
    theta, phi, lam, _ = zyz_decompose(target)
    circuit = Circuit(1)
    circuit.rz(lam, 0)
    circuit.ry(theta, 0)
    circuit.rz(phi, 0)
    return SynthesisSolution(circuit=circuit, distance=0.0, cnot_count=0)


def synthesize(
    target: np.ndarray, config: LeapConfig | None = None
) -> SynthesisReport:
    """Synthesize circuits for ``target``, collecting an approximation pool.

    Returns a :class:`SynthesisReport` whose ``solutions`` list holds, for
    every explored CNOT count, up to ``solutions_per_layer`` circuits
    sorted by (cnot_count, distance).  ``best`` is the lowest-distance
    entry overall.
    """
    config = config or LeapConfig()
    dim = target.shape[0]
    num_qubits = int(np.log2(dim))
    if 2**num_qubits != dim:
        raise SynthesisError(f"target dimension {dim} is not a power of two")
    tracer = get_tracer()
    metrics = get_metrics()
    # The time budget is measured on the same monotonic clock the
    # cooperative deadline (repro.resilience.deadline) enforces, so the
    # two bounds can never drift apart the way a perf_counter/monotonic
    # mix could.
    start_time = time.monotonic()
    report = SynthesisReport()
    if num_qubits == 1:
        solution = _one_qubit_solution(target)
        report.solutions = [solution]
        report.best = solution
        report.elapsed_seconds = time.monotonic() - start_time
        return report

    rng = np.random.default_rng(config.seed)
    # CNOT direction is absorbable into the surrounding rotations, so only
    # one orientation per pair needs to be explored.
    placements = sorted(
        {tuple(sorted(p)) for p in all_placements(num_qubits, config.coupling)}
    )
    if not placements:
        raise SynthesisError("no CNOT placements available")

    pool: list[SynthesisSolution] = []
    # Depth 0: rotations only.
    ansatz0 = build_leap_ansatz(num_qubits, [], config.layer_rotations)
    result0 = instantiate(
        ansatz0,
        target,
        rng=rng,
        starts=config.instantiation_starts,
        maxiter=config.max_optimizer_iterations,
    )
    report.instantiations += 1
    pool.append(
        SynthesisSolution(
            circuit=ansatz0.build_circuit(result0.params),
            distance=result0.distance,
            cnot_count=0,
        )
    )

    best_structure: list[tuple[int, int]] = []
    best_params = result0.params
    best_distance = result0.distance
    for layer in range(1, config.max_layers + 1):
        layer_entries: list[
            tuple[float, SynthesisSolution, np.ndarray, tuple[int, int]]
        ] = []
        for placement in placements:
            # Cooperative hard deadline (inline executor path): unlike
            # ``time_budget`` below — which exits gracefully with the
            # pool collected so far — an expired deadline aborts the
            # block so the executor can retry or fall back.
            check_deadline()
            structure = best_structure + [placement]
            ansatz = build_leap_ansatz(
                num_qubits, structure, config.layer_rotations
            )
            # LEAP re-seeding: previous optimum extended with small random
            # angles for the new layer's rotations.
            new_param_count = ansatz.num_params - len(best_params)
            warm = np.concatenate(
                [best_params, rng.uniform(-0.1, 0.1, size=new_param_count)]
            )
            fits = instantiate_multi(
                ansatz,
                target,
                rng=rng,
                starts=config.instantiation_starts,
                maxiter=config.max_optimizer_iterations,
                initial_params=warm,
                stop_at_cost=config.target_cost,
            )
            report.instantiations += 1
            # Every start's local optimum becomes a candidate: distinct
            # minima at the same CNOT count are naturally dissimilar,
            # which feeds QUEST's selection (the paper's "multiple seeds").
            for fit in fits:
                solution = SynthesisSolution(
                    circuit=ansatz.build_circuit(fit.params),
                    distance=fit.distance,
                    cnot_count=layer,
                )
                layer_entries.append(
                    (fit.distance, solution, fit.params, placement)
                )
        layer_entries.sort(key=lambda entry: entry[0])
        pool.extend(
            entry[1] for entry in layer_entries[: config.solutions_per_layer]
        )
        best_distance, _, best_params, best_placement = layer_entries[0]
        best_structure = best_structure + [best_placement]
        report.layers_explored = layer
        if tracer.is_enabled:
            tracer.event(
                "leap.layer",
                layer=layer,
                best_distance=float(best_distance),
                instantiations=report.instantiations,
                pool_size=len(pool),
            )
        if metrics.is_enabled:
            metrics.inc("leap.layers")
        if best_distance <= config.success_threshold and config.stop_when_exact:
            break
        if (
            config.time_budget is not None
            and time.monotonic() - start_time > config.time_budget
        ):
            if tracer.is_enabled:
                tracer.event(
                    "leap.budget_exhausted",
                    layer=layer,
                    elapsed=time.monotonic() - start_time,
                    budget=config.time_budget,
                )
            if metrics.is_enabled:
                metrics.inc("leap.budget_exhausted")
            break
    pool.sort(key=lambda s: (s.cnot_count, s.distance))
    report.solutions = pool
    report.best = min(pool, key=lambda s: s.distance)
    report.elapsed_seconds = time.monotonic() - start_time
    if metrics.is_enabled:
        metrics.inc("leap.instantiations", report.instantiations)
        metrics.inc("leap.synthesis_runs")
    return report
