"""Exact two-qubit decomposition into at most three CNOTs.

Used by the transpiler's consolidation pass: any 4x4 unitary is re-emitted
as the cheapest template (0-3 CNOTs with ZYZ rotations) that reproduces it
to tolerance.  The starting CNOT count is predicted from local invariants
(:func:`repro.linalg.weyl.estimated_cnot_class`); template fitting falls
back to one more CNOT if the prediction was optimistic, so the result is
always correct and is minimal whenever the classifier is right.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SynthesisError
from repro.linalg.su2 import zyz_decompose
from repro.linalg.weyl import decompose_tensor_product, estimated_cnot_class
from repro.synthesis.ansatz import build_leap_ansatz
from repro.synthesis.instantiate import instantiate

#: Alternating CNOT directions, the Vatan-Williams pattern.
_TEMPLATE_PLACEMENTS = [(0, 1), (1, 0), (0, 1)]


def _one_qubit_ops(circuit: Circuit, qubit: int, matrix: np.ndarray) -> None:
    theta, phi, lam, _ = zyz_decompose(matrix)
    circuit.rz(lam, qubit)
    circuit.ry(theta, qubit)
    circuit.rz(phi, qubit)


def decompose_two_qubit(
    target: np.ndarray,
    tolerance: float = 1e-6,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """Return a circuit on 2 qubits equal to ``target`` up to global phase.

    The circuit uses at most 3 CNOTs plus RZ/RY rotations.  Raises
    :class:`SynthesisError` if no template reaches ``tolerance`` (which
    would indicate a non-unitary input).
    """
    if target.shape != (4, 4):
        raise SynthesisError("decompose_two_qubit expects a 4x4 matrix")
    rng = np.random.default_rng(rng)
    start_class = estimated_cnot_class(target)
    if start_class == 0:
        a, b, _ = decompose_tensor_product(target)
        circuit = Circuit(2)
        _one_qubit_ops(circuit, 0, a)
        _one_qubit_ops(circuit, 1, b)
        return circuit
    for cnots in range(start_class, 4):
        ansatz = build_leap_ansatz(2, _TEMPLATE_PLACEMENTS[:cnots])
        result = instantiate(
            ansatz,
            target,
            rng=rng,
            starts=6,
            maxiter=1000,
            success_cost=max(1e-14, tolerance * tolerance / 2.0),
        )
        if result.distance <= tolerance:
            return ansatz.build_circuit(result.params)
    raise SynthesisError(
        "no 3-CNOT template matched the target; input may not be unitary"
    )
