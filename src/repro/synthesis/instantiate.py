"""Numerical instantiation: fit a template's angles to a target unitary.

Minimizes the phase-invariant Hilbert-Schmidt cost

    f(theta) = 1 - |Tr(V^dag U(theta))| / N

with L-BFGS-B and the analytic gradient from
:meth:`repro.synthesis.ansatz.Ansatz.unitary_and_gradient`.  A small
multistart loop (warm start plus fresh random restarts) guards against
local minima, mirroring how LEAP re-seeds its optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from repro.exceptions import SynthesisError
from repro.observability import get_metrics
from repro.resilience.deadline import check_deadline
from repro.synthesis.ansatz import Ansatz


@dataclass(frozen=True)
class InstantiationResult:
    """Best parameters found for one template against one target."""

    params: np.ndarray
    cost: float

    @property
    def distance(self) -> float:
        """HS process distance implied by the cost: sqrt(1 - (1-f)^2)."""
        overlap = 1.0 - self.cost
        return float(np.sqrt(max(0.0, 1.0 - overlap * overlap)))


def _cost_and_gradient(
    params: np.ndarray, ansatz: Ansatz, target_conj: np.ndarray, dim: int
) -> tuple[float, np.ndarray]:
    # Tr(V^dag U) == sum(conj(V) * U) elementwise.  The trace-only path
    # contracts each per-parameter derivative against the target inside
    # the ansatz's prefix/suffix sweep, so the L-BFGS hot loop never
    # materializes the (num_params, dim, dim) gradient tensor.
    trace, dtraces = ansatz.trace_and_gradient(params, target_conj)
    magnitude = abs(trace)
    cost = 1.0 - magnitude / dim
    if magnitude < 1e-14:
        # The phase direction is undefined at |t| = 0; a zero gradient lets
        # the optimizer escape via its own line-search perturbations.
        return cost, np.zeros(ansatz.num_params)
    phase = np.conj(trace) / magnitude
    grad = -np.real(phase * dtraces) / dim
    return cost, grad


def instantiate_multi(
    ansatz: Ansatz,
    target: np.ndarray,
    rng: np.random.Generator | int | None = None,
    starts: int = 3,
    maxiter: int = 400,
    initial_params: np.ndarray | None = None,
    success_cost: float = 1e-12,
    stop_at_cost: float | None = None,
) -> list[InstantiationResult]:
    """Fit ``ansatz`` to ``target``, returning one result per start.

    ``initial_params`` (if given) is used as the first, warm start —
    LEAP's prefix re-seeding passes the previous layer's optimum extended
    with small random angles for the new slots.  Remaining starts are
    random in ``[-pi, pi)``; distinct starts often converge to distinct
    local minima, which QUEST exploits as dissimilar approximations of
    the same CNOT count.  The loop exits early once ``success_cost`` is
    reached.  Results are sorted best-first.

    ``stop_at_cost`` implements approximate synthesis's threshold
    stopping (paper Sec. 3.5): each start halts as soon as its cost drops
    below the target, so different starts land at *different points on
    the epsilon-sphere* around the target unitary — the source of the
    mathematically dissimilar approximations QUEST averages over
    (Fig. 6).  The first start always optimizes fully so the pool also
    contains the best achievable solution at this CNOT count.
    """
    dim = target.shape[0]
    if target.shape != (dim, dim) or dim != 2**ansatz.num_qubits:
        raise SynthesisError(
            f"target shape {target.shape} does not match a "
            f"{ansatz.num_qubits}-qubit ansatz"
        )
    if starts < 1:
        raise SynthesisError("need at least one optimization start")
    rng = np.random.default_rng(rng)
    target_conj = target.conj()

    results: list[InstantiationResult] = []
    for start in range(starts):
        # Per-start granularity of the cooperative block deadline: a
        # deadline overshoots by at most one L-BFGS run, which the
        # executor's hard-timeout grace already budgets for.
        check_deadline()
        if start == 0 and initial_params is not None:
            x0 = np.asarray(initial_params, dtype=float)
            if len(x0) != ansatz.num_params:
                raise SynthesisError(
                    f"initial_params has {len(x0)} entries, template needs "
                    f"{ansatz.num_params}"
                )
        else:
            x0 = rng.uniform(-np.pi, np.pi, size=ansatz.num_params)
        callback = None
        if stop_at_cost is not None and start > 0:

            def callback(intermediate_result):
                if intermediate_result.fun < stop_at_cost:
                    raise StopIteration

        fit = minimize(
            _cost_and_gradient,
            x0,
            args=(ansatz, target_conj, dim),
            jac=True,
            method="L-BFGS-B",
            callback=callback,
            options={"maxiter": maxiter, "ftol": 1e-15, "gtol": 1e-12},
        )
        results.append(
            InstantiationResult(
                params=np.asarray(fit.x, dtype=float),
                cost=max(0.0, float(fit.fun)),
            )
        )
        if stop_at_cost is None and results[-1].cost <= success_cost:
            break
    results.sort(key=lambda r: r.cost)
    # Metrics only — this is the pipeline's innermost loop, and per-start
    # trace events would dwarf everything else in the stream.
    metrics = get_metrics()
    if metrics.is_enabled:
        metrics.inc("instantiate.starts", len(results))
        metrics.observe("instantiate.best_cost", results[0].cost)
    return results


def instantiate(
    ansatz: Ansatz,
    target: np.ndarray,
    rng: np.random.Generator | int | None = None,
    starts: int = 3,
    maxiter: int = 400,
    initial_params: np.ndarray | None = None,
    success_cost: float = 1e-12,
) -> InstantiationResult:
    """Fit ``ansatz`` to ``target``, returning the best of several starts."""
    return instantiate_multi(
        ansatz,
        target,
        rng=rng,
        starts=starts,
        maxiter=maxiter,
        initial_params=initial_params,
        success_cost=success_cost,
    )[0]
