"""Noise substrate: Pauli models, fake backends, noisy simulators."""

from repro.noise.backends import (
    Backend,
    all_to_all_coupling,
    fake_manila,
    ideal_backend,
    linear_backend,
    linear_coupling,
)
from repro.noise.density import MAX_DENSITY_QUBITS, run_density
from repro.noise.model import (
    ONE_QUBIT_PAULIS,
    TWO_QUBIT_PAULIS,
    NoiseModel,
    apply_readout_error,
    pauli_matrix,
    readout_confusion,
)
from repro.noise.trajectories import run_trajectories


def noisy_distribution(circuit, noise, trajectories=1000, rng=None, batched=True):
    """Noisy output distribution via the best available engine.

    Uses the exact density-matrix simulator up to its qubit cap and falls
    back to Monte-Carlo Pauli trajectories beyond it (batched by default;
    ``batched=False`` selects the scalar reference engine).
    """
    if circuit.num_qubits <= MAX_DENSITY_QUBITS:
        return run_density(circuit, noise)
    return run_trajectories(
        circuit, noise, trajectories=trajectories, rng=rng, batched=batched
    )


__all__ = [
    "NoiseModel",
    "pauli_matrix",
    "readout_confusion",
    "apply_readout_error",
    "ONE_QUBIT_PAULIS",
    "TWO_QUBIT_PAULIS",
    "run_density",
    "run_trajectories",
    "noisy_distribution",
    "MAX_DENSITY_QUBITS",
    "Backend",
    "fake_manila",
    "linear_backend",
    "ideal_backend",
    "linear_coupling",
    "all_to_all_coupling",
]
