"""Noise substrate: Pauli models, fake backends, noisy simulators.

Three noisy-evaluation engines share one channel structure:

* ``density`` — exact density matrix, practical to ~9 qubits;
* ``ptm`` — exact superoperator (Pauli-transfer-matrix) contraction,
  batched over the ensemble axis and routed through the
  :mod:`repro.linalg.array_api` backend shim (numpy/cupy/torch),
  practical to ~12 qubits and an order of magnitude faster than both
  alternatives at evaluation scale;
* ``trajectories`` — Monte-Carlo Pauli trajectories, for anything wider.
"""

from repro.exceptions import SimulationError
from repro.noise.backends import (
    Backend,
    all_to_all_coupling,
    fake_manila,
    ideal_backend,
    linear_backend,
    linear_coupling,
)
from repro.noise.density import MAX_DENSITY_QUBITS, run_density
from repro.noise.model import (
    ONE_QUBIT_PAULIS,
    TWO_QUBIT_PAULIS,
    NoiseModel,
    apply_readout_error,
    pauli_matrix,
    readout_confusion,
)
from repro.noise.ptm import (
    MAX_PTM_QUBITS,
    PtmCache,
    run_ptm,
    run_ptm_ensemble,
)
from repro.noise.trajectories import run_trajectories

#: Engine names accepted by :func:`noisy_distribution` and
#: ``QuestConfig.noise_engine``.  ``auto`` preserves the historical
#: dispatch (density below its cap, trajectories above), so existing
#: results stay bit-identical unless an engine is chosen explicitly.
NOISE_ENGINES: tuple[str, ...] = ("auto", "ptm", "density", "trajectories")


def noisy_distribution(
    circuit,
    noise,
    trajectories=1000,
    rng=None,
    batched=True,
    engine="auto",
    array_backend=None,
):
    """Noisy output distribution via the selected engine.

    ``engine`` is one of :data:`NOISE_ENGINES`.  ``auto`` uses the exact
    density-matrix simulator up to its qubit cap and falls back to
    Monte-Carlo Pauli trajectories beyond it (batched by default;
    ``batched=False`` selects the scalar reference engine).  ``ptm``
    runs the exact superoperator engine on the ``array_backend`` array
    library (default numpy / ``$REPRO_ARRAY_BACKEND``); ``trajectories``
    and ``density`` force those engines regardless of size.
    """
    if engine not in NOISE_ENGINES:
        raise SimulationError(
            f"unknown noise engine {engine!r}; choose from "
            f"{', '.join(NOISE_ENGINES)}"
        )
    if engine == "auto":
        engine = (
            "density"
            if circuit.num_qubits <= MAX_DENSITY_QUBITS
            else "trajectories"
        )
    if engine == "density":
        return run_density(circuit, noise)
    if engine == "ptm":
        return run_ptm(circuit, noise, backend=array_backend)
    return run_trajectories(
        circuit, noise, trajectories=trajectories, rng=rng, batched=batched
    )


__all__ = [
    "NoiseModel",
    "pauli_matrix",
    "readout_confusion",
    "apply_readout_error",
    "ONE_QUBIT_PAULIS",
    "TWO_QUBIT_PAULIS",
    "run_density",
    "run_trajectories",
    "run_ptm",
    "run_ptm_ensemble",
    "PtmCache",
    "noisy_distribution",
    "NOISE_ENGINES",
    "MAX_DENSITY_QUBITS",
    "MAX_PTM_QUBITS",
    "Backend",
    "fake_manila",
    "linear_backend",
    "ideal_backend",
    "linear_coupling",
    "all_to_all_coupling",
]
