"""Monte-Carlo Pauli-trajectory noisy simulation.

Scales past the density-matrix cap: each trajectory evolves a statevector
and stochastically injects a Pauli error after each gate with the model's
probability.  Averaging many trajectories converges to the density-matrix
result (a unit test checks this agreement on small circuits).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.linalg.embed import apply_gate_to_state
from repro.noise.model import (
    ONE_QUBIT_PAULIS,
    TWO_QUBIT_PAULIS,
    NoiseModel,
    apply_readout_error,
    pauli_matrix,
)
from repro.sim.statevector import probabilities, zero_state

_PAULI_CACHE = {label: pauli_matrix(label) for label in ONE_QUBIT_PAULIS}
_PAULI_CACHE.update({label: pauli_matrix(label) for label in TWO_QUBIT_PAULIS})


def _inject_error(
    state: np.ndarray,
    qubits: tuple[int, ...],
    num_qubits: int,
    rng: np.random.Generator,
    probability: float,
    labels: tuple[str, ...],
) -> np.ndarray:
    if probability <= 0.0 or rng.random() >= probability:
        return state
    label = labels[rng.integers(len(labels))]
    if len(label) == 2 and label[0] == "I":
        return apply_gate_to_state(
            state, _PAULI_CACHE[label[1]], (qubits[0],), num_qubits
        )
    if len(label) == 2 and label[1] == "I":
        return apply_gate_to_state(
            state, _PAULI_CACHE[label[0]], (qubits[1],), num_qubits
        )
    return apply_gate_to_state(state, _PAULI_CACHE[label], qubits, num_qubits)


def run_trajectories(
    circuit: Circuit,
    noise: NoiseModel,
    trajectories: int = 1000,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Estimate the noisy output distribution from Pauli trajectories.

    Each trajectory contributes its full analytic Born distribution (not a
    single shot), which sharply reduces the sampling variance for a given
    trajectory budget.
    """
    if trajectories < 1:
        raise SimulationError("need at least one trajectory")
    rng = np.random.default_rng(rng)
    num_qubits = circuit.num_qubits
    ops = [op for op in circuit.operations if op.name not in ("measure", "barrier")]
    accumulated = np.zeros(2**num_qubits)
    for _ in range(trajectories):
        state = zero_state(num_qubits)
        for op in ops:
            state = apply_gate_to_state(
                state, op.gate.matrix(), op.qubits, num_qubits
            )
            arity = len(op.qubits)
            if arity == 1:
                state = _inject_error(
                    state,
                    op.qubits,
                    num_qubits,
                    rng,
                    noise.one_qubit_error,
                    ONE_QUBIT_PAULIS,
                )
            elif arity == 2:
                state = _inject_error(
                    state,
                    op.qubits,
                    num_qubits,
                    rng,
                    noise.two_qubit_error,
                    TWO_QUBIT_PAULIS,
                )
            else:
                for i in range(arity - 1):
                    pair = (op.qubits[i], op.qubits[i + 1])
                    state = _inject_error(
                        state,
                        pair,
                        num_qubits,
                        rng,
                        noise.two_qubit_error,
                        TWO_QUBIT_PAULIS,
                    )
            if noise.idle_decoherence > 0.0:
                for qubit in range(num_qubits):
                    if qubit not in op.qubits:
                        state = _inject_error(
                            state,
                            (qubit,),
                            num_qubits,
                            rng,
                            noise.idle_decoherence,
                            ONE_QUBIT_PAULIS,
                        )
        accumulated += probabilities(state)
    probs = accumulated / trajectories
    return apply_readout_error(probs, num_qubits, noise.readout_error)
