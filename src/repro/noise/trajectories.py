"""Monte-Carlo Pauli-trajectory noisy simulation.

Scales past the density-matrix cap: each trajectory evolves a statevector
and stochastically injects a Pauli error after each gate with the model's
probability.  Averaging many trajectories converges to the density-matrix
result (a unit test checks this agreement on small circuits).

Two execution engines share one sampling step:

* **batched** (default): all ``T`` trajectories evolve as a single
  ``(T, 2^n)`` block.  Every gate is one
  :func:`~repro.linalg.embed.apply_gate_to_states` contraction, and each
  *distinct* sampled Pauli error is applied to its trajectory sub-batch,
  so the cost is ``ops x (#distinct errors + 1)`` batched contractions
  instead of the scalar engine's ``T x ops`` Python-level applications.
* **scalar**: the historical one-trajectory-at-a-time loop, kept for
  cross-checking and for memory-constrained runs.

Because the Pauli-error outcomes for every (error site, trajectory) pair
are pre-sampled *before* evolution — by the same routine, in the same RNG
order — the two engines produce identical results for a fixed seed (up
to floating-point associativity), which the unit tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationCapacityError, SimulationError
from repro.linalg.embed import apply_gate_to_state, apply_gate_to_states
from repro.noise.model import (
    ONE_QUBIT_PAULIS,
    TWO_QUBIT_PAULIS,
    NoiseModel,
    apply_readout_error,
    pauli_matrix,
)
from repro.sim.statevector import probabilities, zero_state

_PAULI_CACHE = {label: pauli_matrix(label) for label in ONE_QUBIT_PAULIS}
_PAULI_CACHE.update({label: pauli_matrix(label) for label in TWO_QUBIT_PAULIS})

#: Hard qubit ceiling for the trajectory sampler: one statevector is
#: ``2^n`` complexes (256 MiB at n=24); past this even a single
#: trajectory thrashes, so refuse with structure instead of hanging.
MAX_TRAJECTORY_QUBITS = 24

#: Max bytes the batched engine may stage as its ``(T, 2^n)`` block
#: before refusing; the scalar engine (one state at a time) or a lower
#: trajectory count still work beyond it.
MAX_BATCHED_STATE_BYTES = 4 * 2**30

_COMPLEX_BYTES = 16


def _check_capacity(num_qubits: int, trajectories: int, batched: bool) -> None:
    """Refuse sizes that would hang or OOM, naming the way out."""
    from repro.noise.ptm import MAX_PTM_QUBITS

    if num_qubits > MAX_TRAJECTORY_QUBITS:
        raise SimulationCapacityError(
            "trajectories",
            num_qubits,
            MAX_TRAJECTORY_QUBITS,
            suggested_engine=None,
            detail=(
                f"one statevector is 2^{num_qubits} complexes; partition "
                "the circuit (see repro.partition) instead"
            ),
        )
    batch_bytes = trajectories * (2**num_qubits) * _COMPLEX_BYTES
    if batched and batch_bytes > MAX_BATCHED_STATE_BYTES:
        raise SimulationCapacityError(
            "trajectories",
            num_qubits,
            MAX_TRAJECTORY_QUBITS,
            suggested_engine=(
                "ptm" if num_qubits <= MAX_PTM_QUBITS else None
            ),
            detail=(
                f"the ({trajectories}, 2^{num_qubits}) trajectory batch "
                f"needs {batch_bytes / 2**30:.1f} GiB "
                f"(cap {MAX_BATCHED_STATE_BYTES / 2**30:.0f} GiB); lower "
                "the trajectory count or pass batched=False"
            ),
        )


@dataclass(frozen=True)
class _ErrorSite:
    """One stochastic Pauli-error insertion point in the unrolled circuit."""

    qubits: tuple[int, ...]
    probability: float
    labels: tuple[str, ...]


def _pauli_application(
    label: str, qubits: tuple[int, ...]
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Resolve a sampled label to the (matrix, target qubits) actually applied.

    Two-qubit labels with an identity factor reduce to a one-qubit
    application (labels are little-endian: the last character acts on the
    first listed qubit).
    """
    if len(label) == 2 and label[0] == "I":
        return _PAULI_CACHE[label[1]], (qubits[0],)
    if len(label) == 2 and label[1] == "I":
        return _PAULI_CACHE[label[0]], (qubits[1],)
    return _PAULI_CACHE[label], qubits


def _error_sites(
    ops: list, num_qubits: int, noise: NoiseModel
) -> list[list[_ErrorSite]]:
    """Enumerate the error sites following each operation, in order.

    Mirrors the channel structure of :func:`repro.noise.density.run_density`:
    one-qubit gates draw from the 3 Paulis, two-qubit gates from the 15,
    wider gates are charged one two-qubit channel per consecutive pair,
    and idle qubits decohere once per operation.
    """
    per_op: list[list[_ErrorSite]] = []
    for op in ops:
        sites: list[_ErrorSite] = []
        arity = len(op.qubits)
        if arity == 1:
            sites.append(
                _ErrorSite(op.qubits, noise.one_qubit_error, ONE_QUBIT_PAULIS)
            )
        elif arity == 2:
            sites.append(
                _ErrorSite(op.qubits, noise.two_qubit_error, TWO_QUBIT_PAULIS)
            )
        else:
            for i in range(arity - 1):
                sites.append(
                    _ErrorSite(
                        (op.qubits[i], op.qubits[i + 1]),
                        noise.two_qubit_error,
                        TWO_QUBIT_PAULIS,
                    )
                )
        if noise.idle_decoherence > 0.0:
            for qubit in range(num_qubits):
                if qubit not in op.qubits:
                    sites.append(
                        _ErrorSite(
                            (qubit,), noise.idle_decoherence, ONE_QUBIT_PAULIS
                        )
                    )
        per_op.append(sites)
    return per_op


def _sample_outcomes(
    sites: list[_ErrorSite], trajectories: int, rng: np.random.Generator
) -> np.ndarray:
    """Pre-sample every (site, trajectory) error outcome.

    Returns an ``(num_sites, T)`` int array: ``-1`` means no error, a
    non-negative entry indexes into that site's label tuple.  Sampling is
    vectorized per site, and — crucially — independent of which engine
    consumes it, so scalar and batched runs share one RNG stream.
    """
    outcomes = np.full((len(sites), trajectories), -1, dtype=np.int64)
    for row, site in enumerate(sites):
        if site.probability <= 0.0:
            continue
        hits = rng.random(trajectories) < site.probability
        count = int(np.count_nonzero(hits))
        if count:
            outcomes[row, hits] = rng.integers(len(site.labels), size=count)
    return outcomes


def _evolve_batched(
    ops: list,
    gate_matrices: list[np.ndarray],
    sites_per_op: list[list[_ErrorSite]],
    outcomes: np.ndarray,
    num_qubits: int,
    trajectories: int,
) -> np.ndarray:
    """Evolve all trajectories as one batch; returns the summed distribution."""
    dim = 2**num_qubits
    states = np.zeros((trajectories, dim), dtype=complex)
    states[:, 0] = 1.0
    row = 0
    for op, gate, sites in zip(ops, gate_matrices, sites_per_op):
        states = apply_gate_to_states(states, gate, op.qubits, num_qubits)
        for site in sites:
            sampled = outcomes[row]
            row += 1
            hit = sampled >= 0
            if not hit.any():
                continue
            for label_index in np.unique(sampled[hit]):
                mask = sampled == label_index
                matrix, qubits = _pauli_application(
                    site.labels[int(label_index)], site.qubits
                )
                states[mask] = apply_gate_to_states(
                    states[mask], matrix, qubits, num_qubits
                )
    probs = np.abs(states) ** 2
    totals = probs.sum(axis=1)
    if not np.allclose(totals, 1.0, atol=1e-6):
        raise SimulationError("trajectory states lost normalization")
    return (probs / totals[:, None]).sum(axis=0)


def _evolve_scalar(
    ops: list,
    gate_matrices: list[np.ndarray],
    sites_per_op: list[list[_ErrorSite]],
    outcomes: np.ndarray,
    num_qubits: int,
    trajectories: int,
) -> np.ndarray:
    """One-trajectory-at-a-time evolution over the same sampled outcomes."""
    accumulated = np.zeros(2**num_qubits)
    for trajectory in range(trajectories):
        state = zero_state(num_qubits)
        row = 0
        for op, gate, sites in zip(ops, gate_matrices, sites_per_op):
            state = apply_gate_to_state(state, gate, op.qubits, num_qubits)
            for site in sites:
                label_index = outcomes[row, trajectory]
                row += 1
                if label_index < 0:
                    continue
                matrix, qubits = _pauli_application(
                    site.labels[int(label_index)], site.qubits
                )
                state = apply_gate_to_state(state, matrix, qubits, num_qubits)
        accumulated += probabilities(state)
    return accumulated


def run_trajectories(
    circuit: Circuit,
    noise: NoiseModel,
    trajectories: int = 1000,
    rng: np.random.Generator | int | None = None,
    batched: bool = True,
) -> np.ndarray:
    """Estimate the noisy output distribution from Pauli trajectories.

    Each trajectory contributes its full analytic Born distribution (not a
    single shot), which sharply reduces the sampling variance for a given
    trajectory budget.  ``batched=True`` (default) evolves all
    trajectories as one ``(T, 2^n)`` block; ``batched=False`` selects the
    scalar reference engine.  Both consume the same pre-sampled error
    outcomes, so the choice does not change the result for a fixed seed.
    """
    if trajectories < 1:
        raise SimulationError("need at least one trajectory")
    _check_capacity(circuit.num_qubits, trajectories, batched)
    rng = np.random.default_rng(rng)
    num_qubits = circuit.num_qubits
    ops = [op for op in circuit.operations if op.name not in ("measure", "barrier")]
    # Hoist the gate matrices: they are per-circuit constants and used to
    # be rebuilt T x ops times by the scalar loop.
    gate_matrices = [op.gate.matrix() for op in ops]
    sites_per_op = _error_sites(ops, num_qubits, noise)
    flat_sites = [site for sites in sites_per_op for site in sites]
    outcomes = _sample_outcomes(flat_sites, trajectories, rng)
    engine = _evolve_batched if batched else _evolve_scalar
    accumulated = engine(
        ops, gate_matrices, sites_per_op, outcomes, num_qubits, trajectories
    )
    probs = accumulated / trajectories
    return apply_readout_error(probs, num_qubits, noise.readout_error)
