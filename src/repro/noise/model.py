"""Pauli noise models (paper Sec. 4.1).

The paper's noisy simulations use a Pauli noise model "for all the qubits
with noise levels of 1%, 0.5%, and 0.1%"; the two-qubit (CNOT) error rate
on real devices is about an order of magnitude above the one-qubit rate.
:class:`NoiseModel` captures exactly that structure:

* after every one-qubit gate, a uniform Pauli error (X/Y/Z) with
  probability ``one_qubit_error``;
* after every two-qubit gate, a uniform two-qubit Pauli error (the 15
  non-identity Paulis) with probability ``two_qubit_error``;
* a symmetric readout bit-flip with probability ``readout_error`` per
  qubit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import NoiseModelError

_PAULI_1Q = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

#: The 15 non-identity two-qubit Pauli labels.
TWO_QUBIT_PAULIS: tuple[str, ...] = tuple(
    a + b for a, b in itertools.product("IXYZ", repeat=2) if a + b != "II"
)

ONE_QUBIT_PAULIS: tuple[str, ...] = ("X", "Y", "Z")


def pauli_matrix(label: str) -> np.ndarray:
    """Dense matrix of a Pauli label such as ``"X"`` or ``"ZY"``.

    Multi-qubit labels are ordered little-endian: the *last* character
    acts on the first listed qubit, matching ``np.kron`` composition.
    """
    if not label or any(c not in _PAULI_1Q for c in label):
        raise NoiseModelError(f"bad Pauli label {label!r}")
    matrix = _PAULI_1Q[label[0]]
    for char in label[1:]:
        matrix = np.kron(matrix, _PAULI_1Q[char])
    return matrix


@dataclass(frozen=True)
class NoiseModel:
    """Gate-level Pauli noise plus readout error.

    ``idle_decoherence`` adds a small extra one-qubit Pauli error per
    circuit *layer* on idle qubits, modelling decoherence during long
    circuits — longer circuits decohere more, which is the mechanism the
    paper's CNOT-count reduction targets.
    """

    one_qubit_error: float = 0.001
    two_qubit_error: float = 0.01
    readout_error: float = 0.02
    idle_decoherence: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "one_qubit_error",
            "two_qubit_error",
            "readout_error",
            "idle_decoherence",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise NoiseModelError(f"{name}={value} outside [0, 1]")

    @classmethod
    def from_noise_level(cls, level: float, readout: float | None = None) -> "NoiseModel":
        """Paper-style model: ``level`` is the two-qubit error rate.

        The one-qubit rate is set an order of magnitude lower and the
        readout error defaults to ``level`` (Sec. 1.2's error hierarchy).
        """
        return cls(
            one_qubit_error=level / 10.0,
            two_qubit_error=level,
            readout_error=level if readout is None else readout,
        )

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """A model with every error rate zero (for testing)."""
        return cls(0.0, 0.0, 0.0, 0.0)

    @property
    def is_noiseless(self) -> bool:
        """Whether all error channels are disabled."""
        return (
            self.one_qubit_error == 0.0
            and self.two_qubit_error == 0.0
            and self.readout_error == 0.0
            and self.idle_decoherence == 0.0
        )

    def error_probability(self, gate_qubits: int) -> float:
        """Pauli-error probability after a gate of the given arity."""
        if gate_qubits == 1:
            return self.one_qubit_error
        if gate_qubits == 2:
            return self.two_qubit_error
        # Wider gates are charged the two-qubit rate per constituent CNOT
        # elsewhere; as a direct channel, use the two-qubit rate.
        return self.two_qubit_error

    def pauli_terms(self, gate_qubits: int) -> list[tuple[float, str]]:
        """Return ``(probability, label)`` error terms for a gate arity."""
        probability = self.error_probability(gate_qubits)
        if probability == 0.0:
            return []
        if gate_qubits == 1:
            return [(probability / 3.0, p) for p in ONE_QUBIT_PAULIS]
        labels = TWO_QUBIT_PAULIS
        return [(probability / len(labels), p) for p in labels]


def readout_confusion(readout_error: float) -> np.ndarray:
    """Symmetric single-qubit readout confusion matrix ``C[read, actual]``."""
    e = readout_error
    return np.array([[1.0 - e, e], [e, 1.0 - e]])


def apply_readout_error(
    probs: np.ndarray, num_qubits: int, readout_error: float
) -> np.ndarray:
    """Apply the per-qubit readout confusion to an outcome distribution."""
    if readout_error == 0.0:
        return probs
    confusion = readout_confusion(readout_error)
    tensor = probs.reshape((2,) * num_qubits)
    for axis in range(num_qubits):
        tensor = np.tensordot(confusion, tensor, axes=([1], [axis]))
        tensor = np.moveaxis(tensor, 0, axis)
    return tensor.reshape(-1)
