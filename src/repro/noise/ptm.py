"""Superoperator (Pauli-transfer-matrix) noise engine.

Exact like :func:`repro.noise.density.run_density`, but structured for
throughput: every gate-plus-channel pair is compiled *once* into a real
``4^k x 4^k`` Pauli-transfer matrix (PTM), and a whole noisy ensemble
then evolves as batched PTM contractions over Pauli-basis density
vectors — the ensemble axis is one leading batch dimension instead of a
Python loop over circuits (and instead of the trajectory engine's loop
over ``T`` stochastic samples: a PTM run needs no sampling at all).

Representation.  For ``n`` qubits the state is the real vector
``r_j = Tr(P_j rho)`` over the ``4^n`` Pauli strings ``P_j``
(``rho = 2^-n sum_j r_j P_j``).  A channel ``E`` acts linearly:
``r' = R r`` with ``R_ij = 2^-k Tr(P_i E(P_j))``.  Three structural
facts make this fast:

* a unitary gate's PTM is computed from ``k <= 3`` qubit matrices
  (at most ``64 x 64``), once, and cached by the global-phase-canonical
  gate hash plus the channel fingerprint (the
  :class:`~repro.parallel.cache.PoolCache` content-addressing idiom);
* a Pauli channel is *diagonal* in the Pauli basis — entry ``j`` is
  ``(1 - p_tot) + sum_a p_a s(a, j)`` with ``s = +-1`` for
  commuting/anticommuting strings — so gate+channel compose by scaling
  the gate PTM's rows, and idle decoherence is a broadcast multiply;
* applying a ``k``-qubit PTM to ``B`` ensemble members is one einsum
  over a ``(B, 4, ..., 4)`` tensor, the exact analogue of
  :func:`repro.linalg.embed.apply_gate_to_states` with local dimension
  4 instead of 2.

Axis conventions mirror :mod:`repro.linalg.embed`: the Pauli vector
reshaped to ``(4,) * n`` has axis ``a`` for qubit ``n - 1 - a``, and a
``k``-qubit PTM reshaped to ``(4,) * 2k`` contracts its input axis ``i``
with the state axis of qubit ``qubits[k - 1 - i]`` (Pauli labels are
little-endian strings, like :func:`repro.noise.model.pauli_matrix`).

All contraction kernels run through the :mod:`repro.linalg.array_api`
shim, so selecting the ``cupy`` or ``torch`` backend moves the identical
code path onto a GPU; compilation stays on host numpy (tiny matrices,
runs once per distinct gate).

Compiled PTMs cross into the evolution loop exactly once per cache
miss, and are health-checked there: trace preservation (first row
``e_0``) and complete positivity (Choi matrix PSD) via
:func:`repro.resilience.validation.validate_ptm`, feeding the existing
:class:`~repro.exceptions.ValidationError` quarantine discipline.
"""

from __future__ import annotations

import itertools
import string
from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationCapacityError, SimulationError
from repro.linalg.array_api import ArrayBackend, get_backend
from repro.noise.model import (
    ONE_QUBIT_PAULIS,
    NoiseModel,
    apply_readout_error,
    pauli_matrix,
)
from repro.observability import get_metrics, get_tracer

#: Practical ceiling of the PTM engine: the Pauli vector is ``4^n``
#: floats per ensemble member (n=12 -> 128 MiB), and each contraction
#: touches all of it.  Beyond this, the trajectory sampler wins.
MAX_PTM_QUBITS = 12

#: Probability digits mixed into channel fingerprints; rates closer
#: than 1e-12 share a compiled PTM, far below any physical calibration.
_FINGERPRINT_DECIMALS = 12

#: Decimal places of the gate-matrix cache key (see
#: :meth:`PtmCache.gate_channel_ptm` for why this is finer than the
#: synthesis cache's default).
_KEY_DECIMALS = 14

_LETTERS = string.ascii_lowercase


def _pauli_labels(k: int) -> tuple[str, ...]:
    """All ``4^k`` Pauli strings of ``k`` chars, row-major in I/X/Y/Z."""
    return tuple("".join(t) for t in itertools.product("IXYZ", repeat=k))


_PAULI_STACKS: dict[int, np.ndarray] = {}


def _pauli_stack(k: int) -> np.ndarray:
    """Stacked dense Pauli matrices, shape ``(4^k, 2^k, 2^k)``, cached."""
    stack = _PAULI_STACKS.get(k)
    if stack is None:
        stack = np.stack([pauli_matrix(label) for label in _pauli_labels(k)])
        _PAULI_STACKS[k] = stack
    return stack


def _commutation_sign(a: str, b: str) -> float:
    """``+1`` if Pauli strings ``a`` and ``b`` commute, else ``-1``."""
    anti = sum(
        1
        for x, y in zip(a, b)
        if x != "I" and y != "I" and x != y
    )
    return 1.0 if anti % 2 == 0 else -1.0


def channel_diagonal(
    terms: list[tuple[float, str]] | tuple, arity: int
) -> np.ndarray:
    """PTM of a Pauli channel on ``arity`` qubits: a ``4^arity`` diagonal.

    ``terms`` are ``(probability, label)`` pairs as produced by
    :meth:`NoiseModel.pauli_terms`; the identity keeps the residual
    weight.  Diagonality is exact: ``P_a P_j P_a = +- P_j``.
    """
    labels = _pauli_labels(arity)
    total = sum(p for p, _ in terms)
    diag = np.full(4**arity, 1.0 - total)
    for probability, term_label in terms:
        if len(term_label) != arity:
            raise SimulationError(
                f"channel term {term_label!r} does not act on {arity} qubit(s)"
            )
        signs = np.array(
            [_commutation_sign(term_label, label) for label in labels]
        )
        diag += probability * signs
    return diag


def unitary_ptm(gate: np.ndarray, arity: int) -> np.ndarray:
    """PTM ``R_ij = 2^-k Tr(P_i U P_j U^dag)`` of a ``k``-qubit unitary."""
    dim = 2**arity
    if gate.shape != (dim, dim):
        raise SimulationError(
            f"gate shape {gate.shape} does not match {arity} qubit(s)"
        )
    paulis = _pauli_stack(arity)
    rotated = np.einsum("ab,jbc,dc->jad", gate, paulis, gate.conj())
    return np.real(np.einsum("iab,jba->ij", paulis, rotated)) / dim


def choi_matrix(ptm: np.ndarray, arity: int) -> np.ndarray:
    """Choi matrix of a channel given its PTM (basis ``|a><b| -> E(|a><b|)``).

    ``C = 2^-k sum_ij R_ij (P_j^T (x) P_i)``; the channel is completely
    positive iff ``C`` is positive semidefinite — the check
    :func:`repro.resilience.validation.validate_ptm` runs on every
    compiled PTM before it enters the evolution loop.
    """
    dim = 2**arity
    paulis = _pauli_stack(arity)
    choi = np.einsum("ij,jba,icd->acbd", ptm, paulis, paulis)
    return choi.reshape(dim * dim, dim * dim) / dim


def trace_preservation_defect(ptm: np.ndarray) -> float:
    """Max deviation of the PTM's first row from ``e_0``.

    ``r_0 = Tr(rho)``, so a trace-preserving channel must map it to
    itself regardless of the other components: row 0 is ``(1, 0, ...)``.
    """
    if not np.all(np.isfinite(ptm)):
        return float("inf")
    row = np.array(ptm[0], dtype=float, copy=True)
    row[0] -= 1.0
    return float(np.max(np.abs(row)))


def _terms_fingerprint(terms) -> tuple:
    """Hashable channel fingerprint: rounded rates + labels, in order."""
    return tuple(
        (round(float(p), _FINGERPRINT_DECIMALS), label) for p, label in terms
    )


def _program_key(circuit: Circuit, noise: NoiseModel) -> tuple:
    """Content key of a compiled program: circuit ops + channel rates.

    Gates are fully determined by ``(name, params)`` and readout error
    is applied outside the program, so this tuple captures everything
    compilation depends on — and building it is pure Python, orders of
    magnitude cheaper than re-hashing every gate matrix.
    """
    return (
        circuit.num_qubits,
        tuple(
            (op.name, op.qubits, op.params)
            for op in circuit.operations
            if op.name not in ("measure", "barrier")
        ),
        round(float(noise.one_qubit_error), _FINGERPRINT_DECIMALS),
        round(float(noise.two_qubit_error), _FINGERPRINT_DECIMALS),
        round(float(noise.idle_decoherence), _FINGERPRINT_DECIMALS),
    )


class PtmCache:
    """Content-addressed cache of compiled PTMs.

    Gate PTMs are keyed by the global-phase-canonical hash of the gate
    matrix (PTMs are phase-invariant, so ``U`` and ``e^{i theta} U``
    share an entry — the same canonicalization the synthesis
    :class:`~repro.parallel.cache.PoolCache` uses) mixed with the
    fingerprint of the attached Pauli channel.  Every miss is validated
    (trace preservation + complete positivity) before it is stored, so
    nothing unphysical can enter the evolution loop, cached or not.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, np.ndarray] = {}
        self._programs: dict[tuple, PtmProgram] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters survive; they describe the run)."""
        self._entries.clear()
        self._programs.clear()

    def program(self, key: tuple, build) -> PtmProgram:
        """Whole-circuit compile cache, keyed by :func:`_program_key`.

        Repeated ensemble evaluation (the Sec. 5 loop) would otherwise
        re-walk every circuit through the per-gate cache each call —
        the gate PTMs hit, but the per-op hashing itself dominates the
        warm path.
        """
        entry = self._programs.get(key)
        if entry is None:
            entry = self._programs[key] = build()
        return entry

    def _lookup(self, key: tuple, build) -> np.ndarray:
        metrics = get_metrics()
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            if metrics.is_enabled:
                metrics.inc("ptm.compile_cache_hits")
            return entry
        self.misses += 1
        if metrics.is_enabled:
            metrics.inc("ptm.compile_cache_misses")
        entry = build()
        entry.setflags(write=False)
        self._entries[key] = entry
        return entry

    def gate_channel_ptm(
        self, gate: np.ndarray, terms, arity: int
    ) -> np.ndarray:
        """Compiled PTM of ``gate`` followed by the Pauli channel ``terms``."""
        # Imported lazily: the noise package initializes before the
        # synthesis stack that repro.parallel.cache pulls in.
        from repro.parallel.cache import canonical_unitary_bytes

        key = (
            "gate",
            arity,
            # The synthesis cache's default 8-decimal rounding merges
            # unitaries ~1e-8 apart — fine for pool reuse, but here a
            # collision substitutes one gate's PTM for another and the
            # substitution error compounds per gate.  14 decimals keeps
            # keys stable for genuinely repeated matrices while holding
            # collision error below the engine's 1e-10 agreement pin.
            canonical_unitary_bytes(gate, decimals=_KEY_DECIMALS),
            _terms_fingerprint(terms),
        )

        def build() -> np.ndarray:
            from repro.resilience.validation import validate_ptm

            ptm = unitary_ptm(gate, arity)
            if terms:
                # Channel-after-gate composes as a row scaling because
                # the channel PTM is diagonal.
                ptm = channel_diagonal(terms, arity)[:, None] * ptm
            validate_ptm(ptm, arity, label=f"gate PTM ({arity}q)")
            return ptm

        return self._lookup(key, build)

    def channel_diag(self, terms, arity: int) -> np.ndarray:
        """Compiled diagonal of a bare Pauli channel (no gate)."""
        key = ("diag", arity, _terms_fingerprint(terms))

        def build() -> np.ndarray:
            from repro.resilience.validation import validate_ptm

            diag = channel_diagonal(terms, arity)
            validate_ptm(
                np.diag(diag), arity, label=f"channel PTM ({arity}q)"
            )
            return diag

        return self._lookup(key, build)


#: Process-wide compile cache: gate PTMs depend only on (gate, channel),
#: so entries are valid across circuits, ensembles, and runs.
_DEFAULT_CACHE = PtmCache()


def default_cache() -> PtmCache:
    """The process-wide compile cache (exposed for tests/inspection)."""
    return _DEFAULT_CACHE


@dataclass(frozen=True)
class PtmOp:
    """One compiled superoperator application.

    Exactly one of ``matrix`` (a full ``4^k x 4^k`` PTM) and ``diag``
    (the diagonal of a Pauli channel) is set.
    """

    qubits: tuple[int, ...]
    matrix: np.ndarray | None = None
    diag: np.ndarray | None = None

    @property
    def is_diag(self) -> bool:
        return self.diag is not None


@dataclass(frozen=True)
class PtmProgram:
    """A circuit compiled to an ordered PTM-op sequence."""

    num_qubits: int
    ops: tuple[PtmOp, ...]

    @property
    def signature(self) -> tuple:
        """Structural shape used to batch programs across an ensemble.

        Programs with equal signatures apply same-kind ops to the same
        qubits at every position, so their states stack into one batch
        and each position is a single contraction (with the per-member
        PTMs stacked along the batch axis when they differ).
        """
        return (
            self.num_qubits,
            tuple((op.qubits, op.is_diag) for op in self.ops),
        )


def compile_circuit(
    circuit: Circuit, noise: NoiseModel, cache: PtmCache | None = None
) -> PtmProgram:
    """Compile ``circuit`` + ``noise`` into a :class:`PtmProgram`.

    Mirrors the channel structure of ``run_density`` exactly: each
    gate's Pauli channel follows it (fused into one PTM for arity <= 2),
    wider gates are charged one two-qubit channel per consecutive pair,
    and idle qubits decohere once per operation.
    """
    cache = _DEFAULT_CACHE if cache is None else cache
    return cache.program(
        _program_key(circuit, noise),
        lambda: _compile_circuit(circuit, noise, cache),
    )


def _compile_circuit(
    circuit: Circuit, noise: NoiseModel, cache: PtmCache
) -> PtmProgram:
    """Program-cache miss path: walk the ops through the gate cache."""
    num_qubits = circuit.num_qubits
    idle_diag = None
    if noise.idle_decoherence > 0.0:
        idle_terms = tuple(
            (noise.idle_decoherence / 3.0, p) for p in ONE_QUBIT_PAULIS
        )
        idle_diag = cache.channel_diag(idle_terms, 1)
    ops: list[PtmOp] = []
    for op in circuit.operations:
        if op.name in ("measure", "barrier"):
            continue
        arity = len(op.qubits)
        if arity <= 2:
            ptm = cache.gate_channel_ptm(
                op.gate.matrix(), tuple(noise.pauli_terms(arity)), arity
            )
            ops.append(PtmOp(op.qubits, matrix=ptm))
        else:
            ops.append(
                PtmOp(
                    op.qubits,
                    matrix=cache.gate_channel_ptm(op.gate.matrix(), (), arity),
                )
            )
            pair_terms = tuple(noise.pauli_terms(2))
            if pair_terms:
                pair_diag = cache.channel_diag(pair_terms, 2)
                for i in range(arity - 1):
                    ops.append(
                        PtmOp(
                            (op.qubits[i], op.qubits[i + 1]), diag=pair_diag
                        )
                    )
        if idle_diag is not None:
            for qubit in range(num_qubits):
                if qubit not in op.qubits:
                    ops.append(PtmOp((qubit,), diag=idle_diag))
    return PtmProgram(num_qubits, tuple(ops))


def _initial_pauli_vector(num_qubits: int) -> np.ndarray:
    """Pauli vector of ``|0...0><0...0|``: 1 on all-{I,Z} strings."""
    base = np.array([1.0, 0.0, 0.0, 1.0])
    return reduce(np.kron, [base] * num_qubits)


def _target_letters(qubits: tuple[int, ...], num_qubits: int) -> list[str]:
    """State-tensor letter for each PTM input axis (embed.py convention)."""
    k = len(qubits)
    return [_LETTERS[num_qubits - 1 - qubits[k - 1 - i]] for i in range(k)]


def _apply_matrix_ptm(
    states,
    ptm,
    qubits: tuple[int, ...],
    num_qubits: int,
    batch: int,
    per_member: bool,
    xb: ArrayBackend,
):
    """One batched PTM contraction; ``ptm`` is shared or ``(B, ...)``."""
    k = len(qubits)
    state_sub = "Z" + _LETTERS[:num_qubits]
    in_letters = _target_letters(qubits, num_qubits)
    out_letters = [_LETTERS[num_qubits + i] for i in range(k)]
    ptm_sub = ("Z" if per_member else "") + "".join(out_letters) + "".join(
        in_letters
    )
    out_sub = state_sub
    for src, dst in zip(in_letters, out_letters):
        out_sub = out_sub.replace(src, dst)
    tensor = xb.reshape(states, (batch,) + (4,) * num_qubits)
    ptm_shape = ((batch,) if per_member else ()) + (4,) * (2 * k)
    result = xb.einsum(
        f"{ptm_sub},{state_sub}->{out_sub}",
        xb.reshape(ptm, ptm_shape),
        tensor,
    )
    return xb.reshape(result, (batch, 4**num_qubits))


def _apply_diag_ptm(
    states,
    diag,
    qubits: tuple[int, ...],
    num_qubits: int,
    batch: int,
    per_member: bool,
    xb: ArrayBackend,
):
    """Broadcast-multiply a diagonal channel along its target axes."""
    k = len(qubits)
    state_sub = "Z" + _LETTERS[:num_qubits]
    diag_sub = ("Z" if per_member else "") + "".join(
        _target_letters(qubits, num_qubits)
    )
    tensor = xb.reshape(states, (batch,) + (4,) * num_qubits)
    diag_shape = ((batch,) if per_member else ()) + (4,) * k
    result = xb.einsum(
        f"{diag_sub},{state_sub}->{state_sub}",
        xb.reshape(diag, diag_shape),
        tensor,
    )
    return xb.reshape(result, (batch, 4**num_qubits))


def _pauli_to_probabilities(
    states, num_qubits: int, batch: int, xb: ArrayBackend
) -> np.ndarray:
    """Computational-basis probabilities from a batch of Pauli vectors.

    Only all-{I,Z} strings have diagonal matrix elements; slicing them
    out and transforming each axis by ``[[1, 1], [1, -1]]`` (a
    Walsh-Hadamard pass) yields ``p(b) = 2^-n sum_z r_z prod (-1)^(b.z)``.
    """
    tensor = xb.reshape(states, (batch,) + (4,) * num_qubits)
    for axis in range(1, num_qubits + 1):
        tensor = xb.take(tensor, (0, 3), axis)
    transform = xb.asarray([[1.0, 1.0], [1.0, -1.0]], dtype="float64")
    state_sub = "Z" + _LETTERS[:num_qubits]
    for letter in _LETTERS[:num_qubits]:
        tensor = xb.einsum(
            f"y{letter},{state_sub}->{state_sub.replace(letter, 'y')}",
            transform,
            tensor,
        )
    probs = xb.to_numpy(xb.reshape(tensor, (batch, 2**num_qubits)))
    return probs / 2**num_qubits


def _check_capacity(num_qubits: int) -> None:
    if num_qubits > MAX_PTM_QUBITS:
        raise SimulationCapacityError(
            "ptm",
            num_qubits,
            MAX_PTM_QUBITS,
            suggested_engine="trajectories",
            detail=f"the Pauli vector would hold 4^{num_qubits} floats",
        )


def run_ptm_ensemble(
    circuits: list[Circuit],
    noise: NoiseModel,
    *,
    backend: str | ArrayBackend | None = None,
    cache: PtmCache | None = None,
) -> np.ndarray:
    """Exact noisy output distribution of every circuit in one batch.

    Returns a ``(len(circuits), 2^n)`` array of distributions (rows in
    input order).  Circuits are grouped by structural signature; within
    a group the ensemble axis is a leading batch dimension and every
    operation position is a single backend contraction.  A QUEST
    ensemble — selections over shared block pools — collapses into a
    handful of such groups.
    """
    if not circuits:
        raise SimulationError("no circuits to evaluate")
    widths = {circuit.num_qubits for circuit in circuits}
    if len(widths) != 1:
        raise SimulationError(
            f"ensemble circuits must share a qubit count, got {sorted(widths)}"
        )
    num_qubits = widths.pop()
    _check_capacity(num_qubits)
    xb = get_backend(backend)
    cache = _DEFAULT_CACHE if cache is None else cache
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "ptm.ensemble",
        circuits=len(circuits),
        qubits=num_qubits,
        backend=xb.name,
    ):
        programs = [
            compile_circuit(circuit, noise, cache) for circuit in circuits
        ]
        groups: dict[tuple, list[int]] = {}
        for index, program in enumerate(programs):
            groups.setdefault(program.signature, []).append(index)
        if metrics.is_enabled:
            metrics.inc("ptm.ensemble_groups", len(groups))
        initial = _initial_pauli_vector(num_qubits)
        out = np.empty((len(circuits), 2**num_qubits))
        for members in groups.values():
            batch = len(members)
            states = xb.asarray(
                np.tile(initial, (batch, 1)), dtype="float64"
            )
            contractions = 0
            for position in range(len(programs[members[0]].ops)):
                ops_at = [programs[m].ops[position] for m in members]
                first = ops_at[0]
                if first.is_diag:
                    shared = all(op.diag is first.diag for op in ops_at)
                    operand = xb.asarray(
                        first.diag
                        if shared
                        else np.stack([op.diag for op in ops_at]),
                        dtype="float64",
                    )
                    states = _apply_diag_ptm(
                        states, operand, first.qubits, num_qubits, batch,
                        not shared, xb,
                    )
                else:
                    shared = all(op.matrix is first.matrix for op in ops_at)
                    operand = xb.asarray(
                        first.matrix
                        if shared
                        else np.stack([op.matrix for op in ops_at]),
                        dtype="float64",
                    )
                    states = _apply_matrix_ptm(
                        states, operand, first.qubits, num_qubits, batch,
                        not shared, xb,
                    )
                contractions += 1
            if metrics.is_enabled:
                metrics.inc("ptm.contractions", contractions)
            probs = _pauli_to_probabilities(states, num_qubits, batch, xb)
            probs = np.clip(probs, 0.0, None)
            probs /= probs.sum(axis=1, keepdims=True)
            for row, member in enumerate(members):
                out[member] = apply_readout_error(
                    probs[row], num_qubits, noise.readout_error
                )
    return out


def run_ptm(
    circuit: Circuit,
    noise: NoiseModel,
    *,
    backend: str | ArrayBackend | None = None,
    cache: PtmCache | None = None,
) -> np.ndarray:
    """Exact noisy output distribution of one circuit via the PTM engine.

    Single-circuit convenience over :func:`run_ptm_ensemble` (a batch of
    one); agrees with :func:`repro.noise.density.run_density` to float
    precision while running an order of magnitude fewer contractions per
    noisy gate (one ``16 x 16`` PTM instead of ~32 conjugations).
    """
    return run_ptm_ensemble([circuit], noise, backend=backend, cache=cache)[0]


__all__ = [
    "MAX_PTM_QUBITS",
    "PtmCache",
    "PtmOp",
    "PtmProgram",
    "channel_diagonal",
    "choi_matrix",
    "compile_circuit",
    "default_cache",
    "run_ptm",
    "run_ptm_ensemble",
    "trace_preservation_defect",
    "unitary_ptm",
]
