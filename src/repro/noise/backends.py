"""Fake backend descriptors (the paper's quantum-hardware substitute).

The paper runs on the IBMQ Manila QPU (5 qubits, linear coupling) and on
the cloud noisy simulator.  Neither is reachable offline, so backends here
bundle a topology with a calibrated :class:`NoiseModel`; the transpiler
routes to the topology and the noisy simulators apply the model.  The
``FakeManila`` rates follow typical published Manila calibration data
(CX ~0.9 %, 1q ~0.03 %, readout ~2.5 %), which reproduces the error
*regime* of Fig. 10/13 even though per-day calibrations drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import NoiseModelError
from repro.noise.model import NoiseModel


@dataclass(frozen=True)
class Backend:
    """A device descriptor: name, size, topology, noise."""

    name: str
    num_qubits: int
    coupling_map: tuple[tuple[int, int], ...]
    noise: NoiseModel = field(default_factory=NoiseModel)

    def __post_init__(self) -> None:
        for a, b in self.coupling_map:
            if a == b or not (
                0 <= a < self.num_qubits and 0 <= b < self.num_qubits
            ):
                raise NoiseModelError(f"bad coupling edge {(a, b)}")

    @property
    def is_fully_connected(self) -> bool:
        """Whether every qubit pair is directly coupled."""
        edges = {tuple(sorted(e)) for e in self.coupling_map}
        wanted = {
            (a, b)
            for a in range(self.num_qubits)
            for b in range(a + 1, self.num_qubits)
        }
        return edges >= wanted

    def neighbors(self, qubit: int) -> tuple[int, ...]:
        """Qubits directly coupled to ``qubit``."""
        out = set()
        for a, b in self.coupling_map:
            if a == qubit:
                out.add(b)
            if b == qubit:
                out.add(a)
        return tuple(sorted(out))


def linear_coupling(num_qubits: int) -> tuple[tuple[int, int], ...]:
    """The 0-1-2-...-(n-1) chain topology."""
    return tuple((q, q + 1) for q in range(num_qubits - 1))


def all_to_all_coupling(num_qubits: int) -> tuple[tuple[int, int], ...]:
    """Full connectivity (an idealized device)."""
    return tuple(
        (a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
    )


def fake_manila() -> Backend:
    """A 5-qubit linear device with Manila-like calibration."""
    return Backend(
        name="fake_manila",
        num_qubits=5,
        coupling_map=linear_coupling(5),
        noise=NoiseModel(
            one_qubit_error=0.0003,
            two_qubit_error=0.009,
            readout_error=0.025,
            idle_decoherence=0.0,
        ),
    )


def linear_backend(num_qubits: int, noise: NoiseModel | None = None) -> Backend:
    """A linear-chain device of arbitrary size."""
    return Backend(
        name=f"linear_{num_qubits}",
        num_qubits=num_qubits,
        coupling_map=linear_coupling(num_qubits),
        noise=noise or NoiseModel(),
    )


def ideal_backend(num_qubits: int, noise: NoiseModel | None = None) -> Backend:
    """A fully connected device (no routing needed)."""
    return Backend(
        name=f"ideal_{num_qubits}",
        num_qubits=num_qubits,
        coupling_map=all_to_all_coupling(num_qubits),
        noise=noise or NoiseModel.noiseless(),
    )
