"""Exact noisy simulation with a density matrix.

The role of the paper's "IBMQ QASM simulator with a Pauli noise model":
every gate is followed by the model's Pauli channel applied exactly, so
the returned distribution is the *expected* noisy distribution with no
sampling error.  Practical up to ~8 qubits (the density matrix is
``4^n`` complex numbers); larger circuits use the trajectory sampler.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationCapacityError
from repro.linalg.embed import apply_gate_to_matrix
from repro.noise.model import NoiseModel, apply_readout_error, pauli_matrix

#: Hard cap for exact density-matrix simulation.
MAX_DENSITY_QUBITS = 9


def _conjugate_apply(
    rho: np.ndarray, gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Return ``U rho U^dag`` for an embedded gate ``U``."""
    half = apply_gate_to_matrix(rho, gate, qubits, num_qubits)
    # (U rho) U^dag == (U (U rho)^dag)^dag
    return apply_gate_to_matrix(half.conj().T, gate, qubits, num_qubits).conj().T


def _apply_pauli_channel(
    rho: np.ndarray,
    terms: list[tuple[float, np.ndarray]],
    qubits: tuple[int, ...],
    num_qubits: int,
) -> np.ndarray:
    """Apply a Pauli channel given ``(probability, matrix)`` terms."""
    if not terms:
        return rho
    total_error = sum(p for p, _ in terms)
    out = (1.0 - total_error) * rho
    for probability, pauli in terms:
        out = out + probability * _conjugate_apply(rho, pauli, qubits, num_qubits)
    return out


def _materialized_terms(
    terms: list[tuple[float, str]],
) -> list[tuple[float, np.ndarray]]:
    """Resolve ``(probability, label)`` terms to dense Pauli matrices."""
    return [(probability, pauli_matrix(label)) for probability, label in terms]


def run_density(
    circuit: Circuit, noise: NoiseModel
) -> np.ndarray:
    """Return the exact noisy output distribution of ``circuit``.

    Starts in ``|0...0><0...0|``, applies every unitary operation followed
    by the model's Pauli channel, traces out nothing (all qubits are
    measured), and finally applies the readout confusion.
    """
    num_qubits = circuit.num_qubits
    if num_qubits > MAX_DENSITY_QUBITS:
        # Structured refusal: the 4^n density matrix would not fit, so
        # name the engine that handles this size instead of letting the
        # allocation fail (or swap) later.
        from repro.noise.ptm import MAX_PTM_QUBITS

        raise SimulationCapacityError(
            "density",
            num_qubits,
            MAX_DENSITY_QUBITS,
            suggested_engine=(
                "ptm" if num_qubits <= MAX_PTM_QUBITS else "trajectories"
            ),
            detail=f"the density matrix would hold 4^{num_qubits} complexes",
        )
    dim = 2**num_qubits
    rho = np.zeros((dim, dim), dtype=complex)
    rho[0, 0] = 1.0
    idle_terms = (
        _materialized_terms(
            [(noise.idle_decoherence / 3.0, p) for p in ("X", "Y", "Z")]
        )
        if noise.idle_decoherence > 0.0
        else []
    )
    # Channel terms depend only on gate arity: build the per-arity
    # (probability, matrix) lists once instead of re-resolving every
    # Pauli label inside the per-operation loop.
    terms_by_arity: dict[int, list[tuple[float, np.ndarray]]] = {}

    def _channel_terms(arity: int) -> list[tuple[float, np.ndarray]]:
        if arity not in terms_by_arity:
            terms_by_arity[arity] = _materialized_terms(
                noise.pauli_terms(arity)
            )
        return terms_by_arity[arity]

    # Gate matrices depend only on (name, params): Trotterized circuits
    # repeat a handful of gates hundreds of times, and ``gate.matrix()``
    # re-materializes a fresh array on every call.
    gate_matrices: dict[tuple[str, tuple[float, ...]], np.ndarray] = {}

    def _gate_matrix(op) -> np.ndarray:
        key = (op.name, op.params)
        matrix = gate_matrices.get(key)
        if matrix is None:
            matrix = gate_matrices[key] = op.gate.matrix()
        return matrix

    for op in circuit.operations:
        if op.name in ("measure", "barrier"):
            continue
        rho = _conjugate_apply(rho, _gate_matrix(op), op.qubits, num_qubits)
        terms = _channel_terms(len(op.qubits))
        if terms:
            if len(op.qubits) <= 2:
                rho = _apply_pauli_channel(rho, terms, op.qubits, num_qubits)
            else:
                # Charge wider gates one two-qubit channel per qubit pair.
                pairs = [
                    (op.qubits[i], op.qubits[i + 1])
                    for i in range(len(op.qubits) - 1)
                ]
                for pair in pairs:
                    rho = _apply_pauli_channel(
                        rho, _channel_terms(2), pair, num_qubits
                    )
        if idle_terms:
            # Decoherence on the qubits idling while this gate executes.
            for qubit in range(num_qubits):
                if qubit not in op.qubits:
                    rho = _apply_pauli_channel(
                        rho, idle_terms, (qubit,), num_qubits
                    )
    probs = np.real(np.diag(rho)).copy()
    probs = np.clip(probs, 0.0, None)
    probs = probs / probs.sum()
    return apply_readout_error(probs, num_qubits, noise.readout_error)
