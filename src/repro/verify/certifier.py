"""The certification driver: confirm a stitched circuit's epsilon claims.

A QUEST run reports, for every selected approximation, a per-block
Hilbert-Schmidt distance ``epsilon_i`` and their sum (the Sec. 3.8 bound
on the whole-circuit distance).  This module re-derives those claims
from the artifacts alone:

* **Claims** (:class:`BlockClaim`) name, per block, the global qubits it
  acts on, how many operations it contributes to the stitched circuit,
  and its claimed epsilon.  Claims travel as a JSON manifest
  (:func:`claims_to_manifest` / :func:`claims_from_manifest`) next to
  each emitted ``approx_XX.qasm``, so certification needs nothing from
  the process that produced the circuit.
* **Block localization**: the stitched circuit is sliced back into block
  spans using the claimed operation counts, each span is remapped onto
  the block's local qubits, and its sub-unitary is diffed (via the
  certifier's own contraction path, :mod:`repro.verify.independent`)
  against the matching block of the *original* circuit's partition.
  The first block whose span strays outside its claimed qubits or whose
  distance exceeds its epsilon is named in the report.
* **Whole-circuit check**: exact unitary diff up to
  ``max_exact_qubits``; beyond that, Haar/computational-basis stimulus
  probes whose confidence-bounded distance estimate and per-state
  deviation cap must both be consistent with the claimed total.

A violated claim is a *result* (``CertificationReport.ok == False``),
not an exception; :class:`~repro.exceptions.CertificationError` is
reserved for inputs the certifier cannot even interpret (width
mismatches, manifests that do not describe the circuits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit, Operation
from repro.exceptions import CertificationError
from repro.metrics.tolerances import (
    CERTIFICATION_SLACK,
    STIMULUS_CONFIDENCE_DELTA,
)
from repro.partition.scan import scan_partition
from repro.transpile.basis import lower_to_basis
from repro.verify.independent import (
    DEFAULT_BASIS_STIMULI,
    DEFAULT_HAAR_STIMULI,
    DEFAULT_MAX_EXACT_QUBITS,
    StimulusEvidence,
    circuit_hs_distance,
    per_state_deviation_cap,
    stimulus_evidence,
)

#: Schema version of the claims manifest.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class BlockClaim:
    """What the producer claims about one block of a stitched circuit."""

    #: Position of the block in the partition's topological order.
    index: int
    #: Sorted global qubit indices the block acts on.
    qubits: tuple[int, ...]
    #: Operations the block contributes to the stitched circuit.
    op_count: int
    #: Claimed HS distance between the block's approximation and the
    #: original block.
    epsilon: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if not self.qubits or tuple(sorted(self.qubits)) != self.qubits:
            raise CertificationError(
                f"claim {self.index}: qubits must be non-empty and sorted, "
                f"got {self.qubits}"
            )
        if self.op_count < 0:
            raise CertificationError(
                f"claim {self.index}: negative op_count {self.op_count}"
            )
        if not np.isfinite(self.epsilon) or self.epsilon < 0.0:
            raise CertificationError(
                f"claim {self.index}: epsilon must be finite and >= 0, "
                f"got {self.epsilon}"
            )


@dataclass(frozen=True)
class BlockCertificate:
    """Verdict on one block claim."""

    index: int
    qubits: tuple[int, ...]
    claimed_epsilon: float
    #: Independently measured HS distance of the block's span against
    #: the original block; None when the span is structurally invalid
    #: (operations outside the claimed qubits), in which case no
    #: distance is defined.
    measured_distance: float | None
    ok: bool
    #: Human-readable defect description; empty when ``ok``.
    reason: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "index": self.index,
            "qubits": list(self.qubits),
            "claimed_epsilon": self.claimed_epsilon,
            "measured_distance": self.measured_distance,
            "ok": self.ok,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class CertificationReport:
    """Everything one certification established."""

    #: Overall verdict: every block claim held and the whole-circuit
    #: evidence is consistent with the claimed total.
    ok: bool
    #: Whole-circuit check used: ``"exact"`` (unitary diff) or
    #: ``"stimulus"`` (random state probes).
    regime: str
    num_qubits: int
    #: Claimed bound on the whole-circuit HS distance (sum of block
    #: epsilons, or the explicit budget).
    claimed_total: float
    #: Exact whole-circuit HS distance (``regime == "exact"`` only).
    measured_distance: float | None
    #: Stimulus-probe evidence (``regime == "stimulus"`` only).
    stimulus: StimulusEvidence | None
    #: Per-block verdicts, in block order; empty when certified without
    #: claims (budget-only mode).
    blocks: tuple[BlockCertificate, ...] = ()
    #: Whole-circuit-level defect descriptions; empty when consistent.
    failures: tuple[str, ...] = ()

    @property
    def first_failed_block(self) -> int | None:
        """Index of the first block whose claim failed, if any."""
        for certificate in self.blocks:
            if not certificate.ok:
                return certificate.index
        return None

    @property
    def failed_blocks(self) -> tuple[int, ...]:
        """Indices of every block whose claim failed."""
        return tuple(c.index for c in self.blocks if not c.ok)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.regime == "exact":
            evidence = f"distance {self.measured_distance:.3e}"
        else:
            evidence = (
                f"distance bound {self.stimulus.distance_bound:.3e} "
                f"({self.stimulus.haar_count} Haar + "
                f"{self.stimulus.basis_count} basis stimuli)"
            )
        verdict = "CERTIFIED" if self.ok else "VIOLATED"
        text = (
            f"{verdict}: {self.regime} regime, {evidence} vs "
            f"claimed total {self.claimed_total:.3e}"
        )
        if self.blocks:
            failed = self.failed_blocks
            if failed:
                text += (
                    f"; {len(failed)}/{len(self.blocks)} block claim(s) "
                    f"violated, first at block {failed[0]}"
                )
            else:
                text += f"; all {len(self.blocks)} block claim(s) hold"
        for failure in self.failures:
            text += f"; {failure}"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``verify-run --json`` payload)."""
        payload = {
            "ok": self.ok,
            "regime": self.regime,
            "num_qubits": self.num_qubits,
            "claimed_total": self.claimed_total,
            "measured_distance": self.measured_distance,
            "stimulus": None,
            "blocks": [c.to_dict() for c in self.blocks],
            "first_failed_block": self.first_failed_block,
            "failures": list(self.failures),
        }
        if self.stimulus is not None:
            payload["stimulus"] = {
                "haar_count": self.stimulus.haar_count,
                "basis_count": self.stimulus.basis_count,
                "distance_bound": self.stimulus.distance_bound,
                "distance_estimate": self.stimulus.distance_estimate,
                "worst_deviation": self.stimulus.worst_deviation,
                "delta": self.stimulus.delta,
            }
        return payload


# ----------------------------------------------------------------------
# Claims: construction and manifest round-trip
# ----------------------------------------------------------------------
def claims_for_choice(pools, choice) -> list[BlockClaim]:
    """Build the block claims of one selected approximation.

    ``pools`` are the run's :class:`~repro.core.pool.BlockPool` list and
    ``choice`` the per-block candidate indices of one selection — the
    exact inputs :func:`~repro.partition.blocks.stitch_blocks` consumed,
    so the claimed op counts tile the stitched circuit by construction.
    """
    if len(pools) != len(choice):
        raise CertificationError(
            f"choice names {len(choice)} blocks but the run has "
            f"{len(pools)} pools"
        )
    claims = []
    for pool, candidate_index in zip(pools, choice):
        candidate_index = int(candidate_index)
        if not 0 <= candidate_index < len(pool.candidates):
            raise CertificationError(
                f"block {pool.block.index}: choice {candidate_index} out of "
                f"range for a pool of {len(pool.candidates)}"
            )
        candidate = pool.candidates[candidate_index]
        claims.append(
            BlockClaim(
                index=pool.block.index,
                qubits=pool.block.qubits,
                op_count=len(candidate.circuit.operations),
                epsilon=float(candidate.distance),
            )
        )
    return claims


def claims_to_manifest(
    claims: list[BlockClaim], *, block_qubits: int
) -> dict:
    """Serialize claims (plus the partition width) to a JSON-ready dict.

    ``block_qubits`` is the partition's ``max_block_qubits``: the
    certifier re-partitions the original circuit with it, so it must
    travel with the claims for the block structure to be reproducible.
    """
    ordered = sorted(claims, key=lambda c: c.index)
    return {
        "version": MANIFEST_VERSION,
        "block_qubits": int(block_qubits),
        "total_epsilon": float(sum(c.epsilon for c in ordered)),
        "blocks": [
            {
                "index": c.index,
                "qubits": list(c.qubits),
                "op_count": c.op_count,
                "epsilon": c.epsilon,
            }
            for c in ordered
        ],
    }


def claims_from_manifest(data: dict) -> tuple[int, list[BlockClaim]]:
    """Parse a claims manifest; returns ``(block_qubits, claims)``.

    Raises :class:`CertificationError` on anything malformed, including
    a recorded ``total_epsilon`` that disagrees with the per-block sum —
    a tampered total is a defect in its own right.
    """
    if not isinstance(data, dict):
        raise CertificationError(
            f"manifest must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("version")
    if version != MANIFEST_VERSION:
        raise CertificationError(
            f"unsupported manifest version {version!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    try:
        block_qubits = int(data["block_qubits"])
        raw_blocks = data["blocks"]
        claims = [
            BlockClaim(
                index=int(entry["index"]),
                qubits=tuple(int(q) for q in entry["qubits"]),
                op_count=int(entry["op_count"]),
                epsilon=float(entry["epsilon"]),
            )
            for entry in raw_blocks
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise CertificationError(f"malformed claims manifest: {exc}") from exc
    if block_qubits < 2:
        raise CertificationError(
            f"manifest block_qubits must be >= 2, got {block_qubits}"
        )
    recorded_total = float(data.get("total_epsilon", 0.0))
    actual_total = sum(c.epsilon for c in claims)
    if abs(recorded_total - actual_total) > CERTIFICATION_SLACK:
        raise CertificationError(
            f"manifest total_epsilon {recorded_total:.6e} disagrees with "
            f"the per-block sum {actual_total:.6e}"
        )
    return block_qubits, claims


# ----------------------------------------------------------------------
# Block-localized diagnosis
# ----------------------------------------------------------------------
def _ordered_claims(claims: list[BlockClaim]) -> list[BlockClaim]:
    ordered = sorted(claims, key=lambda c: c.index)
    if [c.index for c in ordered] != list(range(len(ordered))):
        raise CertificationError(
            "claims do not form a contiguous 0..K-1 block order: "
            f"{[c.index for c in ordered]}"
        )
    return ordered


def _certify_blocks(
    baseline: Circuit,
    approximate: Circuit,
    claims: list[BlockClaim],
    block_qubits: int,
) -> tuple[BlockCertificate, ...]:
    """Slice the stitched circuit along the claims and diff every block.

    The original blocks are re-derived by re-partitioning the lowered
    original circuit — the scan partitioner is deterministic, so an
    honest manifest reproduces the producer's block structure exactly.
    A manifest whose structure disagrees with the re-derived partition
    does not describe these circuits at all and raises
    :class:`CertificationError`; a span that fails inside its block is a
    *finding* and lands in that block's certificate.
    """
    ordered = _ordered_claims(claims)
    blocks = scan_partition(baseline, block_qubits)
    if len(blocks) != len(ordered):
        raise CertificationError(
            f"claims describe {len(ordered)} blocks but the original "
            f"circuit partitions into {len(blocks)}"
        )
    for block, claim in zip(blocks, ordered):
        if block.qubits != claim.qubits:
            raise CertificationError(
                f"claim {claim.index} covers qubits {claim.qubits} but the "
                f"original partition's block {block.index} acts on "
                f"{block.qubits}"
            )
    total_ops = sum(c.op_count for c in ordered)
    if total_ops != len(approximate.operations):
        raise CertificationError(
            f"claims cover {total_ops} operations but the stitched "
            f"circuit has {len(approximate.operations)}"
        )

    certificates = []
    cursor = 0
    for block, claim in zip(blocks, ordered):
        span = approximate.operations[cursor : cursor + claim.op_count]
        cursor += claim.op_count
        mapping = {q: local for local, q in enumerate(claim.qubits)}
        stray = sorted(
            {q for op in span for q in op.qubits if q not in mapping}
        )
        if stray:
            certificates.append(
                BlockCertificate(
                    index=claim.index,
                    qubits=claim.qubits,
                    claimed_epsilon=claim.epsilon,
                    measured_distance=None,
                    ok=False,
                    reason=(
                        f"span operates on qubit(s) {stray} outside the "
                        f"claimed block qubits {list(claim.qubits)}"
                    ),
                )
            )
            continue
        local = Circuit(len(claim.qubits))
        for op in span:
            local.append(
                Operation(op.gate, tuple(mapping[q] for q in op.qubits))
            )
        measured = circuit_hs_distance(block.circuit, local)
        ok = measured <= claim.epsilon + CERTIFICATION_SLACK
        certificates.append(
            BlockCertificate(
                index=claim.index,
                qubits=claim.qubits,
                claimed_epsilon=claim.epsilon,
                measured_distance=measured,
                ok=ok,
                reason=(
                    ""
                    if ok
                    else (
                        f"block HS distance {measured:.6e} exceeds claimed "
                        f"epsilon {claim.epsilon:.6e}"
                    )
                ),
            )
        )
    return tuple(certificates)


# ----------------------------------------------------------------------
# The certification driver
# ----------------------------------------------------------------------
def certify_equivalence(
    original: Circuit,
    approximate: Circuit,
    claims: list[BlockClaim] | None = None,
    *,
    block_qubits: int | None = None,
    budget: float | None = None,
    max_exact_qubits: int = DEFAULT_MAX_EXACT_QUBITS,
    haar_stimuli: int = DEFAULT_HAAR_STIMULI,
    basis_stimuli: int = DEFAULT_BASIS_STIMULI,
    rng: np.random.Generator | int | None = None,
    delta: float = STIMULUS_CONFIDENCE_DELTA,
) -> CertificationReport:
    """Independently certify that ``approximate`` honors its claims.

    With ``claims`` (and the partition width ``block_qubits`` that
    produced them), every block claim is checked exactly and a failing
    whole-circuit claim is localized to the first offending block; the
    claimed total is the sum of block epsilons unless an explicit
    ``budget`` overrides it.  Without claims, only the whole-circuit
    distance is certified against ``budget``.

    Circuits up to ``max_exact_qubits`` wide get the exact unitary
    diff; wider ones get Haar/computational-basis stimulus probes
    (deterministic for a fixed ``rng`` seed).
    """
    if original.num_qubits != approximate.num_qubits:
        raise CertificationError(
            f"circuit widths differ: {original.num_qubits} vs "
            f"{approximate.num_qubits} qubits"
        )
    stripped_original = original.without_measurements()
    stripped_approx = approximate.without_measurements()

    block_certificates: tuple[BlockCertificate, ...] = ()
    claimed_total = budget
    if claims is not None:
        if block_qubits is None:
            raise CertificationError(
                "certifying block claims needs the partition width "
                "(block_qubits) that produced them"
            )
        baseline = lower_to_basis(stripped_original)
        block_certificates = _certify_blocks(
            baseline, stripped_approx, claims, block_qubits
        )
        if claimed_total is None:
            claimed_total = sum(c.epsilon for c in claims)
    if claimed_total is None:
        raise CertificationError(
            "nothing to certify against: provide claims or a budget"
        )

    failures: list[str] = []
    num_qubits = original.num_qubits
    if num_qubits <= max_exact_qubits:
        regime = "exact"
        measured = circuit_hs_distance(stripped_original, stripped_approx)
        evidence = None
        if measured > claimed_total + CERTIFICATION_SLACK:
            failures.append(
                f"whole-circuit HS distance {measured:.6e} exceeds the "
                f"claimed total {claimed_total:.6e}"
            )
    else:
        regime = "stimulus"
        measured = None
        evidence = stimulus_evidence(
            stripped_original,
            stripped_approx,
            haar_stimuli=haar_stimuli,
            basis_stimuli=basis_stimuli,
            rng=rng,
            delta=delta,
        )
        if evidence.distance_bound > claimed_total + CERTIFICATION_SLACK:
            failures.append(
                f"stimulus distance bound {evidence.distance_bound:.6e} "
                f"(confidence 1-{evidence.delta:.0e}) exceeds the claimed "
                f"total {claimed_total:.6e}"
            )
        cap = per_state_deviation_cap(2**num_qubits, claimed_total)
        if evidence.worst_deviation > cap + CERTIFICATION_SLACK:
            failures.append(
                f"a stimulus deviated by {evidence.worst_deviation:.6e}, "
                f"refuting the claimed total {claimed_total:.6e} "
                f"(sound cap {cap:.6e})"
            )

    ok = not failures and all(c.ok for c in block_certificates)
    return CertificationReport(
        ok=ok,
        regime=regime,
        num_qubits=num_qubits,
        claimed_total=float(claimed_total),
        measured_distance=measured,
        stimulus=evidence,
        blocks=block_certificates,
        failures=tuple(failures),
    )


#: Fixed entropy tag separating certification RNG streams from every
#: other consumer of the run seed.
_CERTIFY_STREAM = 0xCE27


def certify_result(
    result,
    *,
    block_qubits: int,
    max_exact_qubits: int = DEFAULT_MAX_EXACT_QUBITS,
    haar_stimuli: int = DEFAULT_HAAR_STIMULI,
    basis_stimuli: int = DEFAULT_BASIS_STIMULI,
    seed: int | None = None,
    delta: float = STIMULUS_CONFIDENCE_DELTA,
) -> list[CertificationReport]:
    """Certify every selected approximation of a :class:`QuestResult`.

    Claims are rebuilt from the run's pools and choices (the same data
    the stitcher consumed) and each stitched circuit is certified
    against the run's baseline.  The stimulus RNG is derived from
    ``seed`` and the circuit index through a dedicated
    :class:`~numpy.random.SeedSequence` stream, so certification never
    perturbs — and is never perturbed by — the pipeline's own draws.
    """
    reports = []
    for index, (choice, circuit) in enumerate(
        zip(result.selection.choices, result.circuits)
    ):
        claims = claims_for_choice(result.pools, choice)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [_CERTIFY_STREAM, 0 if seed is None else int(seed), index]
            )
        )
        reports.append(
            certify_equivalence(
                result.baseline,
                circuit,
                claims,
                block_qubits=block_qubits,
                max_exact_qubits=max_exact_qubits,
                haar_stimuli=haar_stimuli,
                basis_stimuli=basis_stimuli,
                rng=rng,
                delta=delta,
            )
        )
    return reports
