"""Independent equivalence certification (the production guardrail).

QUEST's promise is that every stitched approximation stays within its
reported Hilbert-Schmidt budget of the original circuit — but the only
code that computed that distance used to be the synthesis path itself,
so a bug there would certify its own output.  Following *Verifying
Results of the IBM Qiskit Quantum Circuit Compilation Flow*, this
package re-derives equivalence **from the artifacts alone**, through
numerics deliberately disjoint from the synthesis path:

* :mod:`repro.verify.independent` — unitaries rebuilt column-by-column
  by statevector propagation (not the matrix accumulator), the HS
  overlap taken as the trace of the explicit matrix product (not the
  elementwise contraction), Haar/computational-basis stimulus probes
  with a confidence-bounded distance estimate for circuits too wide to
  diff exactly;
* :mod:`repro.verify.certifier` — the certification driver: exact
  unitary diff for small ``n``, random-stimulus probes for large ``n``,
  and block-localized diagnosis that slices a stitched circuit along
  its partition structure to name the first block whose sub-unitary
  drifts past its claimed epsilon.

Three seams consume it: ``run_quest`` (``QuestConfig.certify``),
candidate validation (:mod:`repro.resilience.validation` with
``independent=True``), and the ``python -m repro verify-run`` CLI.
"""

from repro.verify.certifier import (
    MANIFEST_VERSION,
    BlockCertificate,
    BlockClaim,
    CertificationReport,
    certify_equivalence,
    certify_result,
    claims_for_choice,
    claims_from_manifest,
    claims_to_manifest,
)
from repro.verify.independent import (
    DEFAULT_BASIS_STIMULI,
    DEFAULT_HAAR_STIMULI,
    DEFAULT_MAX_EXACT_QUBITS,
    StimulusEvidence,
    basis_states,
    circuit_hs_distance,
    haar_states,
    independent_hs_distance,
    independent_unitary,
    per_state_deviation_cap,
    stimulus_evidence,
)

__all__ = [
    "certify_equivalence",
    "certify_result",
    "CertificationReport",
    "BlockCertificate",
    "BlockClaim",
    "claims_for_choice",
    "claims_to_manifest",
    "claims_from_manifest",
    "independent_unitary",
    "independent_hs_distance",
    "circuit_hs_distance",
    "haar_states",
    "basis_states",
    "stimulus_evidence",
    "per_state_deviation_cap",
    "StimulusEvidence",
    "MANIFEST_VERSION",
    "DEFAULT_MAX_EXACT_QUBITS",
    "DEFAULT_HAAR_STIMULI",
    "DEFAULT_BASIS_STIMULI",
]
