"""Independently re-derived equivalence primitives.

Everything here exists to *disagree* with the synthesis path when the
synthesis path is wrong, so the numerics are deliberately disjoint from
it:

* :func:`independent_unitary` rebuilds a circuit's unitary column by
  column through the statevector simulator
  (:func:`repro.sim.statevector.run_statevector`), never touching the
  matrix accumulator in :mod:`repro.sim.unitary` that synthesis and
  validation use.
* :func:`independent_hs_distance` takes the Hilbert-Schmidt overlap as
  the trace of the explicit matrix product ``U^dag V`` instead of
  :func:`repro.linalg.unitary.hs_inner`'s elementwise contraction.
  Both are global-phase-canonical (only ``|Tr|`` enters), so the two
  paths must agree to float precision on correct inputs — and only
  there.

For circuits too wide to diff exactly, :func:`stimulus_evidence`
propagates Haar-random and computational-basis stimuli through both
circuits and derives two sound checks from the state overlaps:

* a **lower confidence bound** on the true HS distance, from the
  Haar identity ``E_psi |<psi|W|psi>|^2 = (|Tr W|^2 + N) / (N (N+1))``
  plus a Hoeffding deviation term — it exceeds a claimed budget only
  when the claim is violated (with probability ``1 - delta`` over the
  stimulus draw), and by construction it is never tighter than the
  exact distance;
* a **per-stimulus deviation cap**: if ``d(U, V) <= eps`` then every
  state satisfies ``1 - |<U psi, V psi>| <= N (1 - sqrt(1 - eps^2))``
  (via the Frobenius bound on the phase-aligned operator difference),
  so any single stimulus breaking the cap refutes the claim outright.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import CertificationError
from repro.metrics.tolerances import STIMULUS_CONFIDENCE_DELTA
from repro.sim.statevector import run_statevector

#: Widths up to this get the exact unitary diff; wider circuits fall to
#: the random-stimulus regime.  The dense reconstruction is O(4^n) per
#: circuit, so the default stays well below the simulator's hard cap.
DEFAULT_MAX_EXACT_QUBITS = 10

#: Haar-random stimuli per stimulus-mode certification.
DEFAULT_HAAR_STIMULI = 24

#: Computational-basis stimuli per stimulus-mode certification (always
#: includes ``|0...0>``, the state every experiment starts from).
DEFAULT_BASIS_STIMULI = 8


def independent_unitary(circuit: Circuit) -> np.ndarray:
    """Rebuild a circuit's unitary column-by-column via statevector runs.

    Column ``k`` is the circuit applied to basis state ``|k>``.  This is
    the certifier's own contraction path: it shares no code with
    :func:`repro.sim.unitary.circuit_unitary` beyond the single-gate
    application kernel, so an accumulation bug in either path surfaces
    as a disagreement instead of certifying itself.
    """
    stripped = circuit.without_measurements()
    dim = 2**circuit.num_qubits
    columns = np.empty((dim, dim), dtype=complex)
    basis = np.zeros(dim, dtype=complex)
    for k in range(dim):
        basis[k] = 1.0
        columns[:, k] = run_statevector(stripped, basis)
        basis[k] = 0.0
    return columns


def independent_overlap(u: np.ndarray, v: np.ndarray) -> float:
    """Normalized HS overlap ``|Tr(U^dag V)| / N`` via full matrix product."""
    if u.shape != v.shape or u.ndim != 2 or u.shape[0] != u.shape[1]:
        raise CertificationError(
            f"cannot compare operators of shapes {u.shape} and {v.shape}"
        )
    product = u.conj().T @ v
    return float(abs(np.trace(product))) / u.shape[0]


def independent_hs_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Global-phase-canonical HS distance, certifier's own derivation."""
    overlap = independent_overlap(u, v)
    return math.sqrt(max(0.0, 1.0 - overlap * overlap))


def circuit_hs_distance(original: Circuit, approximate: Circuit) -> float:
    """Exact HS distance between two circuits, fully independent path."""
    if original.num_qubits != approximate.num_qubits:
        raise CertificationError(
            f"circuit widths differ: {original.num_qubits} vs "
            f"{approximate.num_qubits} qubits"
        )
    return independent_hs_distance(
        independent_unitary(original), independent_unitary(approximate)
    )


# ----------------------------------------------------------------------
# Stimulus regime
# ----------------------------------------------------------------------
def haar_states(
    num_qubits: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``(count, 2^n)`` Haar-random pure states (normalized Ginibre rows)."""
    if count < 1:
        raise CertificationError("need at least one Haar stimulus")
    dim = 2**num_qubits
    raw = rng.normal(size=(count, dim)) + 1j * rng.normal(size=(count, dim))
    return raw / np.linalg.norm(raw, axis=1, keepdims=True)


def basis_states(
    num_qubits: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``(count, 2^n)`` distinct computational-basis stimuli.

    Always includes ``|0...0>``; the rest are drawn without replacement.
    ``count`` is clipped to the dimension.
    """
    if count < 1:
        raise CertificationError("need at least one basis stimulus")
    dim = 2**num_qubits
    count = min(count, dim)
    indices = [0]
    if count > 1:
        others = rng.choice(dim - 1, size=count - 1, replace=False) + 1
        indices.extend(int(i) for i in others)
    states = np.zeros((count, dim), dtype=complex)
    states[np.arange(count), indices] = 1.0
    return states


def state_overlaps(
    original: Circuit, approximate: Circuit, states: np.ndarray
) -> np.ndarray:
    """``|<U psi_j, V psi_j>|`` for every stimulus row ``psi_j``."""
    overlaps = np.empty(states.shape[0])
    for j, state in enumerate(states):
        evolved_original = run_statevector(original, state)
        evolved_approx = run_statevector(approximate, state)
        overlaps[j] = abs(np.vdot(evolved_original, evolved_approx))
    return overlaps


def per_state_deviation_cap(dim: int, epsilon: float) -> float:
    """Max honest per-stimulus infidelity ``1 - |<U psi, V psi>|``.

    If ``d(U, V) <= eps`` then with ``W = U^dag V`` and ``phi`` the phase
    of ``Tr W``::

        || (U - e^{i phi} V) psi ||  <=  || U - e^{i phi} V ||_F
                                      =  sqrt(2 N (1 - |Tr W| / N))
                                     <=  sqrt(2 N (1 - sqrt(1 - eps^2)))

    and ``1 - |<U psi, V psi>| = || (U - e^{i phi'} V) psi ||^2 / 2`` at
    the per-state optimal phase, which is no larger.  The cap is loose
    (the ``N`` factor is real), but it is *sound*: no honest circuit
    pair can break it, so a single stimulus that does refutes the claim.
    """
    epsilon = min(max(float(epsilon), 0.0), 1.0)
    return dim * (1.0 - math.sqrt(max(0.0, 1.0 - epsilon * epsilon)))


@dataclass(frozen=True)
class StimulusEvidence:
    """What the stimulus probes established about ``d(U, V)``."""

    #: Number of Haar-random stimuli behind the confidence bound.
    haar_count: int
    #: Number of computational-basis stimuli probed.
    basis_count: int
    #: Lower confidence bound on the true HS distance: holds with
    #: probability at least ``1 - delta`` over the Haar draw, and is
    #: never tighter than the exact distance at that confidence.
    distance_bound: float
    #: Unbiased point estimate of the HS distance (reported, not gated).
    distance_estimate: float
    #: Largest per-stimulus infidelity ``1 - |<U psi, V psi>|`` seen,
    #: across Haar and basis stimuli.
    worst_deviation: float
    #: Failure-probability budget of the confidence bound.
    delta: float


def stimulus_evidence(
    original: Circuit,
    approximate: Circuit,
    *,
    haar_stimuli: int = DEFAULT_HAAR_STIMULI,
    basis_stimuli: int = DEFAULT_BASIS_STIMULI,
    rng: np.random.Generator | int | None = None,
    delta: float = STIMULUS_CONFIDENCE_DELTA,
) -> StimulusEvidence:
    """Probe two circuits with random stimuli and bound their distance.

    The Haar stimuli feed the confidence-bounded distance estimate; the
    basis stimuli (and the Haar ones) also feed ``worst_deviation`` for
    the per-state cap check.  Deterministic for a fixed ``rng`` seed.
    """
    if original.num_qubits != approximate.num_qubits:
        raise CertificationError(
            f"circuit widths differ: {original.num_qubits} vs "
            f"{approximate.num_qubits} qubits"
        )
    rng = np.random.default_rng(rng)
    num_qubits = original.num_qubits
    dim = 2**num_qubits
    stripped_original = original.without_measurements()
    stripped_approx = approximate.without_measurements()

    haar = haar_states(num_qubits, haar_stimuli, rng)
    haar_overlaps = state_overlaps(stripped_original, stripped_approx, haar)
    basis = basis_states(num_qubits, basis_stimuli, rng)
    basis_overlaps = state_overlaps(stripped_original, stripped_approx, basis)

    # Haar identity: E |<psi|W|psi>|^2 = (|Tr W|^2 + N) / (N (N + 1)),
    # so the sample mean m gives |Tr W|^2 / N^2 ~= ((N+1) m - 1) / N.
    mean_sq = float(np.mean(haar_overlaps**2))
    deviation = math.sqrt(math.log(1.0 / delta) / (2.0 * len(haar_overlaps)))
    overlap_sq_estimate = min(max(((dim + 1) * mean_sq - 1.0) / dim, 0.0), 1.0)
    overlap_sq_upper = min(
        max(((dim + 1) * (mean_sq + deviation) - 1.0) / dim, 0.0), 1.0
    )
    distance_estimate = math.sqrt(max(0.0, 1.0 - overlap_sq_estimate))
    distance_bound = math.sqrt(max(0.0, 1.0 - overlap_sq_upper))

    worst = float(
        max(1.0 - haar_overlaps.min(), 1.0 - basis_overlaps.min())
    )
    return StimulusEvidence(
        haar_count=len(haar_overlaps),
        basis_count=len(basis_overlaps),
        distance_bound=distance_bound,
        distance_estimate=distance_estimate,
        worst_deviation=worst,
        delta=delta,
    )
