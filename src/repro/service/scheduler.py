"""Admission control and weighted-fair job scheduling.

The daemon's queue is **bounded**: :meth:`FairScheduler.admit` either
enqueues a job or returns a structured
:class:`~repro.exceptions.AdmissionRejected` — it never blocks and the
queue never grows past ``capacity``, so an overloaded daemon's memory
stays flat and clients get an immediate, actionable "no" (backpressure)
instead of a timeout.  Two layers of admission:

* **global capacity** — total queued jobs across all tenants;
* **per-tenant quota** — one noisy tenant cannot occupy the whole
  queue; the quota defaults to the full capacity (no isolation) and is
  configurable per tenant.

Dispatch order is **weighted fair** via stride scheduling: each tenant
carries a virtual ``pass``; picking a job advances the owning tenant's
pass by ``1/weight``.  A weight-2 tenant therefore drains twice as fast
as a weight-1 tenant under contention, while an idle tenant's first job
never waits behind a backlog it did not cause (its pass is lifted to
the global virtual time on first enqueue — the standard lag-limiting
rule).  Within a tenant, jobs are FIFO.

The scheduler is plain synchronous state behind a lock (the daemon
calls it from one event loop; unit tests drive it directly), with no
dependency on asyncio.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import AdmissionRejected
from repro.service.protocol import (
    REJECT_QUEUE_FULL,
    REJECT_SHUTTING_DOWN,
    REJECT_TENANT_QUOTA,
    JobRecord,
)


@dataclass
class TenantState:
    """One tenant's queue plus its fair-share accounting."""

    name: str
    weight: float = 1.0
    #: Max jobs this tenant may have queued (None = global capacity).
    quota: int | None = None
    queue: deque = field(default_factory=deque)
    #: Stride-scheduling virtual time; advanced by 1/weight per dispatch.
    pass_value: float = 0.0
    #: Lifetime dispatch counter (status/metrics).
    dispatched: int = 0


class FairScheduler:
    """Bounded multi-tenant queue with stride-based weighted fairness."""

    def __init__(
        self,
        capacity: int = 64,
        *,
        tenant_weights: dict[str, float] | None = None,
        tenant_quotas: dict[str, int] | None = None,
        default_weight: float = 1.0,
        default_quota: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if default_weight <= 0:
            raise ValueError(f"default_weight must be > 0, got {default_weight}")
        self.capacity = int(capacity)
        self.default_weight = float(default_weight)
        self.default_quota = default_quota
        self._weights = dict(tenant_weights or {})
        self._quotas = dict(tenant_quotas or {})
        for tenant, weight in self._weights.items():
            if weight <= 0:
                raise ValueError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantState] = {}
        self._depth = 0
        #: Global virtual time: the last dispatched pass value.  New
        #: tenants start here so they cannot claim "credit" for time
        #: they spent idle.
        self._virtual_time = 0.0
        self._draining = False
        #: Lifetime admission counters (status/metrics).
        self.admitted = 0
        self.rejected: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = TenantState(
                name=name,
                weight=self._weights.get(name, self.default_weight),
                quota=self._quotas.get(name, self.default_quota),
                pass_value=self._virtual_time,
            )
            self._tenants[name] = state
        return state

    def _reject(self, reason: str, detail: str, tenant: str) -> AdmissionRejected:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return AdmissionRejected(
            reason,
            detail,
            tenant=tenant,
            queue_depth=self._depth,
            capacity=self.capacity,
        )

    def admit(self, job: JobRecord) -> AdmissionRejected | None:
        """Enqueue ``job`` or return the structured rejection.

        Never blocks, never raises for a full queue — rejection is a
        *verdict*, handed back so the transport can serialize it.
        """
        with self._lock:
            if self._draining:
                return self._reject(
                    REJECT_SHUTTING_DOWN,
                    "daemon is draining; resubmit after restart",
                    job.tenant,
                )
            if self._depth >= self.capacity:
                return self._reject(
                    REJECT_QUEUE_FULL,
                    f"queue at capacity ({self.capacity} jobs)",
                    job.tenant,
                )
            state = self._tenant(job.tenant)
            quota = self.capacity if state.quota is None else state.quota
            if len(state.queue) >= quota:
                return self._reject(
                    REJECT_TENANT_QUOTA,
                    f"tenant {job.tenant!r} at quota ({quota} queued jobs)",
                    job.tenant,
                )
            if not state.queue:
                # Lag limit: an idle tenant re-enters at the current
                # virtual time instead of its stale (small) pass.
                state.pass_value = max(state.pass_value, self._virtual_time)
            state.queue.append(job)
            self._depth += 1
            self.admitted += 1
            return None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def next_job(self) -> JobRecord | None:
        """Pop the next job under weighted fairness; None when idle."""
        with self._lock:
            best: TenantState | None = None
            for state in self._tenants.values():
                if not state.queue:
                    continue
                if best is None or state.pass_value < best.pass_value or (
                    state.pass_value == best.pass_value
                    and state.name < best.name
                ):
                    best = state
            if best is None:
                return None
            job = best.queue.popleft()
            self._depth -= 1
            self._virtual_time = best.pass_value
            best.pass_value += 1.0 / best.weight
            best.dispatched += 1
            return job

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Total queued jobs across all tenants."""
        with self._lock:
            return self._depth

    def depths(self) -> dict[str, int]:
        """Per-tenant queued-job counts (only tenants ever seen)."""
        with self._lock:
            return {
                name: len(state.queue) for name, state in self._tenants.items()
            }

    def tenant_summary(self) -> dict[str, dict]:
        """Status-endpoint view: depth, weight, quota, dispatch count."""
        with self._lock:
            return {
                name: {
                    "queued": len(state.queue),
                    "weight": state.weight,
                    "quota": state.quota,
                    "dispatched": state.dispatched,
                }
                for name, state in self._tenants.items()
            }

    def drain(self) -> list[JobRecord]:
        """Stop admitting; return (and clear) every still-queued job.

        The daemon marks the returned jobs pending in the ledger — they
        are not lost, they resume after the next start.
        """
        with self._lock:
            self._draining = True
            leftover: list[JobRecord] = []
            for state in self._tenants.values():
                leftover.extend(state.queue)
                state.queue.clear()
            self._depth = 0
            return leftover

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining
