"""The compilation daemon: ``python -m repro serve``.

:class:`QuestService` is a long-lived asyncio server that accepts
compile jobs (QASM + config overrides in, selected ensemble + Σε
certificate out) over a Unix domain socket and runs them on **one**
shared substrate — the same :class:`~repro.batch.driver.BatchResources`
(persistent worker pool, thread-safe pool cache, in-flight registry)
that batch mode uses.  Concurrent duplicate submissions therefore dedup
at the block level, and every served selection is bit-identical to a
solo :func:`~repro.core.quest.run_quest` of the same circuit/config,
because sharing is keyed by the content-addressed entry key that pins
the synthesis seed.

Robustness model (the reason this module exists):

* **Bounded admission** — :class:`~repro.service.scheduler.FairScheduler`
  holds at most ``capacity`` queued jobs; overload produces immediate
  structured rejections, never unbounded memory or a deadlock.
* **Weighted-fair scheduling** — per-tenant stride scheduling with
  quotas; a noisy tenant cannot starve the rest.
* **Deadline propagation** — a client's relative deadline is stored as
  an *absolute* wall-clock instant and, at execution time, the
  remaining budget wraps the whole pipeline via
  :func:`repro.resilience.deadline.block_deadline`, so the cooperative
  deadline checks inside synthesis/instantiation loops enforce it.
  A job whose deadline lapses while queued fails structurally without
  burning a worker.
* **Circuit breaker + graceful degradation** — consecutive jobs that
  trip worker-pool recycles (or fail outright) open a
  :class:`~repro.service.breaker.CircuitBreaker`; while it is open,
  jobs run the *degraded* path — inline exact block synthesis, no
  approximation search — returning a correct, ε=0-certified circuit
  flagged ``degraded`` instead of an error.
* **Crash safety** — every job transition is journaled in the
  :class:`~repro.service.ledger.JobLedger` (atomic rename + checksum),
  and every job owns a run-journal checkpoint directory.  A SIGKILLed
  daemon warm-restarts: pending/running jobs are re-admitted and resume
  from their per-job checkpoints, bit-identically.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.batch.driver import BatchResources
from repro.batch.workqueue import InflightRegistry
from repro.circuits import circuit_from_qasm, circuit_to_qasm
from repro.core.pool import exact_pool
from repro.core.quest import QuestConfig, QuestResult, run_quest
from repro.exceptions import (
    AdmissionRejected,
    BlockTimeoutError,
    ReproError,
    ServiceError,
)
from repro.observability import MetricsRegistry, get_logger
from repro.parallel.cache import PoolCache
from repro.parallel.pool_manager import PersistentWorkerPool
from repro.partition.blocks import stitch_blocks
from repro.partition.scan import scan_partition
from repro.resilience.deadline import block_deadline
from repro.service.breaker import CircuitBreaker
from repro.service.ledger import JobLedger
from repro.service.protocol import (
    JOB_DONE,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    PROTOCOL_VERSION,
    REJECT_INVALID_REQUEST,
    TERMINAL_STATES,
    JobRecord,
    decode_message,
    encode_message,
    merge_config,
    rejection_to_message,
)
from repro.service.scheduler import FairScheduler
from repro.store import StoreError, namespace_for_tenant, validate_namespace
from repro.transpile.basis import lower_to_basis
from repro.verify.certifier import claims_for_choice, claims_to_manifest

_log = get_logger("service.server")

#: Cap on one wire frame (QASM payloads are text; 32 MiB is generous).
MAX_MESSAGE_BYTES = 32 * 1024 * 1024


def result_payload(
    result: QuestResult, config: QuestConfig, *, degraded: bool = False
) -> dict:
    """JSON-ready terminal payload of a successful compile.

    Carries everything the bit-identity tests compare against a solo
    run (choices, bounds, CNOT counts, QASM of every selected circuit)
    plus the per-circuit Σε claims manifests — the certificate the
    service exists to hand out.
    """
    claims = [
        claims_to_manifest(
            claims_for_choice(result.pools, choice),
            block_qubits=config.max_block_qubits,
        )
        for choice in result.selection.choices
    ]
    return {
        "circuits": [circuit_to_qasm(c) for c in result.circuits],
        "claims": claims,
        "choices": [[int(i) for i in choice] for choice in result.selection.choices],
        "bounds": [float(b) for b in result.selection.bounds],
        "cnot_counts": list(result.cnot_counts),
        "original_cnot_count": result.original_cnot_count,
        "threshold": float(result.threshold),
        "degraded": degraded,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "dedup_joins": result.dedup_joins,
        "checkpoint_hits": result.checkpoint_hits,
        "summary": result.summary(),
    }


class QuestService:
    """One daemon: socket front end, fair queue, shared substrate."""

    def __init__(
        self,
        socket_path: str | os.PathLike,
        ledger_dir: str | os.PathLike,
        config: QuestConfig | None = None,
        *,
        capacity: int = 64,
        max_concurrency: int = 2,
        tenant_weights: dict[str, float] | None = None,
        tenant_quotas: dict[str, int] | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_seconds: float = 30.0,
        clock=time.time,
        fault_injector=None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.socket_path = str(socket_path)
        self.config = config or QuestConfig()
        self.ledger = JobLedger(ledger_dir)
        self.scheduler = FairScheduler(
            capacity,
            tenant_weights=tenant_weights,
            tenant_quotas=tenant_quotas,
        )
        self.breaker = CircuitBreaker(
            breaker_threshold, breaker_cooldown_seconds
        )
        self.max_concurrency = int(max_concurrency)
        self._clock = clock
        #: Deterministic fault schedule threaded into every job's
        #: pipeline (tests/CI only; see :mod:`repro.resilience.faults`).
        self.fault_injector = fault_injector
        self.metrics = MetricsRegistry()

        # The shared substrate — one worker pool and one in-flight
        # registry for the daemon's lifetime, plus one PoolCache *per
        # tenant namespace*, all rooted in one sharded artifact store
        # that any number of replicas may share.
        self._store_root = self.config.store_dir or self.config.cache_dir
        self._caches: dict[str, PoolCache] = {}
        self._caches_lock = threading.Lock()
        worker_pool = (
            PersistentWorkerPool(self.config.workers)
            if self.config.workers > 1
            else None
        )
        self.resources = BatchResources(
            cache=(
                self._cache_for(self.config.namespace)
                if self.config.cache
                else None
            ),
            worker_pool=worker_pool,
            inflight=InflightRegistry(),
        )

        self._jobs: dict[str, JobRecord] = {}
        self._job_events: dict[str, asyncio.Event] = {}
        self._next_job_number = 0
        self._active = 0
        self._degraded_jobs = 0
        self._started_at = 0.0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._stopping = False
        self._stopped = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._job_executor = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="quest-service",
        )

        self._recover_ledger()

    # ------------------------------------------------------------------
    # Tenant namespaces
    # ------------------------------------------------------------------
    def _cache_for(self, namespace: str) -> PoolCache:
        """The (lazily created) pool cache of one tenant namespace.

        Every namespace gets its own memory tier and its own
        per-namespace quota inside the shared store root, so tenants
        never observe each other's artifacts and one tenant's traffic
        cannot evict another's.
        """
        with self._caches_lock:
            cache = self._caches.get(namespace)
            if cache is None:
                cache = PoolCache(
                    self._store_root,
                    max_entries=self.config.cache_max_entries,
                    namespace=namespace,
                )
                self._caches[namespace] = cache
            return cache

    def _resources_for(self, record: JobRecord) -> BatchResources:
        """The substrate view a job runs on: shared pool + registry,
        tenant-scoped cache."""
        if not self.config.cache:
            return self.resources
        namespace = record.namespace or namespace_for_tenant(record.tenant)
        return BatchResources(
            cache=self._cache_for(namespace),
            worker_pool=self.resources.worker_pool,
            inflight=self.resources.inflight,
        )

    # ------------------------------------------------------------------
    # Warm restart
    # ------------------------------------------------------------------
    def _recover_ledger(self) -> None:
        """Load every journaled job; re-admit the unfinished ones.

        ``running`` jobs were interrupted mid-execution (the previous
        daemon died); they go back to ``pending`` and, when dispatched,
        ``run_quest`` resumes from the job's checkpoint directory —
        completed blocks are not re-synthesized and the final selection
        is bit-identical.  Terminal jobs stay answerable to late
        ``wait`` calls.
        """
        recovered = 0
        for record in self.ledger.load_all():
            self._jobs[record.job_id] = record
            number = self._parse_job_number(record.job_id)
            if number is not None:
                self._next_job_number = max(self._next_job_number, number + 1)
            if record.state in TERMINAL_STATES:
                continue
            if record.state == JOB_RUNNING:
                record.state = JOB_PENDING
                self.ledger.store(record)
            rejection = self.scheduler.admit(record)
            if rejection is not None:
                # Capacity shrank across the restart; fail structurally
                # rather than drop silently.
                self._finish(record, error={
                    "kind": rejection.reason,
                    "message": str(rejection),
                })
                continue
            recovered += 1
        if recovered:
            _log.info(f"warm restart: re-admitted {recovered} job(s)")
            self.metrics.inc("service.recovered_jobs", recovered)

    @staticmethod
    def _parse_job_number(job_id: str) -> int | None:
        if job_id.startswith("job") and job_id[3:].isdigit():
            return int(job_id[3:])
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._started_at = self._clock()
        path = Path(self.socket_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=self.socket_path,
            limit=MAX_MESSAGE_BYTES,
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        _log.info(
            f"serving on {self.socket_path} "
            f"(capacity={self.scheduler.capacity}, "
            f"concurrency={self.max_concurrency}, "
            f"workers={self.config.workers})"
        )

    async def run(self) -> None:
        """Serve until :meth:`shutdown` (or SIGTERM/SIGINT) completes."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.shutdown()),
                )
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting, finish running jobs, exit.

        Queued-but-unstarted jobs stay ``pending`` in the ledger — the
        next daemon start re-admits them, so a drain loses nothing.
        """
        if self._stopping:
            return
        self._stopping = True
        _log.info("shutdown: draining")
        leftover = self.scheduler.drain()
        # Already journaled as pending at admission; nothing to rewrite,
        # but wake any waiters' timeout paths by leaving state as-is.
        del leftover
        if self._wake is not None:
            self._wake.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let in-flight jobs finish (they hold ledger state regardless).
        while self._active > 0:
            await asyncio.sleep(0.02)
        self._job_executor.shutdown(wait=True)
        if self.resources.worker_pool is not None:
            self.resources.worker_pool.shutdown()
        with contextlib.suppress(OSError):
            Path(self.socket_path).unlink()
        self._stopped.set()
        _log.info("shutdown complete")

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._stopping:
            self._wake.clear()
            dispatched = False
            while self._active < self.max_concurrency:
                job = self.scheduler.next_job()
                if job is None:
                    break
                dispatched = True
                self._active += 1
                future = self._loop.run_in_executor(
                    self._job_executor, self._execute_job, job
                )
                future.add_done_callback(self._job_finished_callback)
            if not dispatched and not self._stopping:
                await self._wake.wait()

    def _job_finished_callback(self, future) -> None:
        # Runs on the loop thread (run_in_executor futures call back
        # through the loop), so plain attribute updates are safe.
        self._active -= 1
        exc = future.exception()
        if exc is not None:  # pragma: no cover - _execute_job catches
            _log.error(f"job runner raised unexpectedly: {exc!r}")
        if self._wake is not None:
            self._wake.set()

    def _signal_waiters(self, job_id: str) -> None:
        """Wake wait handlers for ``job_id`` (thread-safe)."""
        if self._loop is None:
            return
        def _set() -> None:
            event = self._job_events.get(job_id)
            if event is not None:
                event.set()
        self._loop.call_soon_threadsafe(_set)

    # ------------------------------------------------------------------
    # Job execution (worker threads)
    # ------------------------------------------------------------------
    def _finish(
        self,
        record: JobRecord,
        *,
        result: dict | None = None,
        error: dict | None = None,
        degraded: bool = False,
    ) -> None:
        record.state = JOB_DONE if error is None else JOB_FAILED
        record.result = result
        record.error = error
        record.degraded = degraded
        self.ledger.store(record)
        latency = self._clock() - record.submitted_at
        self.metrics.observe("service.latency_seconds", max(latency, 0.0))
        self.metrics.observe(
            f"service.latency_seconds.{record.tenant}", max(latency, 0.0)
        )
        self.metrics.inc(
            "service.jobs_done" if error is None else "service.jobs_failed"
        )
        if degraded:
            self._degraded_jobs += 1
            self.metrics.inc("service.jobs_degraded")
        self._signal_waiters(record.job_id)

    def _execute_job(self, record: JobRecord) -> None:
        """Run one job to a terminal state.  Never raises."""
        try:
            record.state = JOB_RUNNING
            record.attempts += 1
            self.ledger.store(record)

            remaining = record.deadline_remaining(self._clock())
            if remaining is not None and remaining <= 0:
                self._finish(record, error={
                    "kind": "deadline_expired",
                    "message": "deadline expired before execution started",
                })
                return

            try:
                config = merge_config(self.config, record.config_overrides)
                circuit = circuit_from_qasm(record.qasm)
            except ReproError as exc:
                self._finish(record, error={
                    "kind": REJECT_INVALID_REQUEST,
                    "message": str(exc),
                })
                return

            if self.breaker.allow_full_path():
                self._run_full(record, circuit, config, remaining)
            else:
                self._run_degraded(record, circuit, config)
        except BaseException as exc:  # noqa: BLE001 - daemon must survive
            _log.error(
                f"job {record.job_id}: unexpected failure: {exc!r}"
            )
            self._finish(record, error={
                "kind": "internal",
                "message": repr(exc),
            })

    def _run_full(
        self,
        record: JobRecord,
        circuit,
        config: QuestConfig,
        remaining: float | None,
    ) -> None:
        pool = self.resources.worker_pool
        recycles_before = pool.recycles if pool is not None else 0
        try:
            with block_deadline(remaining):
                result = run_quest(
                    circuit,
                    config,
                    checkpoint_dir=str(
                        self.ledger.checkpoint_dir(record.job_id)
                    ),
                    resume=True,
                    fault_injector=self.fault_injector,
                    shared=self._resources_for(record),
                )
        except BlockTimeoutError as exc:
            self.breaker.record_failure()
            self._finish(record, error={
                "kind": "deadline_expired",
                "message": str(exc),
            })
            return
        except ReproError as exc:
            self.breaker.record_failure()
            self._finish(record, error={
                "kind": type(exc).__name__,
                "message": str(exc),
            })
            return
        recycles_after = pool.recycles if pool is not None else 0
        if recycles_after > recycles_before:
            # The job finished, but only by recycling wedged workers —
            # that is the breaker's failure signal.
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        if result.metrics:
            self.metrics.merge(result.metrics)
        self._finish(record, result=result_payload(result, config))

    def _run_degraded(self, record: JobRecord, circuit, config) -> None:
        """Exact-block fallback: correct, fast, flagged.

        Partition + singleton exact pools + stitch reassembles the
        baseline circuit without touching the worker pool — every block
        claim is ε=0, so the Σε certificate is trivially honest and the
        client learns via ``degraded`` that no approximation search ran.
        """
        baseline = lower_to_basis(circuit.without_measurements())
        blocks = scan_partition(baseline, config.max_block_qubits)
        pools = [exact_pool(block) for block in blocks]
        chosen = [
            pool.block.with_circuit(pool.candidates[0].circuit)
            for pool in pools
        ]
        stitched = stitch_blocks(chosen, baseline.num_qubits)
        choice = [0] * len(pools)
        claims = claims_to_manifest(
            claims_for_choice(pools, choice),
            block_qubits=config.max_block_qubits,
        )
        payload = {
            "circuits": [circuit_to_qasm(stitched)],
            "claims": [claims],
            "choices": [choice],
            "bounds": [0.0],
            "cnot_counts": [stitched.cnot_count()],
            "original_cnot_count": baseline.cnot_count(),
            "threshold": config.threshold_per_block * len(blocks),
            "degraded": True,
            "cache_hits": 0,
            "cache_misses": 0,
            "dedup_joins": 0,
            "checkpoint_hits": 0,
            "summary": (
                f"degraded: exact reassembly, {len(blocks)} blocks, "
                f"{stitched.cnot_count()} CNOTs (breaker open)"
            ),
        }
        self._finish(record, result=payload, degraded=True)

    # ------------------------------------------------------------------
    # Connection handling (event loop)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Shutdown closes the server, which cancels live handlers;
            # swallowing the cancellation here keeps drain logs clean.
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
            # wait_closed can itself be interrupted by the same
            # cancellation (suppress(Exception) misses BaseException).
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, OSError):
                break
            if not line:
                break
            if len(line) > MAX_MESSAGE_BYTES:
                writer.write(encode_message({
                    "type": "error",
                    "message": "message too large",
                }))
                break
            try:
                message = decode_message(line)
                response = await self._handle_message(message)
            except ServiceError as exc:
                response = {"type": "error", "message": str(exc)}
            writer.write(encode_message(response))
            await writer.drain()

    async def _handle_message(self, message: dict) -> dict:
        kind = message["type"]
        if kind == "submit":
            return self._handle_submit(message)
        if kind == "wait":
            return await self._handle_wait(message)
        if kind == "status":
            return self._handle_status()
        if kind == "shutdown":
            asyncio.ensure_future(self.shutdown())
            return {"type": "ok", "version": PROTOCOL_VERSION}
        raise ServiceError(f"unknown message type {kind!r}")

    def _handle_submit(self, message: dict) -> dict:
        qasm = message.get("qasm")
        if not isinstance(qasm, str) or not qasm.strip():
            return rejection_to_message(AdmissionRejected(
                REJECT_INVALID_REQUEST, "submit needs a non-empty 'qasm'",
            ))
        tenant = str(message.get("tenant") or "default")
        namespace = message.get("namespace")
        if namespace is None:
            namespace = namespace_for_tenant(tenant)
        else:
            try:
                namespace = validate_namespace(str(namespace))
            except StoreError as exc:
                self.metrics.inc("service.rejected_invalid")
                return rejection_to_message(AdmissionRejected(
                    REJECT_INVALID_REQUEST, str(exc), tenant=tenant,
                ))
        overrides = message.get("config") or {}
        try:
            merge_config(self.config, overrides)
        except ServiceError as exc:
            self.metrics.inc("service.rejected_invalid")
            return rejection_to_message(AdmissionRejected(
                REJECT_INVALID_REQUEST, str(exc), tenant=tenant,
            ))
        deadline_seconds = message.get("deadline_seconds")
        deadline_at = None
        if deadline_seconds is not None:
            try:
                deadline_at = self._clock() + float(deadline_seconds)
            except (TypeError, ValueError):
                return rejection_to_message(AdmissionRejected(
                    REJECT_INVALID_REQUEST,
                    f"bad deadline_seconds {deadline_seconds!r}",
                    tenant=tenant,
                ))
        job_id = f"job{self._next_job_number:06d}"
        self._next_job_number += 1
        record = JobRecord(
            job_id=job_id,
            tenant=tenant,
            qasm=qasm,
            config_overrides=dict(overrides),
            namespace=namespace,
            submitted_at=self._clock(),
            deadline_at=deadline_at,
        )
        rejection = self.scheduler.admit(record)
        if rejection is not None:
            self.metrics.inc(f"service.rejected_{rejection.reason}")
            return rejection_to_message(rejection)
        # Journal *after* admission: a rejected job leaves no trace.
        self.ledger.store(record)
        self._jobs[job_id] = record
        self.metrics.inc("service.jobs_admitted")
        self.metrics.gauge("service.queue_depth", self.scheduler.depth)
        assert self._wake is not None
        self._wake.set()
        return {
            "type": "accepted",
            "version": PROTOCOL_VERSION,
            "job_id": job_id,
            "queue_depth": self.scheduler.depth,
        }

    async def _handle_wait(self, message: dict) -> dict:
        job_id = str(message.get("job_id", ""))
        record = self._jobs.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        timeout = message.get("timeout_seconds")
        if record.state not in TERMINAL_STATES:
            event = self._job_events.setdefault(job_id, asyncio.Event())
            try:
                await asyncio.wait_for(
                    event.wait(),
                    None if timeout is None else float(timeout),
                )
            except asyncio.TimeoutError:
                return {
                    "type": "result",
                    "version": PROTOCOL_VERSION,
                    "job_id": job_id,
                    "state": record.state,
                    "timed_out": True,
                }
        return {
            "type": "result",
            "version": PROTOCOL_VERSION,
            "job_id": job_id,
            "state": record.state,
            "degraded": record.degraded,
            "attempts": record.attempts,
            "result": record.result,
            "error": record.error,
        }

    def _store_status(self) -> dict:
        """Per-namespace cache/store counters for ``service-status``.

        ``hits``/``misses``/``corrupt_entries`` are cache-level (memory
        + disk probes); ``disk_hits``/``disk_misses``/``evictions``/
        ``publishes`` are the sharded store tier alone, so a nonzero
        ``disk_hits`` on a freshly started replica means entries
        published by *another* replica were served from the shared root.
        """
        with self._caches_lock:
            caches = dict(self._caches)
        report: dict[str, dict] = {}
        for namespace, cache in sorted(caches.items()):
            entry = {
                "hits": cache.hits,
                "misses": cache.misses,
                "corrupt_entries": cache.corrupt_entries,
                "evictions": cache.evictions,
            }
            if cache.store is not None:
                store_counters = cache.store.counters()
                entry["disk_hits"] = store_counters["hits"]
                entry["disk_misses"] = store_counters["misses"]
                entry["publishes"] = store_counters["publishes"]
                entry["orphans_swept"] = store_counters["orphans_swept"]
            report[namespace] = entry
        return report

    def _handle_status(self) -> dict:
        jobs_by_state: dict[str, int] = {}
        for record in self._jobs.values():
            jobs_by_state[record.state] = jobs_by_state.get(record.state, 0) + 1
        self.metrics.gauge("service.queue_depth", self.scheduler.depth)
        for tenant, depth in self.scheduler.depths().items():
            self.metrics.gauge(f"service.queue_depth.{tenant}", depth)
        return {
            "type": "status",
            "version": PROTOCOL_VERSION,
            "healthy": True,
            "ready": not self._stopping and not self.scheduler.draining,
            "uptime_seconds": max(self._clock() - self._started_at, 0.0),
            "queue_depth": self.scheduler.depth,
            "capacity": self.scheduler.capacity,
            "active_jobs": self._active,
            "max_concurrency": self.max_concurrency,
            "jobs_by_state": jobs_by_state,
            "admitted": self.scheduler.admitted,
            "rejected": dict(self.scheduler.rejected),
            "degraded_jobs": self._degraded_jobs,
            "tenants": self.scheduler.tenant_summary(),
            "breaker": self.breaker.snapshot(),
            "ledger": {
                "directory": str(self.ledger.directory),
                "corrupt_entries": self.ledger.corrupt_entries,
            },
            "stranded_joiners": self.resources.inflight.stranded_joiners,
            "store": {
                "root": (
                    None if self._store_root is None
                    else str(self._store_root)
                ),
                "namespaces": self._store_status(),
            },
            "metrics": self.metrics.snapshot(),
        }


def serve(
    socket_path: str,
    ledger_dir: str,
    config: QuestConfig | None = None,
    **kwargs,
) -> None:
    """Blocking entry point used by ``python -m repro serve``."""
    service = QuestService(socket_path, ledger_dir, config, **kwargs)
    asyncio.run(service.run())
