"""Circuit breaker guarding the shared worker pool.

A worker pool that keeps getting recycled (hung or killed workers force
``PersistentWorkerPool`` to tear down and respawn its processes) is a
sign that full-quality synthesis is currently not viable — maybe the
machine is out of memory, maybe a native library is wedged.  Letting
every queued job walk into the same failure burns each client's
deadline on work that will not finish.

The breaker watches *job-level* outcomes: after each job the daemon
reports whether the job tripped pool recycles (or failed outright).
``failure_threshold`` consecutive bad jobs open the breaker; while it is
OPEN the daemon routes jobs to the degraded path — inline exact block
synthesis, no worker pool, no approximation search — which always
terminates and is flagged ``degraded`` in the result rather than
silently passed off as full QUEST output.  After ``cooldown_seconds``
the breaker goes HALF_OPEN and lets exactly one probe job try the full
path; success closes the breaker, failure reopens it for another
cooldown.

States follow the classic pattern:

    CLOSED --(threshold consecutive failures)--> OPEN
    OPEN --(cooldown elapsed)--> HALF_OPEN   (one probe allowed)
    HALF_OPEN --success--> CLOSED
    HALF_OPEN --failure--> OPEN

The clock is injectable (monotonic by default) so tests can step time.
"""

from __future__ import annotations

import threading
import time

from repro.observability import get_logger, get_metrics, get_tracer

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with cooldown probing."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        *,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_out = False
        #: Lifetime transition counters (status endpoint).
        self.times_opened = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._maybe_half_open()

    def _maybe_half_open(self) -> str:
        # Caller holds the lock.  OPEN lazily decays to HALF_OPEN once
        # the cooldown elapses — no background timer thread needed.
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = HALF_OPEN
            self._probe_out = False
        return self._state

    def allow_full_path(self) -> bool:
        """Whether the next job may use the full (worker-pool) path.

        CLOSED: yes.  OPEN: no.  HALF_OPEN: yes for exactly one caller
        (the probe); concurrent callers are held to the degraded path
        until the probe reports back.
        """
        with self._lock:
            state = self._maybe_half_open()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_out:
                self._probe_out = True
                return True
            return False

    def record_success(self) -> None:
        """A full-path job completed without tripping the pool."""
        with self._lock:
            previous = self._state
            self._consecutive_failures = 0
            self._probe_out = False
            self._state = CLOSED
        if previous != CLOSED:
            self._note_transition(previous, CLOSED)

    def record_failure(self) -> None:
        """A full-path job tripped pool recycles or failed to finish."""
        with self._lock:
            previous = self._maybe_half_open()
            self._consecutive_failures += 1
            self._probe_out = False
            if previous == HALF_OPEN or (
                previous == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self.times_opened += 1
            new = self._state
        if new == OPEN and previous != OPEN:
            self._note_transition(previous, OPEN)

    def _note_transition(self, previous: str, new: str) -> None:
        get_logger("service.breaker").warning(
            f"circuit breaker {previous} -> {new}"
        )
        tracer = get_tracer()
        if tracer.is_enabled:
            tracer.event("breaker.transition", previous=previous, new=new)
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc(f"breaker.to_{new}")

    def snapshot(self) -> dict:
        """Status-endpoint view of the breaker."""
        with self._lock:
            state = self._maybe_half_open()
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "times_opened": self.times_opened,
            }
