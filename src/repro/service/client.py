"""Synchronous client for the compilation daemon.

One :class:`ServiceClient` call = one short-lived Unix-socket
connection + one request/response exchange.  Deliberately synchronous
(plain ``socket``): the callers are CLI subcommands, tests, and
benchmark threads, none of which live inside an event loop — and a
sync client exercises the daemon exactly the way a foreign-language
client would.

Admission rejections come back as the same structured
:class:`~repro.exceptions.AdmissionRejected` the server's scheduler
produced, so a caller's backoff logic works identically in-process and
over the wire.
"""

from __future__ import annotations

import socket
import time

from repro.exceptions import AdmissionRejected, ServiceError
from repro.service.protocol import (
    JOB_FAILED,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    decode_message,
    encode_message,
    rejection_from_message,
)


class ServiceClient:
    """Talks to one daemon at ``socket_path``."""

    def __init__(
        self, socket_path: str, *, connect_timeout: float = 10.0
    ) -> None:
        self.socket_path = str(socket_path)
        self.connect_timeout = float(connect_timeout)

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _request(self, message: dict, timeout: float | None) -> dict:
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(self.socket_path)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach daemon at {self.socket_path}: {exc}"
            ) from exc
        try:
            sock.settimeout(timeout)
            sock.sendall(encode_message(message))
            reply = self._read_line(sock)
        except socket.timeout as exc:
            raise ServiceError(
                f"daemon did not reply within {timeout}s"
            ) from exc
        except OSError as exc:
            raise ServiceError(f"connection to daemon failed: {exc}") from exc
        finally:
            sock.close()
        response = decode_message(reply)
        if response["type"] == "rejected":
            raise rejection_from_message(response)
        if response["type"] == "error":
            raise ServiceError(
                str(response.get("message", "daemon reported an error"))
            )
        return response

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        line = b"".join(chunks)
        if not line:
            raise ServiceError("daemon closed the connection mid-reply")
        return line

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def submit(
        self,
        qasm: str,
        *,
        config: dict | None = None,
        tenant: str = "default",
        namespace: str | None = None,
        deadline_seconds: float | None = None,
        timeout: float | None = 30.0,
    ) -> str:
        """Submit one compile job; returns its job id.

        ``namespace`` pins the artifact-store namespace the job's cache
        traffic is scoped to (default: derived from ``tenant``).

        Raises :class:`AdmissionRejected` (structured) when the daemon
        refuses the job, :class:`ServiceError` on transport problems.
        """
        message = {
            "type": "submit",
            "version": PROTOCOL_VERSION,
            "qasm": qasm,
            "config": config or {},
            "tenant": tenant,
            "deadline_seconds": deadline_seconds,
        }
        if namespace is not None:
            message["namespace"] = namespace
        response = self._request(message, timeout)
        if response["type"] != "accepted":
            raise ServiceError(
                f"unexpected submit reply type {response['type']!r}"
            )
        return str(response["job_id"])

    def wait(self, job_id: str, *, timeout: float | None = None) -> dict:
        """Block until ``job_id`` is terminal; returns the result message.

        The reply carries ``state`` / ``result`` / ``error`` /
        ``degraded``; with a timeout, a non-terminal job comes back with
        ``timed_out: true`` instead of raising.
        """
        wire_timeout = None if timeout is None else timeout + 5.0
        return self._request(
            {
                "type": "wait",
                "version": PROTOCOL_VERSION,
                "job_id": job_id,
                "timeout_seconds": timeout,
            },
            wire_timeout,
        )

    def status(self, *, timeout: float | None = 10.0) -> dict:
        """Health/readiness/queue-depth/metrics snapshot."""
        return self._request(
            {"type": "status", "version": PROTOCOL_VERSION}, timeout
        )

    def shutdown(self, *, timeout: float | None = 10.0) -> None:
        """Ask the daemon to drain gracefully."""
        self._request(
            {"type": "shutdown", "version": PROTOCOL_VERSION}, timeout
        )

    def submit_and_wait(
        self,
        qasm: str,
        *,
        config: dict | None = None,
        tenant: str = "default",
        namespace: str | None = None,
        deadline_seconds: float | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Submit + wait; returns the compile payload dict.

        Raises :class:`ServiceError` if the job fails (the structured
        error's kind/message are folded into the exception text) or if
        it is still running when ``timeout`` lapses.
        """
        job_id = self.submit(
            qasm,
            config=config,
            tenant=tenant,
            namespace=namespace,
            deadline_seconds=deadline_seconds,
        )
        reply = self.wait(job_id, timeout=timeout)
        state = reply.get("state")
        if state not in TERMINAL_STATES:
            raise ServiceError(
                f"job {job_id} still {state!r} after {timeout}s"
            )
        if state == JOB_FAILED:
            error = reply.get("error") or {}
            raise ServiceError(
                f"job {job_id} failed "
                f"({error.get('kind', 'unknown')}): "
                f"{error.get('message', 'no detail')}"
            )
        payload = reply.get("result") or {}
        payload["job_id"] = job_id
        payload["degraded"] = bool(reply.get("degraded"))
        return payload

    def wait_until_ready(self, timeout: float = 30.0) -> dict:
        """Poll ``status`` until the daemon is up and ready.

        For scripts/tests that just started a daemon process: retries
        connection errors until ``timeout``, then re-raises.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                status = self.status(timeout=5.0)
                if status.get("ready"):
                    return status
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"daemon at {self.socket_path} not ready "
                    f"within {timeout}s"
                )
            time.sleep(0.05)


__all__ = ["ServiceClient", "AdmissionRejected"]
