"""QUEST-as-a-service: the crash-safe async compilation daemon.

The service layer turns the library into a long-lived daemon
(``python -m repro serve``) with bounded admission, weighted-fair
multi-tenant scheduling, client deadline propagation, a circuit breaker
with graceful degradation, and a crash-safe job ledger enabling
warm restarts that resume mid-flight jobs bit-identically.

Modules
-------
:mod:`repro.service.protocol`
    Wire messages, the :class:`JobRecord` job model, config-override
    validation.
:mod:`repro.service.scheduler`
    Bounded admission + stride-based weighted-fair queueing.
:mod:`repro.service.breaker`
    The worker-pool circuit breaker (closed/open/half-open).
:mod:`repro.service.ledger`
    Atomic, checksummed job journal + per-job checkpoint directories.
:mod:`repro.service.server`
    The asyncio daemon itself.
:mod:`repro.service.client`
    Synchronous Unix-socket client (CLI, tests, benchmarks).
"""

from repro.service.breaker import CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.ledger import JobLedger
from repro.service.protocol import (
    JOB_DONE,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    PROTOCOL_VERSION,
    REJECTION_REASONS,
    TERMINAL_STATES,
    JobRecord,
    merge_config,
)
from repro.service.scheduler import FairScheduler
from repro.service.server import QuestService, serve

__all__ = [
    "CircuitBreaker",
    "FairScheduler",
    "JobLedger",
    "JobRecord",
    "QuestService",
    "ServiceClient",
    "serve",
    "merge_config",
    "PROTOCOL_VERSION",
    "REJECTION_REASONS",
    "JOB_PENDING",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "TERMINAL_STATES",
]
