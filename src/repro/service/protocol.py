"""Wire protocol and job model of the compilation service.

The daemon (:mod:`repro.service.server`) and client
(:mod:`repro.service.client`) speak newline-delimited JSON over a Unix
domain socket.  Every message is one JSON object with a ``type`` field:

Client -> server
    ``submit``  — QASM + config overrides + tenant + optional deadline;
    ``wait``    — block until a job reaches a terminal state;
    ``status``  — health / readiness / queue depths / metrics;
    ``shutdown``— begin graceful drain (used by tests and operators).

Server -> client
    ``accepted`` / ``rejected`` for a submit (rejection is *structured*:
    a reason from :data:`REJECTION_REASONS` plus queue context, mapping
    1:1 onto :class:`~repro.exceptions.AdmissionRejected`);
    ``result`` for a wait (terminal job state, approximations + per-block
    epsilon-claim manifests — the Σε certificate — and the ``degraded``
    flag); ``status`` / ``ok`` / ``error`` for the rest.

The job model (:class:`JobRecord`) is shared with the crash-safe ledger
(:mod:`repro.service.ledger`): everything in it is plain JSON so a
ledger entry survives interpreter versions, and the record alone is
enough to *re-run* the job (QASM text + config overrides + absolute
wall-clock deadline), which is what makes warm restart possible.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace

from repro.core.quest import QuestConfig
from repro.exceptions import AdmissionRejected, ServiceError

#: Bump on incompatible message-shape changes; both sides check it.
PROTOCOL_VERSION = 1

#: Job lifecycle states, persisted verbatim in the ledger.
JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_STATES = (JOB_PENDING, JOB_RUNNING, JOB_DONE, JOB_FAILED)
#: States a waiter can stop waiting on.
TERMINAL_STATES = (JOB_DONE, JOB_FAILED)

#: Structured admission verdicts (the ``rejected`` message's reason).
REJECT_QUEUE_FULL = "queue_full"
REJECT_TENANT_QUOTA = "tenant_quota"
REJECT_SHUTTING_DOWN = "shutting_down"
REJECT_INVALID_REQUEST = "invalid_request"
REJECT_DEADLINE_EXPIRED = "deadline_expired"
REJECTION_REASONS = (
    REJECT_QUEUE_FULL,
    REJECT_TENANT_QUOTA,
    REJECT_SHUTTING_DOWN,
    REJECT_INVALID_REQUEST,
    REJECT_DEADLINE_EXPIRED,
)

#: QuestConfig knobs a request may *not* override: they configure the
#: shared substrate (one pool, one store root, one registry for the
#: whole daemon) or are service-managed (per-job checkpoint dirs; the
#: store ``namespace``, which is set by the request's top-level
#: ``namespace``/``tenant`` fields, never through config overrides).
#: Allowing them per-request would silently fork the substrate under
#: one tenant.
SUBSTRATE_FIELDS = frozenset(
    {
        "workers",
        "cache",
        "cache_dir",
        "cache_max_entries",
        "store_dir",
        "namespace",
        "shm_transport",
        "shm_min_bytes",
        "checkpoint_dir",
    }
)

_CONFIG_FIELDS = {f.name for f in fields(QuestConfig)}


def merge_config(base: QuestConfig, overrides: dict | None) -> QuestConfig:
    """Apply a request's config overrides onto the daemon's base config.

    Unknown fields and substrate fields raise :class:`ServiceError`
    (surfaced to the client as an ``invalid_request`` rejection) instead
    of being silently dropped — a client that misspells a knob must hear
    about it at admission, not discover it in the results.
    """
    if not overrides:
        return base
    if not isinstance(overrides, dict):
        raise ServiceError(
            f"config overrides must be an object, got {type(overrides).__name__}"
        )
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    if unknown:
        raise ServiceError(f"unknown QuestConfig field(s): {', '.join(unknown)}")
    forbidden = sorted(set(overrides) & SUBSTRATE_FIELDS)
    if forbidden:
        raise ServiceError(
            "substrate-owned QuestConfig field(s) cannot be set per "
            f"request: {', '.join(forbidden)}"
        )
    return replace(base, **overrides)


@dataclass
class JobRecord:
    """One job's full state: request, lifecycle, and outcome.

    JSON-serializable end to end (:meth:`to_dict` / :meth:`from_dict`)
    so it round-trips through the ledger and, minus the QASM payload,
    through status responses.
    """

    job_id: str
    tenant: str
    qasm: str
    #: Request-level QuestConfig overrides (already validated).
    config_overrides: dict = field(default_factory=dict)
    #: Artifact-store namespace the job's cache traffic is scoped to.
    #: Empty means "derive from the tenant" (see
    #: :func:`repro.store.namespace_for_tenant`); persisted so a warm
    #: restart re-runs the job in the same namespace.
    namespace: str = ""
    state: str = JOB_PENDING
    #: Wall-clock epoch seconds of submission (for latency accounting).
    submitted_at: float = 0.0
    #: Absolute wall-clock deadline (epoch seconds), or None.  Stored
    #: absolute — not relative — so a warm restart keeps honoring the
    #: client's original budget rather than restarting the clock.
    deadline_at: float | None = None
    #: Terminal payload: the compile result (see ``result`` message) or
    #: a structured error {"kind": ..., "message": ...}.
    result: dict | None = None
    error: dict | None = None
    #: Whether the result was produced by the degraded (exact-block)
    #: path while the circuit breaker was open.
    degraded: bool = False
    #: Times the daemon started executing this job (a job interrupted by
    #: a crash and resumed after a warm restart counts 2).
    attempts: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ServiceError(
                f"job record has unknown field(s): {', '.join(sorted(unknown))}"
            )
        try:
            record = cls(**data)
        except TypeError as exc:
            raise ServiceError(f"malformed job record: {exc}") from exc
        if record.state not in JOB_STATES:
            raise ServiceError(f"job record has unknown state {record.state!r}")
        return record

    def deadline_remaining(self, now: float) -> float | None:
        """Seconds of client budget left at ``now``; None = unbounded."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - now


def rejection_to_message(rejection: AdmissionRejected) -> dict:
    """The ``rejected`` wire message for an admission verdict."""
    return {
        "type": "rejected",
        "version": PROTOCOL_VERSION,
        "reason": rejection.reason,
        "detail": rejection.detail,
        "tenant": rejection.tenant,
        "queue_depth": rejection.queue_depth,
        "capacity": rejection.capacity,
        "retry_after_seconds": rejection.retry_after_seconds,
    }


def rejection_from_message(message: dict) -> AdmissionRejected:
    """Rebuild the structured exception from a ``rejected`` message."""
    return AdmissionRejected(
        str(message.get("reason", "unknown")),
        str(message.get("detail", "")),
        tenant=message.get("tenant"),
        queue_depth=message.get("queue_depth"),
        capacity=message.get("capacity"),
        retry_after_seconds=message.get("retry_after_seconds"),
    )


def encode_message(message: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":"), default=str).encode() + b"\n"


def decode_message(line: bytes) -> dict:
    """Parse one wire frame; :class:`ServiceError` on garbage."""
    try:
        message = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"undecodable service message: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ServiceError("service message must be an object with a 'type'")
    return message
