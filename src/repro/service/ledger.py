"""Crash-safe job ledger: the daemon's durable source of truth.

Every admitted job gets one file, ``job-<id>.json``, holding a
checksummed envelope around the JSON :class:`~repro.service.protocol.
JobRecord` — the same atomic publish discipline as the run journal
(:mod:`repro.resilience.journal`): write temp, flush, ``fsync``,
``rename``, then fsync the directory.  A SIGKILL at any instant leaves
either the previous record or the new one, never a torn file under the
final name; an entry that *does* fail its checksum (bit rot, a partial
copy) is quarantined — counted, renamed aside, ignored — never trusted.

The ledger is what makes the daemon warm-restartable:

* every state transition (pending -> running -> done/failed) rewrites
  the record, so the on-disk state trails the in-memory state by at
  most one transition;
* each job owns a checkpoint directory (``job-<id>.ckpt/``) that
  :func:`repro.core.quest.run_quest` journals block pools into, so a
  job killed mid-run resumes from its completed blocks, bit-identically;
* :meth:`JobLedger.load` returns every readable record — the restarted
  daemon re-admits ``pending``/``running`` jobs and keeps terminal ones
  answerable to late ``wait`` calls.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.exceptions import ServiceError
from repro.observability import get_logger, get_metrics
from repro.resilience.journal import _atomic_write_bytes
from repro.service.protocol import JobRecord

#: Bump when the envelope layout changes; old entries are quarantined.
LEDGER_VERSION = 1

_ENTRY_PREFIX = "job-"
_ENTRY_SUFFIX = ".json"
_CHECKPOINT_SUFFIX = ".ckpt"


def _job_id_component(job_id: str) -> str:
    """Validate a job id for use as a filename component."""
    if (
        not job_id
        or len(job_id) > 128
        or any(c in job_id for c in "/\\\0")
        or job_id in (".", "..")
    ):
        raise ServiceError(f"invalid job id {job_id!r}")
    return job_id


class JobLedger:
    """Atomically journaled :class:`JobRecord` entries under one dir."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        #: Entries that existed but failed integrity checks.
        self.corrupt_entries = 0

    @property
    def directory(self) -> Path:
        return self._dir

    def _entry_path(self, job_id: str) -> Path:
        return self._dir / f"{_ENTRY_PREFIX}{_job_id_component(job_id)}{_ENTRY_SUFFIX}"

    def checkpoint_dir(self, job_id: str) -> Path:
        """The job's private run-journal directory (created lazily)."""
        return self._dir / f"{_ENTRY_PREFIX}{_job_id_component(job_id)}{_CHECKPOINT_SUFFIX}"

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def store(self, record: JobRecord) -> None:
        """Atomically publish ``record`` as its job's current state."""
        payload = json.dumps(
            record.to_dict(), separators=(",", ":"), sort_keys=True
        ).encode()
        envelope = {
            "version": LEDGER_VERSION,
            "job_id": record.job_id,
            "checksum": hashlib.sha256(payload).hexdigest(),
            "record": payload.decode(),
        }
        _atomic_write_bytes(
            self._entry_path(record.job_id),
            json.dumps(envelope, indent=1).encode(),
        )
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc("ledger.stores")

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _load_entry(self, path: Path) -> JobRecord | None:
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            envelope = json.loads(raw)
            if not isinstance(envelope, dict):
                raise ServiceError("ledger envelope is not an object")
            if envelope.get("version") != LEDGER_VERSION:
                raise ServiceError(
                    f"ledger version {envelope.get('version')!r} != {LEDGER_VERSION}"
                )
            payload = str(envelope.get("record", "")).encode()
            if hashlib.sha256(payload).hexdigest() != envelope.get("checksum"):
                raise ServiceError("ledger entry checksum mismatch")
            record = JobRecord.from_dict(json.loads(payload))
            expected = path.name[len(_ENTRY_PREFIX) : -len(_ENTRY_SUFFIX)]
            if record.job_id != expected:
                raise ServiceError(
                    f"ledger entry {path.name} holds job {record.job_id!r}"
                )
        except (ValueError, ServiceError) as exc:
            self._quarantine(path, exc)
            return None
        return record

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Count + set aside a corrupt entry so restart can proceed."""
        self.corrupt_entries += 1
        get_logger("service.ledger").warning(
            f"quarantining corrupt ledger entry {path.name}: {exc}"
        )
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc("ledger.quarantined")
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)

    def load(self, job_id: str) -> JobRecord | None:
        """Load one job's record; None = missing or quarantined."""
        return self._load_entry(self._entry_path(job_id))

    def load_all(self) -> list[JobRecord]:
        """Every readable record, ordered by submission time.

        Submission order matters on warm restart: re-admitting in the
        original order keeps the scheduler's fairness accounting close
        to what an uninterrupted daemon would have done.
        """
        records = []
        for path in sorted(self._dir.glob(f"{_ENTRY_PREFIX}*{_ENTRY_SUFFIX}")):
            record = self._load_entry(path)
            if record is not None:
                records.append(record)
        records.sort(key=lambda record: (record.submitted_at, record.job_id))
        return records
