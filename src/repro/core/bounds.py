"""The Sec. 3.8 process-distance upper bound.

Theorem (paper Eq. 6): for a circuit partitioned into K blocks whose
block approximations satisfy ``d(U_k, U_k') <= eps_k``, the full-circuit
HS distance obeys ``d(U, U') <= sum_k eps_k``.  The proof extends each
block unitary by identity (distance preserved) and applies the
Wang-Zhang trace inequality pairwise.

``verify_bound`` computes both sides on small circuits — the Fig. 7
experiment — and property-based tests assert the inequality holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.linalg.unitary import hs_distance
from repro.metrics.tolerances import BOUND_SLACK
from repro.partition.blocks import CircuitBlock, stitch_blocks


def total_bound(block_distances: list[float]) -> float:
    """Sum of block distances: the full-circuit distance upper bound."""
    return float(sum(block_distances))


@dataclass(frozen=True)
class BoundCheck:
    """Both sides of the Sec. 3.8 inequality for one approximation."""

    actual_distance: float
    upper_bound: float

    @property
    def holds(self) -> bool:
        """Whether the bound is respected (with float slack)."""
        return self.actual_distance <= self.upper_bound + BOUND_SLACK

    @property
    def tightness(self) -> float:
        """``actual / bound`` in [0, 1]; closer to 1 is tighter."""
        if self.upper_bound == 0.0:
            return 1.0
        return self.actual_distance / self.upper_bound


def verify_bound(
    original: Circuit,
    blocks: list[CircuitBlock],
    approximate_blocks: list[CircuitBlock],
) -> BoundCheck:
    """Evaluate bound vs. actual distance for one block-approximation set.

    Only feasible for circuits small enough to build the full unitary;
    the QUEST pipeline itself never calls this (that is the point of the
    bound), but Fig. 7 and the test suite do.
    """
    per_block = [
        hs_distance(a.unitary(), b.unitary())
        for a, b in zip(approximate_blocks, blocks)
    ]
    approx_full = stitch_blocks(approximate_blocks, original.num_qubits)
    actual = hs_distance(approx_full.unitary(), original.unitary())
    return BoundCheck(actual_distance=actual, upper_bound=total_bound(per_block))
