"""Ensemble evaluation: averaging the outputs of selected approximations.

QUEST's output for an algorithm is the pointwise mean of the output
distributions of its selected dissimilar approximations (paper Sec. 4.1,
"the output probability distributions of all of its approximate circuits
are averaged").
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SelectionError
from repro.metrics.distances import average_distributions
from repro.sim.statevector import ideal_distribution


def ensemble_distribution(
    circuits: list[Circuit],
    runner: Callable[[Circuit], np.ndarray] | None = None,
) -> np.ndarray:
    """Average the output distributions of ``circuits``.

    ``runner`` maps a circuit to its output distribution; the default is
    the ideal statevector simulator.  Pass a noisy runner (e.g. a
    ``run_density`` closure) to evaluate the ensemble under hardware
    noise.
    """
    if not circuits:
        raise SelectionError("cannot evaluate an empty ensemble")
    runner = runner or ideal_distribution
    return average_distributions([runner(c) for c in circuits])
