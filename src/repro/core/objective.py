"""Algorithm 1: the dual-annealing objective function.

Scores a full-circuit approximation (one candidate chosen per block):

* reject (score 1.0) if the summed block distances breach the process-
  distance threshold — the Sec. 3.8 upper bound standing in for the
  infeasible full-circuit distance;
* with no prior selections, score by normalized CNOT count alone;
* otherwise mix the fraction of already-selected samples this choice is
  similar to with the normalized CNOT count, weighted ``weight`` /
  ``1 - weight`` (0.5 each in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pool import BlockPool
from repro.core.similarity import BlockSimilarityTables
from repro.exceptions import SelectionError


@dataclass
class SelectionObjective:
    """Callable objective over integer choice vectors."""

    pools: list[BlockPool]
    threshold: float
    original_cnot_count: int
    weight: float = 0.5
    selected: list[np.ndarray] = field(default_factory=list)
    tables: BlockSimilarityTables = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.pools:
            raise SelectionError("no block pools")
        if not 0.0 <= self.weight <= 1.0:
            raise SelectionError(f"weight {self.weight} outside [0, 1]")
        if self.original_cnot_count <= 0:
            raise SelectionError("original circuit has no CNOTs to reduce")
        if self.tables is None:
            self.tables = BlockSimilarityTables(
                [[c.unitary for c in pool.candidates] for pool in self.pools],
                [pool.original_unitary for pool in self.pools],
            )
        self._cnots = [pool.cnot_counts() for pool in self.pools]
        self._distances = [pool.distances() for pool in self.pools]
        self._sizes = np.array([pool.size for pool in self.pools])

    @property
    def num_blocks(self) -> int:
        """Number of blocks (dimension of the search space)."""
        return len(self.pools)

    def bounds(self) -> list[tuple[float, float]]:
        """Continuous box bounds encoding the integer choice per block."""
        return [(0.0, size - 1e-9) for size in self._sizes]

    def decode(self, x: np.ndarray) -> np.ndarray:
        """Floor a continuous annealer point to an integer choice vector."""
        choice = np.floor(np.asarray(x)).astype(int)
        return np.clip(choice, 0, self._sizes - 1)

    def choice_cnot_count(self, choice: np.ndarray) -> int:
        """Total CNOTs of the stitched approximation."""
        return int(
            sum(self._cnots[b][choice[b]] for b in range(self.num_blocks))
        )

    def choice_bound(self, choice: np.ndarray) -> float:
        """Sec. 3.8 upper bound: sum of chosen block distances."""
        return float(
            sum(self._distances[b][choice[b]] for b in range(self.num_blocks))
        )

    def similarity_to_selected(self, choice: np.ndarray) -> float:
        """Fraction of already-selected samples similar to ``choice``."""
        if not self.selected:
            return 0.0
        total = sum(
            self.tables.similarity_fraction(choice, prior)
            for prior in self.selected
        )
        return total / len(self.selected)

    def __call__(self, x: np.ndarray) -> float:
        choice = self.decode(x)
        if self.choice_bound(choice) > self.threshold:
            return 1.0
        c_norm = self.choice_cnot_count(choice) / self.original_cnot_count
        if not self.selected:
            return c_norm
        m = self.similarity_to_selected(choice)
        return self.weight * m + (1.0 - self.weight) * c_norm
