"""Algorithm 1: the dual-annealing objective function.

Scores a full-circuit approximation (one candidate chosen per block):

* reject (score 1.0) if the summed block distances breach the process-
  distance threshold — the Sec. 3.8 upper bound standing in for the
  infeasible full-circuit distance;
* with no prior selections, score by normalized CNOT count alone;
* otherwise mix the fraction of already-selected samples this choice is
  similar to with the normalized CNOT count, weighted ``weight`` /
  ``1 - weight`` (0.5 each in the paper).

Per-block CNOT counts and distances are padded into
``(num_blocks, max_pool_size)`` matrices at construction, so both the
single-point accessors and the batched ``evaluate_batch`` entry point
are single fancy-indexed gathers instead of per-block Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pool import BlockPool
from repro.core.similarity import BlockSimilarityTables
from repro.exceptions import SelectionError


@dataclass
class SelectionObjective:
    """Callable objective over integer choice vectors."""

    pools: list[BlockPool]
    threshold: float
    original_cnot_count: int
    weight: float = 0.5
    selected: list[np.ndarray] = field(default_factory=list)
    tables: BlockSimilarityTables = None  # type: ignore[assignment]
    #: Points scored one at a time through ``__call__`` (the annealer's
    #: path) vs. points scored through ``evaluate_batch``.
    scalar_evaluations: int = 0
    batched_evaluations: int = 0

    def __post_init__(self) -> None:
        if not self.pools:
            raise SelectionError("no block pools")
        if not 0.0 <= self.weight <= 1.0:
            raise SelectionError(f"weight {self.weight} outside [0, 1]")
        if self.original_cnot_count <= 0:
            raise SelectionError("original circuit has no CNOTs to reduce")
        if self.tables is None:
            self.tables = BlockSimilarityTables(
                [pool.unitary_stack() for pool in self.pools],
                [pool.original_unitary for pool in self.pools],
            )
        self._sizes = np.array([pool.size for pool in self.pools])
        # Padded per-block tables: row b holds pool b's candidate values,
        # padded to the widest pool.  Distance padding is +inf (a padded
        # index, were one ever gathered, scores infeasible); CNOT padding
        # is 0 and unreachable because choices are clipped to pool sizes.
        max_size = int(self._sizes.max())
        self._cnot_matrix = np.zeros((len(self.pools), max_size), dtype=np.int64)
        self._distance_matrix = np.full((len(self.pools), max_size), np.inf)
        for b, pool in enumerate(self.pools):
            self._cnot_matrix[b, : pool.size] = pool.cnot_counts()
            self._distance_matrix[b, : pool.size] = pool.distances()
        self._block_index = np.arange(len(self.pools))

    @property
    def num_blocks(self) -> int:
        """Number of blocks (dimension of the search space)."""
        return len(self.pools)

    def bounds(self) -> list[tuple[float, float]]:
        """Continuous box bounds encoding the integer choice per block."""
        return [(0.0, size - 1e-9) for size in self._sizes]

    def decode(self, x: np.ndarray) -> np.ndarray:
        """Floor a continuous annealer point to an integer choice vector."""
        choice = np.floor(np.asarray(x)).astype(int)
        return np.clip(choice, 0, self._sizes - 1)

    def choice_cnot_count(self, choice: np.ndarray) -> int:
        """Total CNOTs of the stitched approximation."""
        return int(self._cnot_matrix[self._block_index, choice].sum())

    def choice_bound(self, choice: np.ndarray) -> float:
        """Sec. 3.8 upper bound: sum of chosen block distances."""
        return float(self._distance_matrix[self._block_index, choice].sum())

    def selected_matrix(self) -> np.ndarray:
        """The ``(S, num_blocks)`` stack of already-selected choices."""
        return np.stack(self.selected)

    def similarity_to_selected(self, choice: np.ndarray) -> float:
        """Fraction of already-selected samples similar to ``choice``."""
        if not self.selected:
            return 0.0
        fractions = self.tables.similarity_fractions(
            choice, self.selected_matrix()
        )
        return float(fractions.sum()) / len(self.selected)

    def __call__(self, x: np.ndarray) -> float:
        choice = self.decode(x)
        self.scalar_evaluations += 1
        if self.choice_bound(choice) > self.threshold:
            return 1.0
        c_norm = self.choice_cnot_count(choice) / self.original_cnot_count
        if not self.selected:
            return c_norm
        m = self.similarity_to_selected(choice)
        return self.weight * m + (1.0 - self.weight) * c_norm

    def evaluate_batch(self, choices: np.ndarray) -> np.ndarray:
        """Score a ``(B, num_blocks)`` matrix of integer choice vectors.

        Returns the length-``B`` vector of objective values; every row
        matches ``__call__`` on that row exactly (same gathers, same
        per-row reduction), so the exhaustive path and the annealed path
        share one scoring implementation.
        """
        choices = np.atleast_2d(np.asarray(choices, dtype=np.intp))
        if choices.shape[1] != self.num_blocks:
            raise SelectionError("choice matrix width != number of blocks")
        self.batched_evaluations += choices.shape[0]
        bounds = self._distance_matrix[self._block_index, choices].sum(axis=1)
        cnots = self._cnot_matrix[self._block_index, choices].sum(axis=1)
        values = cnots / self.original_cnot_count
        if self.selected:
            fractions = self.tables.similarity_fractions_batch(
                choices, self.selected_matrix()
            )
            m = fractions.sum(axis=1) / len(self.selected)
            values = self.weight * m + (1.0 - self.weight) * values
        values[bounds > self.threshold] = 1.0
        return values
