"""The end-to-end QUEST pipeline (paper Fig. 2).

``run_quest(circuit, config)`` executes the three steps:

1. **Partition** the (measurement-free, basis-lowered) circuit into
   blocks of at most ``max_block_qubits`` qubits with the scan
   partitioner.
2. **Synthesize** an approximation pool per block with the modified LEAP
   compiler, collecting the best circuits at every CNOT count; the
   original block always joins its pool as the distance-zero fallback.
3. **Select** up to M dissimilar low-CNOT full-circuit approximations
   with the dual-annealing engine under the summed-distance threshold,
   and stitch each selection into a runnable circuit.

The result carries per-step wall times (Fig. 12) and the Sec. 3.8 bound
of every selected approximation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Circuit
from repro.core.annealing import SelectionResult, select_approximations
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool
from repro.exceptions import SelectionError
from repro.observability import (
    MetricsRegistry,
    get_metrics,
    get_tracer,
    use_metrics,
    use_tracer,
)
from repro.parallel.cache import PoolCache
from repro.parallel.executor import (
    BlockSynthesisExecutor,
    synthesize_block_pool,
)
from repro.partition.blocks import CircuitBlock, stitch_blocks
from repro.partition.scan import scan_partition
from repro.resilience.journal import RunJournal, quest_fingerprint
from repro.resilience.retry import FailureRecord, RetryPolicy
from repro.transpile.basis import lower_to_basis
from repro.verify.certifier import CertificationReport, certify_result
from repro.verify.independent import DEFAULT_MAX_EXACT_QUBITS

#: Hard per-block timeout is this multiple of the cooperative LEAP budget
#: (plus a grace constant) — generous, because LEAP only checks its
#: budget between layers and a worker should die only when truly stuck.
_HARD_TIMEOUT_FACTOR = 4.0
_HARD_TIMEOUT_GRACE = 30.0


@dataclass
class QuestConfig:
    """Knobs of the QUEST pipeline.

    ``threshold_per_block`` implements the paper's scalability rule: the
    full-circuit threshold grows proportionally to the number of blocks
    (Sec. 4.1), so block pools stay shallow as circuits grow.
    """

    max_block_qubits: int = 3
    max_samples: int = 16
    threshold_per_block: float = 0.10
    weight: float = 0.5
    max_layers_per_block: int = 8
    solutions_per_layer: int = 3
    max_candidates_per_block: int = 24
    instantiation_starts: int = 2
    max_optimizer_iterations: int = 200
    annealing_maxiter: int = 200
    seed: int | None = None
    #: Per-block synthesis wall-clock budget in seconds (None = unbounded).
    block_time_budget: float | None = 30.0
    #: Epsilon-sphere variants added per kept CNOT count (0 disables).
    sphere_variants_per_count: int = 4
    #: Worker processes for block synthesis (1 = inline, no process pool).
    workers: int = 1
    #: Reuse synthesis results across identical blocks within a run.
    cache: bool = True
    #: Directory for the persistent cross-run cache tier (None = memory only;
    #: ignored when ``cache`` is False).
    cache_dir: str | None = None
    #: Size bound on the disk cache tier (entries, LRU-evicted by mtime;
    #: None = unbounded).  Only meaningful with ``cache_dir``/``store_dir``;
    #: applied per namespace.
    cache_max_entries: int | None = None
    #: Root of the sharded multi-tenant artifact store
    #: (:class:`repro.store.ArtifactStore`).  Takes precedence over
    #: ``cache_dir`` when both are set; several daemon replicas may
    #: point at one store root and share published synthesis results.
    store_dir: str | None = None
    #: Tenant namespace inside the artifact store; entries of different
    #: namespaces never mix even when their content keys collide.
    namespace: str = "default"
    #: Ship candidate arrays from workers through checksummed
    #: shared-memory envelopes instead of the result pipe (workers > 1
    #: only; falls back to pickle where shared memory is unavailable).
    shm_transport: bool = False
    #: Array-bytes threshold below which the shm transport keeps the
    #: plain pickle (None = repro.batch.shm.DEFAULT_MIN_BYTES).
    shm_min_bytes: int | None = None
    #: Directory for the crash-recovery run journal (None = no journal).
    #: Completed block pools persist there atomically; a rerun with the
    #: same circuit/config resumes from them (see repro.resilience).
    checkpoint_dir: str | None = None
    #: Synthesis attempts per block before the exact-pool downgrade
    #: (1 = no retries).  The first retry reuses the block's seed, so
    #: recovery from transient faults is bit-identical; later attempts
    #: escalate seeds deterministically via SeedSequence.spawn.
    retry_attempts: int = 2
    #: Per-attempt growth factor of the block time budget (and hard
    #: timeout) under retries; 1.0 keeps the budget flat.
    retry_budget_multiplier: float = 1.0
    #: Base delay (seconds) of the full-jitter exponential backoff
    #: before each retry round; 0.0 (default) re-dispatches immediately.
    #: Backoff affects wall time only — retry seeds and budgets, and
    #: therefore results, are identical with it on or off.
    retry_backoff_seconds: float = 0.0
    #: Health-check candidates from workers/cache/checkpoints (finite,
    #: unitary, distances recompute) and quarantine failures.
    validate_candidates: bool = True
    #: Independently certify every selected approximation after
    #: stitching (see :mod:`repro.verify`): per-block epsilon claims are
    #: re-derived from the artifacts through the certifier's own
    #: contraction path, and the whole-circuit distance is checked
    #: against the claimed total.  Reports land in
    #: ``QuestResult.certifications``; a violation never raises.
    certify: bool = False
    #: Widest circuit the post-run certifier diffs exactly; wider ones
    #: fall to the random-stimulus regime.
    certify_max_exact_qubits: int = DEFAULT_MAX_EXACT_QUBITS
    #: Harden candidate validation: additionally rebuild every
    #: worker/cache/checkpoint candidate's unitary through the
    #: certifier's independent contraction path and require agreement
    #: with the recorded artifacts.  Catches corruption the plain
    #: health checks cannot (a tampered-but-still-unitary matrix).
    certify_candidates: bool = False
    #: Engine for :meth:`QuestResult.noisy_ensemble` (one of
    #: :data:`repro.noise.NOISE_ENGINES`).  ``auto`` keeps the historical
    #: density/trajectories dispatch; ``ptm`` evaluates the whole
    #: ensemble as one batched superoperator contraction.
    noise_engine: str = "auto"
    #: Array library for the ``ptm`` engine (``numpy``/``cupy``/``torch``;
    #: None defers to ``$REPRO_ARRAY_BACKEND``, default numpy).
    array_backend: str | None = None


@dataclass
class QuestTimings:
    """Per-step wall times (the Fig. 12 breakdown)."""

    partition_seconds: float = 0.0
    synthesis_seconds: float = 0.0
    annealing_seconds: float = 0.0
    #: Per-block synthesis seconds measured inside the worker; 0.0 for
    #: trivial blocks and cache hits.  With ``workers > 1`` the entries
    #: overlap in wall time, so their sum can exceed ``synthesis_seconds``.
    block_synthesis_seconds: list[float] = field(default_factory=list)
    #: Accumulated seconds spent evaluating the selected ensemble under a
    #: noise model via :meth:`QuestResult.noisy_ensemble`.  Post-pipeline
    #: work (the paper's Sec. 5 evaluation loop), so it is tracked
    #: separately from the three pipeline phases and excluded from
    #: ``total_seconds``.
    noisy_eval_seconds: float = 0.0
    #: Wall time of the optional post-run certification stage
    #: (``QuestConfig.certify``); a guardrail, not a pipeline phase, so
    #: it is excluded from ``total_seconds`` like noisy evaluation.
    certify_seconds: float = 0.0

    @property
    def selection_seconds(self) -> float:
        """Wall time of the selection phase (Fig. 12's "annealing" bar).

        Alias for ``annealing_seconds``: since the exhaustive batched
        path can replace the annealer entirely, "selection" is the
        accurate name for the phase; the original field is kept for
        backward compatibility.
        """
        return self.annealing_seconds

    @property
    def total_seconds(self) -> float:
        """Total pipeline time.

        ``synthesis_seconds`` is the wall time of the whole synthesis
        phase and already covers every per-block entry, so the total is
        the sum of the three phase times regardless of worker count.
        """
        return (
            self.partition_seconds
            + self.synthesis_seconds
            + self.annealing_seconds
        )


@dataclass
class QuestResult:
    """Everything the pipeline produced for one input circuit."""

    original: Circuit
    baseline: Circuit
    blocks: list[CircuitBlock] = field(default_factory=list)
    pools: list[BlockPool] = field(default_factory=list)
    selection: SelectionResult = field(default_factory=SelectionResult)
    circuits: list[Circuit] = field(default_factory=list)
    threshold: float = 0.0
    timings: QuestTimings = field(default_factory=QuestTimings)
    #: Blocks served without a fresh synthesis job (within-run repeats and
    #: persistent-cache hits) vs. jobs actually synthesized.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Indices of blocks that fell back to their exact singleton pool
    #: because synthesis failed or exceeded the hard time budget.
    synthesis_fallbacks: list[int] = field(default_factory=list)
    #: Structured log of every failed synthesis attempt (block index,
    #: attempt, failure kind, exception text); empty on a clean run.
    failure_log: list[FailureRecord] = field(default_factory=list)
    #: Synthesis attempts beyond each block's first (retry count).
    retries: int = 0
    #: Duplicate blocks served by attaching to an existing synthesis job
    #: (cache-off repeats, and in-flight joins in batch mode).
    dedup_joins: int = 0
    #: Blocks restored from the run journal instead of synthesized.
    checkpoint_hits: int = 0
    #: Disk cache entries that existed but failed integrity checks.
    cache_corrupt_entries: int = 0
    #: Journal entries that existed but failed integrity/health checks.
    checkpoint_corrupt_entries: int = 0
    #: Snapshot of the run's metrics registry (counters / gauges /
    #: histograms; see :mod:`repro.observability.metrics`), dumped by the
    #: CLI via ``--metrics-json``.
    metrics: dict = field(default_factory=dict)
    #: Independent certification report per selected approximation
    #: (same order as ``circuits``); populated only when
    #: ``QuestConfig.certify`` is set.
    certifications: list[CertificationReport] = field(default_factory=list)
    #: Default engine/backend for :meth:`noisy_ensemble`, copied from the
    #: config that produced this result.
    noise_engine: str = "auto"
    array_backend: str | None = None

    @property
    def original_cnot_count(self) -> int:
        """CNOTs in the basis-lowered original circuit."""
        return self.baseline.cnot_count()

    @property
    def cnot_counts(self) -> list[int]:
        """CNOT count of each selected approximation."""
        return [c.cnot_count() for c in self.circuits]

    @property
    def best_cnot_count(self) -> int:
        """CNOTs of the cheapest selected approximation."""
        if not self.circuits:
            raise SelectionError(
                "selection produced no circuits; best_cnot_count is undefined"
            )
        return min(self.cnot_counts)

    @property
    def cnot_reduction(self) -> float:
        """Mean fractional CNOT reduction across the ensemble."""
        if not self.circuits:
            raise SelectionError(
                "selection produced no circuits; cnot_reduction is undefined"
            )
        original = self.original_cnot_count
        if original == 0:
            return 0.0
        mean_cnots = float(np.mean(self.cnot_counts))
        return 1.0 - mean_cnots / original

    @property
    def objective_evaluations(self) -> int:
        """Choice vectors scored during selection (scalar + batched)."""
        return self.selection.objective_evaluations

    @property
    def certified(self) -> bool | None:
        """Whether every selected approximation certified clean.

        ``None`` when certification did not run
        (``QuestConfig.certify`` off).
        """
        if not self.certifications:
            return None
        return all(report.ok for report in self.certifications)

    def summary(self) -> str:
        """One-line human-readable result summary."""
        text = (
            f"{len(self.circuits)} approximations, CNOTs "
            f"{self.original_cnot_count} -> {sorted(self.cnot_counts)} "
            f"({100 * self.cnot_reduction:.0f}% mean reduction); "
            f"selection scored {self.objective_evaluations} choices "
            f"({self.selection.scalar_evaluations} scalar + "
            f"{self.selection.batched_evaluations} batched) "
            f"in {self.timings.selection_seconds:.2f}s"
        )
        if self.retries or self.failure_log:
            text += (
                f"; {self.retries} retried attempt(s), "
                f"{len(self.failure_log)} logged failure(s)"
            )
        if self.checkpoint_hits:
            text += f"; {self.checkpoint_hits} block(s) resumed from checkpoint"
        if self.certifications:
            passed = sum(1 for report in self.certifications if report.ok)
            verdict = "CERTIFIED" if self.certified else "VIOLATED"
            text += (
                f"; certification {verdict} "
                f"({passed}/{len(self.certifications)} clean)"
            )
        return text

    def noisy_ensemble(
        self,
        noise,
        trajectories: int = 1000,
        rng: np.random.Generator | int | None = None,
        batched: bool = True,
        engine: str | None = None,
        array_backend: str | None = None,
    ) -> np.ndarray:
        """Averaged noisy output distribution of the selected ensemble.

        Evaluates every selected approximation under ``noise`` and
        returns the pointwise mean — the quantity the paper compares
        against the ideal distribution in Sec. 5.  ``engine`` (default:
        the ``noise_engine`` the result was configured with) picks the
        evaluator: ``ptm`` contracts the whole ensemble as one batched
        superoperator pass on ``array_backend``; the other engines
        evaluate circuit by circuit via
        :func:`repro.noise.noisy_distribution`.  Wall time is
        accumulated into ``timings.noisy_eval_seconds``.
        """
        from repro.metrics.distances import average_distributions
        from repro.noise import noisy_distribution, run_ptm_ensemble

        if not self.circuits:
            raise SelectionError("no selected circuits to evaluate")
        engine = engine if engine is not None else self.noise_engine
        if array_backend is None:
            array_backend = self.array_backend
        rng = np.random.default_rng(rng)
        tracer = get_tracer()
        metrics = get_metrics()
        start = time.perf_counter()
        with tracer.span(
            "quest.noisy_eval",
            circuits=len(self.circuits),
            trajectories=trajectories,
            engine=engine,
        ):
            if engine == "ptm":
                # One batched contraction over the whole ensemble: the
                # selected approximations share block structure, so they
                # collapse into a handful of PTM batch groups.
                distributions = list(
                    run_ptm_ensemble(
                        self.circuits, noise, backend=array_backend
                    )
                )
            else:
                distributions = [
                    noisy_distribution(
                        circuit,
                        noise,
                        trajectories=trajectories,
                        rng=rng,
                        batched=batched,
                        engine=engine,
                        array_backend=array_backend,
                    )
                    for circuit in self.circuits
                ]
            averaged = average_distributions(distributions)
        self.timings.noisy_eval_seconds += time.perf_counter() - start
        if metrics.is_enabled:
            metrics.inc("noisy_eval.circuits", len(self.circuits))
        return averaged


def _synthesize_block(
    block: CircuitBlock, config: QuestConfig, seed: int
) -> BlockPool:
    """Inline single-block synthesis (kept as the historical entry point)."""
    return synthesize_block_pool(block, config, seed)


def _draw_block_seeds(
    rng: np.random.Generator, num_blocks: int
) -> list[int]:
    """Draw one synthesis seed per block, up front and in block order.

    Seeds used to be drawn lazily inside the synthesis loop, which tied
    every block's seed to the order the loop happened to run in — any
    reordering (and any parallel dispatch) would silently change results.
    Drawing the whole stream here pins seed ``i`` to block ``i`` forever.
    """
    return [int(rng.integers(2**31 - 1)) for _ in range(num_blocks)]


def run_quest(
    circuit: Circuit,
    config: QuestConfig | None = None,
    *,
    checkpoint_dir: str | None = None,
    resume: bool = True,
    fault_injector=None,
    tracer=None,
    metrics=None,
    shared=None,
) -> QuestResult:
    """Run the full QUEST pipeline on ``circuit``.

    The input may contain measurements; they are stripped for synthesis
    (approximations are measurement-free, like the paper's artifacts —
    measurement is appended by whoever runs them).

    ``checkpoint_dir`` (overriding ``config.checkpoint_dir``) journals
    each completed block pool atomically; rerunning against the same
    directory skips journaled blocks and is bit-identical to an
    uninterrupted run.  A directory holding a journal for a *different*
    circuit or config refuses to resume (:class:`CheckpointError`), as
    does an existing journal when ``resume=False``.  ``fault_injector``
    deterministically injects faults for testing
    (see :mod:`repro.resilience.faults`).

    ``tracer`` (a :class:`repro.observability.Tracer`, default: the
    ambient tracer, usually disabled) receives a span per pipeline
    phase plus the inner synthesis/selection events; tracing never
    touches an RNG, so results are bit-identical with it on or off.
    ``metrics`` (default: a fresh per-run registry) accumulates the run
    counters snapshotted into ``QuestResult.metrics``.

    ``shared`` optionally carries batch-scoped resources (duck-typed:
    any object with ``cache`` / ``worker_pool`` / ``inflight``
    attributes, see :class:`repro.batch.driver.BatchResources`) so
    concurrent runs reuse one worker pool, one cache, and one in-flight
    dedup registry.  Sharing never changes results: the dedup key pins
    the synthesis seed, so a shared run's selections stay bit-identical
    to a solo run's.
    """
    config = config or QuestConfig()
    tracer = tracer if tracer is not None else get_tracer()
    if metrics is None:
        ambient = get_metrics()
        metrics = ambient if ambient.is_enabled else MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        with tracer.span(
            "quest.run",
            qubits=circuit.num_qubits,
            workers=config.workers,
        ):
            result = _run_pipeline(
                circuit, config, checkpoint_dir, resume, fault_injector,
                tracer, metrics, shared,
            )
    result.metrics = metrics.snapshot()
    return result


def _run_pipeline(
    circuit: Circuit,
    config: QuestConfig,
    checkpoint_dir: str | None,
    resume: bool,
    fault_injector,
    tracer,
    metrics,
    shared=None,
) -> QuestResult:
    """The pipeline body; runs under the ambient tracer/metrics pair."""
    from repro.noise import NOISE_ENGINES

    if config.noise_engine not in NOISE_ENGINES:
        raise SelectionError(
            f"unknown noise engine {config.noise_engine!r}; choose from "
            f"{', '.join(NOISE_ENGINES)}"
        )
    rng = np.random.default_rng(config.seed)
    baseline = lower_to_basis(circuit.without_measurements())
    if baseline.cnot_count() == 0:
        raise SelectionError("circuit has no CNOTs; nothing for QUEST to reduce")

    result = QuestResult(
        original=circuit,
        baseline=baseline,
        noise_engine=config.noise_engine,
        array_backend=config.array_backend,
    )

    start = time.perf_counter()
    with tracer.span("quest.partition"):
        result.blocks = scan_partition(baseline, config.max_block_qubits)
    result.timings.partition_seconds = time.perf_counter() - start
    if metrics.is_enabled:
        metrics.gauge("partition.blocks", len(result.blocks))

    start = time.perf_counter()
    with tracer.span("quest.synthesis", blocks=len(result.blocks)):
        block_seeds = _draw_block_seeds(rng, len(result.blocks))
        checkpoint_dir = checkpoint_dir or config.checkpoint_dir
        journal = None
        if checkpoint_dir is not None:
            journal = RunJournal(
                checkpoint_dir,
                fingerprint=quest_fingerprint(baseline, config),
                seeds=block_seeds,
                resume=resume,
                fault_injector=fault_injector,
            )
        cache = None
        if config.cache:
            cache = getattr(shared, "cache", None)
            if cache is None:
                cache = PoolCache(
                    config.store_dir or config.cache_dir,
                    fault_injector=fault_injector,
                    max_entries=config.cache_max_entries,
                    namespace=config.namespace,
                )
        executor = BlockSynthesisExecutor(
            workers=config.workers,
            cache=cache,
            hard_timeout=(
                None
                if config.block_time_budget is None
                else _HARD_TIMEOUT_FACTOR * config.block_time_budget
                + _HARD_TIMEOUT_GRACE
            ),
            retry_policy=RetryPolicy(
                max_attempts=config.retry_attempts,
                budget_multiplier=config.retry_budget_multiplier,
                backoff_base=config.retry_backoff_seconds,
            ),
            journal=journal,
            fault_injector=fault_injector,
            validate=config.validate_candidates,
            independent_validation=config.certify_candidates,
            worker_pool=getattr(shared, "worker_pool", None),
            inflight=getattr(shared, "inflight", None),
            shm_transport=config.shm_transport,
            shm_min_bytes=config.shm_min_bytes,
        )
        result.pools, synthesis_stats = executor.run(
            result.blocks, config, block_seeds
        )
    result.cache_hits = synthesis_stats.cache_hits
    result.cache_misses = synthesis_stats.cache_misses
    result.synthesis_fallbacks = synthesis_stats.fallback_blocks
    result.failure_log = synthesis_stats.failure_log
    result.retries = synthesis_stats.retries
    result.dedup_joins = synthesis_stats.dedup_joins
    result.checkpoint_hits = synthesis_stats.checkpoint_hits
    result.cache_corrupt_entries = synthesis_stats.cache_corrupt_entries
    result.checkpoint_corrupt_entries = (
        synthesis_stats.checkpoint_corrupt_entries
    )
    result.timings.block_synthesis_seconds = synthesis_stats.block_seconds
    result.timings.synthesis_seconds = time.perf_counter() - start

    result.threshold = config.threshold_per_block * len(result.blocks)
    objective = SelectionObjective(
        pools=result.pools,
        threshold=result.threshold,
        original_cnot_count=baseline.cnot_count(),
        weight=config.weight,
    )
    start = time.perf_counter()
    with tracer.span("quest.selection", blocks=len(result.pools)):
        result.selection = select_approximations(
            objective,
            max_samples=config.max_samples,
            maxiter=config.annealing_maxiter,
            seed=int(rng.integers(2**31 - 1)),
        )
    result.timings.annealing_seconds = time.perf_counter() - start

    with tracer.span("quest.stitch", circuits=result.selection.num_selected):
        for choice in result.selection.choices:
            chosen_blocks = [
                pool.block.with_circuit(pool.candidates[int(index)].circuit)
                for pool, index in zip(result.pools, choice)
            ]
            result.circuits.append(
                stitch_blocks(chosen_blocks, baseline.num_qubits)
            )

    if config.certify:
        start = time.perf_counter()
        with tracer.span("quest.certify", circuits=len(result.circuits)):
            result.certifications = certify_result(
                result,
                block_qubits=config.max_block_qubits,
                max_exact_qubits=config.certify_max_exact_qubits,
                seed=config.seed,
            )
            for index, report in enumerate(result.certifications):
                tracer.event(
                    "certify.report",
                    circuit=index,
                    ok=report.ok,
                    regime=report.regime,
                    claimed_total=report.claimed_total,
                    first_failed_block=report.first_failed_block,
                )
                if metrics.is_enabled:
                    metrics.inc(
                        "certify.passed" if report.ok else "certify.failed"
                    )
        result.timings.certify_seconds = time.perf_counter() - start
    return result
