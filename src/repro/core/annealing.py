"""The dual-annealing selection engine (paper Sec. 3.6 "Putting it together").

Selection is sequential: the first dual-annealing run (empty selected
set) returns the feasible approximation with the lowest CNOT count; each
subsequent run scores dissimilarity against everything selected so far.
The loop stops at ``max_samples`` (M = 16 in the paper) or as soon as the
engine returns an already-selected circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import dual_annealing

from repro.core.objective import SelectionObjective
from repro.exceptions import SelectionError


@dataclass
class SelectionResult:
    """Chosen approximations, as integer candidate indices per block."""

    choices: list[np.ndarray] = field(default_factory=list)
    cnot_counts: list[int] = field(default_factory=list)
    bounds: list[float] = field(default_factory=list)
    objective_values: list[float] = field(default_factory=list)
    annealer_runs: int = 0

    @property
    def num_selected(self) -> int:
        """Number of selected full-circuit approximations."""
        return len(self.choices)


def _search_space_size(objective: SelectionObjective) -> int:
    size = 1
    for pool in objective.pools:
        size *= pool.size
        if size > 10**9:
            break
    return size


def _exhaustive_minimum(objective: SelectionObjective) -> np.ndarray:
    """Brute-force the best choice (used for tiny search spaces)."""
    sizes = [pool.size for pool in objective.pools]
    best_value = float("inf")
    best_choice: np.ndarray | None = None
    indices = np.zeros(len(sizes), dtype=int)
    while True:
        value = objective(indices.astype(float))
        if value < best_value:
            best_value = value
            best_choice = indices.copy()
        # Odometer increment.
        position = 0
        while position < len(sizes):
            indices[position] += 1
            if indices[position] < sizes[position]:
                break
            indices[position] = 0
            position += 1
        if position == len(sizes):
            break
    assert best_choice is not None
    return best_choice


def select_approximations(
    objective: SelectionObjective,
    max_samples: int = 16,
    maxiter: int = 250,
    seed: int | None = None,
    exhaustive_cutoff: int = 512,
) -> SelectionResult:
    """Run the sequential dual-annealing selection loop.

    Search spaces no larger than ``exhaustive_cutoff`` are enumerated
    exactly instead of annealed (the annealer is a global-optimization
    heuristic; exact enumeration is both faster and deterministic there).
    """
    if max_samples < 1:
        raise SelectionError("max_samples must be positive")
    rng = np.random.default_rng(seed)
    result = SelectionResult()
    objective.selected.clear()
    use_exhaustive = _search_space_size(objective) <= exhaustive_cutoff
    bounds = objective.bounds()
    for _ in range(max_samples):
        if use_exhaustive:
            choice = _exhaustive_minimum(objective)
        else:
            annealed = dual_annealing(
                objective,
                bounds=bounds,
                maxiter=maxiter,
                seed=int(rng.integers(2**31 - 1)),
                no_local_search=True,
                # Start from the always-feasible all-original choice.
                x0=np.full(objective.num_blocks, 0.5),
            )
            choice = objective.decode(annealed.x)
        result.annealer_runs += 1
        if objective.choice_bound(choice) > objective.threshold:
            if result.choices:
                break
            # The annealer failed to land on a feasible point; the
            # all-original choice (candidate 0 per block, distance 0) is
            # feasible for any non-negative threshold — QUEST degrades to
            # the Baseline rather than failing.
            choice = np.zeros(objective.num_blocks, dtype=int)
            if objective.choice_bound(choice) > objective.threshold:
                raise SelectionError(
                    "no feasible approximation under the process-distance "
                    "threshold; raise the threshold or synthesize tighter "
                    "blocks"
                )
        value = objective(choice.astype(float))
        if any(np.array_equal(choice, prior) for prior in result.choices):
            break  # The paper's stopping rule: a repeat ends selection.
        result.choices.append(choice)
        result.cnot_counts.append(objective.choice_cnot_count(choice))
        result.bounds.append(objective.choice_bound(choice))
        result.objective_values.append(value)
        objective.selected.append(choice)
    return result
