"""The dual-annealing selection engine (paper Sec. 3.6 "Putting it together").

Selection is sequential: the first dual-annealing run (empty selected
set) returns the feasible approximation with the lowest CNOT count; each
subsequent run scores dissimilarity against everything selected so far.
The loop stops at ``max_samples`` (M = 16 in the paper) or as soon as the
engine returns an already-selected circuit.

Small search spaces skip the annealer entirely: they are enumerated
exactly, in chunks, through the objective's batched scorer — which is why
the exhaustive cutoff can sit at 65536 points instead of the few hundred
a per-point Python loop could afford.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import dual_annealing

from repro.core.objective import SelectionObjective
from repro.exceptions import SelectionError
from repro.observability import get_metrics, get_tracer

#: Search spaces up to this many points are enumerated exactly.
DEFAULT_EXHAUSTIVE_CUTOFF = 65536

#: Choice vectors scored per ``evaluate_batch`` call during enumeration
#: (bounds peak memory at chunk x num_blocks indices).
_ENUMERATION_CHUNK = 8192


@dataclass
class SelectionResult:
    """Chosen approximations, as integer candidate indices per block."""

    choices: list[np.ndarray] = field(default_factory=list)
    cnot_counts: list[int] = field(default_factory=list)
    bounds: list[float] = field(default_factory=list)
    objective_values: list[float] = field(default_factory=list)
    annealer_runs: int = 0
    #: Objective evaluations performed during this selection, split by
    #: entry point (one-at-a-time annealer calls vs. batched points).
    scalar_evaluations: int = 0
    batched_evaluations: int = 0

    @property
    def num_selected(self) -> int:
        """Number of selected full-circuit approximations."""
        return len(self.choices)

    @property
    def objective_evaluations(self) -> int:
        """Total points scored (scalar + batched)."""
        return self.scalar_evaluations + self.batched_evaluations


def _search_space_size(objective: SelectionObjective) -> int:
    size = 1
    for pool in objective.pools:
        size *= pool.size
        if size > 10**9:
            break
    return size


def _enumerate_chunk(
    start: int, stop: int, sizes: np.ndarray, strides: np.ndarray
) -> np.ndarray:
    """Rows ``start..stop`` of the cartesian product over pool sizes.

    Row ``k`` decodes the mixed-radix integer ``k`` with block 0 as the
    least-significant digit — the same ordering as the historical
    odometer loop, so first-minimum tie-breaking is unchanged.
    """
    ks = np.arange(start, stop, dtype=np.int64)
    return (ks[:, None] // strides[None, :]) % sizes[None, :]


def _exhaustive_minimum(
    objective: SelectionObjective, chunk: int = _ENUMERATION_CHUNK
) -> np.ndarray:
    """Brute-force the best choice (used for small search spaces).

    Enumerates the whole cartesian product in chunks through
    ``evaluate_batch``; ties resolve to the first minimum in enumeration
    order, exactly like the scalar odometer this replaces.
    """
    sizes = np.array([pool.size for pool in objective.pools], dtype=np.int64)
    strides = np.concatenate(([1], np.cumprod(sizes[:-1])))
    total = int(np.prod(sizes))
    best_value = np.inf
    best_choice: np.ndarray | None = None
    for start in range(0, total, chunk):
        choices = _enumerate_chunk(
            start, min(start + chunk, total), sizes, strides
        )
        values = objective.evaluate_batch(choices)
        position = int(np.argmin(values))
        if values[position] < best_value:
            best_value = float(values[position])
            best_choice = choices[position].astype(int)
    assert best_choice is not None
    return best_choice


def select_approximations(
    objective: SelectionObjective,
    max_samples: int = 16,
    maxiter: int = 250,
    seed: int | np.random.SeedSequence | None = None,
    exhaustive_cutoff: int = DEFAULT_EXHAUSTIVE_CUTOFF,
) -> SelectionResult:
    """Run the sequential dual-annealing selection loop.

    Search spaces no larger than ``exhaustive_cutoff`` are enumerated
    exactly instead of annealed (the annealer is a global-optimization
    heuristic; batched exact enumeration is both faster and
    deterministic there).
    """
    if max_samples < 1:
        raise SelectionError("max_samples must be positive")
    # Per-run annealer seeds are SeedSequence children rather than raw
    # ``rng.integers(2**31 - 1)`` draws: bounded integer draws collide
    # (birthday bound) and re-enter the PRNG through the weak
    # single-integer seeding path, while spawned children are guaranteed
    # statistically independent streams.
    seed_seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    run_seeds = seed_seq.spawn(max_samples)
    tracer = get_tracer()
    metrics = get_metrics()
    result = SelectionResult()
    objective.selected.clear()
    objective.scalar_evaluations = 0
    objective.batched_evaluations = 0
    use_exhaustive = _search_space_size(objective) <= exhaustive_cutoff
    bounds = objective.bounds()
    for sample_index in range(max_samples):
        if use_exhaustive:
            choice = _exhaustive_minimum(objective)
        else:
            annealed = dual_annealing(
                objective,
                bounds=bounds,
                maxiter=maxiter,
                seed=np.random.default_rng(run_seeds[sample_index]),
                no_local_search=True,
                # Start from the always-feasible all-original choice.
                x0=np.full(objective.num_blocks, 0.5),
            )
            choice = objective.decode(annealed.x)
        result.annealer_runs += 1
        if tracer.is_enabled:
            tracer.event(
                "selection.round",
                round=sample_index,
                exhaustive=use_exhaustive,
                bound=float(objective.choice_bound(choice)),
            )
        if objective.choice_bound(choice) > objective.threshold:
            if result.choices:
                break
            # The annealer failed to land on a feasible point; the
            # all-original choice (candidate 0 per block, distance 0) is
            # feasible for any non-negative threshold — QUEST degrades to
            # the Baseline rather than failing.
            choice = np.zeros(objective.num_blocks, dtype=int)
            if objective.choice_bound(choice) > objective.threshold:
                raise SelectionError(
                    "no feasible approximation under the process-distance "
                    "threshold; raise the threshold or synthesize tighter "
                    "blocks"
                )
        value = objective(choice.astype(float))
        if any(np.array_equal(choice, prior) for prior in result.choices):
            break  # The paper's stopping rule: a repeat ends selection.
        result.choices.append(choice)
        result.cnot_counts.append(objective.choice_cnot_count(choice))
        result.bounds.append(objective.choice_bound(choice))
        result.objective_values.append(value)
        objective.selected.append(choice)
    result.scalar_evaluations = objective.scalar_evaluations
    result.batched_evaluations = objective.batched_evaluations
    if metrics.is_enabled:
        metrics.inc("selection.rounds", result.annealer_runs)
        metrics.inc("selection.batch_evals", result.batched_evaluations)
        metrics.inc("selection.scalar_evals", result.scalar_evaluations)
        metrics.gauge("selection.num_selected", result.num_selected)
    return result
