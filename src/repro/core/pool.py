"""Per-block approximation pools.

A :class:`BlockPool` holds every candidate approximation LEAP produced
for one block, plus the exact original block as a guaranteed-feasible
candidate (distance zero, original CNOT count) — this is why QUEST
"never performs worse than the Baseline" (paper Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import SelectionError
from repro.linalg.unitary import hs_distance
from repro.partition.blocks import CircuitBlock
from repro.synthesis.leap import SynthesisSolution
from repro.synthesis.sphere import sphere_variants


@dataclass(frozen=True)
class Candidate:
    """One approximation of a block."""

    circuit: Circuit
    unitary: np.ndarray
    distance: float
    cnot_count: int


@dataclass
class BlockPool:
    """All candidates for one partitioned block."""

    block: CircuitBlock
    original_unitary: np.ndarray
    candidates: list[Candidate] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of candidates."""
        return len(self.candidates)

    def cnot_counts(self) -> np.ndarray:
        """Vector of candidate CNOT counts."""
        return np.array([c.cnot_count for c in self.candidates])

    def distances(self) -> np.ndarray:
        """Vector of candidate HS distances to the original block."""
        return np.array([c.distance for c in self.candidates])

    def unitary_stack(self) -> np.ndarray:
        """``(size, dim, dim)`` stack of candidate unitaries.

        The similarity tables consume whole pools as one contiguous
        array so their pairwise-distance construction is a single
        Gram-matrix contraction per block.
        """
        return np.stack([c.unitary for c in self.candidates])


def build_pool(
    block: CircuitBlock,
    solutions: list[SynthesisSolution],
    max_candidates: int = 24,
    distance_cap: float | None = None,
    solution_unitaries: list[np.ndarray] | None = None,
) -> BlockPool:
    """Assemble a pool from LEAP solutions plus the original block.

    Keeps at most ``max_candidates`` synthesized circuits, preferring
    lower CNOT counts then lower distances; candidates above
    ``distance_cap`` (when given) are discarded up front — the analogue of
    Algorithm 1's threshold rejection, applied per block.

    ``solution_unitaries`` optionally carries a pre-instantiated unitary
    per solution (same order as ``solutions``) — the shared-memory
    transport ships worker-computed matrices so assembly need not
    rebuild them.  ``circuit.unitary()`` is deterministic, so the two
    sources are byte-identical; any solution without a shipped matrix
    falls back to recomputing.
    """
    shipped: dict[int, np.ndarray] = {}
    if solution_unitaries is not None:
        shipped = {
            id(solution): unitary
            for solution, unitary in zip(solutions, solution_unitaries)
        }
    original_unitary = block.unitary()
    original_cnots = block.circuit.cnot_count()
    pool = BlockPool(block=block, original_unitary=original_unitary)
    pool.candidates.append(
        Candidate(
            circuit=block.circuit,
            unitary=original_unitary,
            distance=0.0,
            cnot_count=original_cnots,
        )
    )
    kept = 0
    for solution in sorted(solutions, key=lambda s: (s.cnot_count, s.distance)):
        if kept >= max_candidates:
            break
        if distance_cap is not None and solution.distance > distance_cap:
            continue
        if solution.cnot_count >= original_cnots and solution.distance > 1e-9:
            # Longer *and* worse than the original: never useful.
            continue
        unitary = shipped.get(id(solution))
        if unitary is None:
            unitary = solution.circuit.unitary()
        # Re-measure the distance from the concrete circuit (the optimizer
        # cost is a lower bound on what the built circuit achieves).
        distance = hs_distance(unitary, original_unitary)
        duplicate = any(
            existing.cnot_count == solution.cnot_count
            and hs_distance(existing.unitary, unitary) < 1e-6
            for existing in pool.candidates
        )
        if duplicate:
            continue
        pool.candidates.append(
            Candidate(
                circuit=solution.circuit,
                unitary=unitary,
                distance=distance,
                cnot_count=solution.cnot_count,
            )
        )
        kept += 1
    if not pool.candidates:
        raise SelectionError("empty candidate pool (internal error)")
    return pool


def exact_pool(block: CircuitBlock) -> BlockPool:
    """The singleton pool holding only the exact original block.

    This is the guaranteed-feasible degenerate pool: used for blocks with
    nothing to approximate (1 qubit, CNOT-free) and as the graceful
    fallback when a block's synthesis fails or times out.
    """
    return build_pool(block, [])


def augment_with_sphere_variants(
    pool: BlockPool,
    threshold: float,
    per_count: int = 4,
    max_counts: int = 2,
    rng: np.random.Generator | int | None = None,
) -> int:
    """Add epsilon-sphere variants of the pool's best cheap candidates.

    For the ``max_counts`` lowest CNOT counts that have a candidate well
    inside the threshold, generates ``per_count`` same-structure variants
    on the threshold sphere (see :mod:`repro.synthesis.sphere`).  These
    are the dissimilar approximations the selection engine averages over.
    Returns the number of candidates added.
    """
    rng = np.random.default_rng(rng)
    original_cnots = pool.block.circuit.cnot_count()
    best_by_count: dict[int, Candidate] = {}
    for candidate in pool.candidates:
        if candidate.cnot_count >= original_cnots:
            continue
        if candidate.distance >= 0.9 * threshold:
            continue  # Too coarse: no room between it and the sphere.
        current = best_by_count.get(candidate.cnot_count)
        if current is None or candidate.distance < current.distance:
            best_by_count[candidate.cnot_count] = candidate
    added = 0
    for cnot_count in sorted(best_by_count)[:max_counts]:
        base = best_by_count[cnot_count]
        for variant in sphere_variants(
            base.circuit, pool.original_unitary, threshold,
            count=per_count, rng=rng,
        ):
            unitary = variant.unitary()
            pool.candidates.append(
                Candidate(
                    circuit=variant,
                    unitary=unitary,
                    distance=hs_distance(unitary, pool.original_unitary),
                    cnot_count=cnot_count,
                )
            )
            added += 1
    return added
