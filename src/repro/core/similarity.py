"""QUEST's dissimilarity criterion (paper Sec. 3.6).

Two approximations ``S1, S2`` of an original ``O`` are *similar* when
their mutual HS distance is at most the larger of their distances to the
original::

    <S1, S2>_HS <= max(<S1, O>_HS, <S2, O>_HS)

geometrically: both sit in the same region of the approximation ball, so
averaging their outputs cannot cancel their errors.  For partitioned
circuits the full-unitary test is infeasible, so similarity of two full
approximations is the *fraction of blocks* whose chosen candidates are
similar.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SelectionError
from repro.linalg.unitary import hs_distance


def are_similar(
    mutual_distance: float, distance_a: float, distance_b: float
) -> bool:
    """The paper's similarity predicate on precomputed distances."""
    return mutual_distance <= max(distance_a, distance_b)


def unitaries_similar(
    a: np.ndarray, b: np.ndarray, original: np.ndarray
) -> bool:
    """Similarity predicate evaluated directly on unitaries."""
    return are_similar(
        hs_distance(a, b), hs_distance(a, original), hs_distance(b, original)
    )


class BlockSimilarityTables:
    """Precomputed per-block similarity lookups for the annealing objective.

    For every block, stores a boolean matrix ``similar[i, j]`` over its
    candidate approximations, so the objective's inner loop is pure table
    lookup (the annealer calls it thousands of times).
    """

    def __init__(
        self,
        candidate_unitaries: list[list[np.ndarray]],
        original_unitaries: list[np.ndarray],
    ) -> None:
        if len(candidate_unitaries) != len(original_unitaries):
            raise SelectionError("one original unitary needed per block")
        self.num_blocks = len(original_unitaries)
        self._tables: list[np.ndarray] = []
        for candidates, original in zip(candidate_unitaries, original_unitaries):
            count = len(candidates)
            if count == 0:
                raise SelectionError("block with no candidate approximations")
            to_original = np.array(
                [hs_distance(c, original) for c in candidates]
            )
            table = np.zeros((count, count), dtype=bool)
            for i in range(count):
                table[i, i] = True
                for j in range(i + 1, count):
                    mutual = hs_distance(candidates[i], candidates[j])
                    similar = are_similar(mutual, to_original[i], to_original[j])
                    table[i, j] = table[j, i] = similar
            self._tables.append(table)

    def candidates_similar(self, block: int, i: int, j: int) -> bool:
        """Whether candidates ``i`` and ``j`` of ``block`` are similar."""
        return bool(self._tables[block][i, j])

    def similarity_fraction(
        self, choice_a: np.ndarray, choice_b: np.ndarray
    ) -> float:
        """Fraction of blocks whose chosen candidates are similar."""
        if len(choice_a) != self.num_blocks or len(choice_b) != self.num_blocks:
            raise SelectionError("choice vector length != number of blocks")
        hits = sum(
            1
            for block in range(self.num_blocks)
            if self._tables[block][int(choice_a[block]), int(choice_b[block])]
        )
        return hits / self.num_blocks
