"""QUEST's dissimilarity criterion (paper Sec. 3.6).

Two approximations ``S1, S2`` of an original ``O`` are *similar* when
their mutual HS distance is at most the larger of their distances to the
original::

    <S1, S2>_HS <= max(<S1, O>_HS, <S2, O>_HS)

geometrically: both sit in the same region of the approximation ball, so
averaging their outputs cannot cancel their errors.  For partitioned
circuits the full-unitary test is infeasible, so similarity of two full
approximations is the *fraction of blocks* whose chosen candidates are
similar.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SelectionError
from repro.linalg.unitary import hs_distance


def are_similar(
    mutual_distance: float, distance_a: float, distance_b: float
) -> bool:
    """The paper's similarity predicate on precomputed distances."""
    return mutual_distance <= max(distance_a, distance_b)


def unitaries_similar(
    a: np.ndarray, b: np.ndarray, original: np.ndarray
) -> bool:
    """Similarity predicate evaluated directly on unitaries."""
    return are_similar(
        hs_distance(a, b), hs_distance(a, original), hs_distance(b, original)
    )


#: Pairs whose |mutual - max(d_i, d_j)| falls below this are re-resolved
#: with the historical scalar arithmetic (see ``_block_table``).
_BOUNDARY_MARGIN = 1e-7


def _block_table(candidates: np.ndarray, original: np.ndarray) -> np.ndarray:
    """Boolean similarity table of one block's candidate stack.

    The O(count^2) pairwise HS distances are one stacked Gram-matrix
    computation: the original joins the ``(count, dim, dim)`` candidate
    stack as the last row, a single ``einsum`` yields every pairwise
    ``|Tr(Ci^dag Cj)|``, and the distance matrix follows elementwise.

    The ``<=`` predicate is then decided by margins far above float
    noise for every generic pair, but pairs that sit *on* the boundary
    (a candidate equal to the original, near-duplicates) would resolve
    on reduction-order/FMA noise, which differs between this einsum and
    the historical per-pair ``hs_distance`` loop.  Those near-boundary
    pairs are re-resolved with the exact historical scalar arithmetic
    (same calls, same argument order), so the table is bitwise identical
    to the pre-vectorization construction.
    """
    count, dim = candidates.shape[0], candidates.shape[1]
    stack = np.concatenate([candidates, original[None, :, :]], axis=0)
    overlaps = (
        np.abs(np.einsum("aij,bij->ab", stack.conj(), stack)) / dim
    )
    distances = np.sqrt(np.maximum(0.0, 1.0 - overlaps * overlaps))
    to_original = distances[:count, count]
    mutual = distances[:count, :count]
    larger = np.maximum(to_original[:, None], to_original[None, :])
    table = mutual <= larger
    near = np.abs(mutual - larger) <= _BOUNDARY_MARGIN
    np.fill_diagonal(near, False)
    for i, j in zip(*np.nonzero(np.triu(near, k=1))):
        similar = are_similar(
            hs_distance(candidates[i], candidates[j]),
            hs_distance(candidates[i], original),
            hs_distance(candidates[j], original),
        )
        table[i, j] = table[j, i] = similar
    np.fill_diagonal(table, True)
    return table


class BlockSimilarityTables:
    """Precomputed per-block similarity lookups for the annealing objective.

    For every block, stores a boolean matrix ``similar[i, j]`` over its
    candidate approximations; the per-block tables are additionally
    packed into one flat array with per-block offsets, so scoring a
    choice vector against a whole stack of prior selections is a single
    fancy-indexed gather (the annealer calls the objective thousands of
    times, and the batched exhaustive path scores thousands of choices
    per call).
    """

    def __init__(
        self,
        candidate_unitaries: list[list[np.ndarray]] | list[np.ndarray],
        original_unitaries: list[np.ndarray],
    ) -> None:
        if len(candidate_unitaries) != len(original_unitaries):
            raise SelectionError("one original unitary needed per block")
        self.num_blocks = len(original_unitaries)
        self._tables: list[np.ndarray] = []
        for candidates, original in zip(candidate_unitaries, original_unitaries):
            if len(candidates) == 0:
                raise SelectionError("block with no candidate approximations")
            stack = np.asarray(candidates, dtype=complex)
            self._tables.append(_block_table(stack, np.asarray(original)))
        # Flat packed layout: block b's (count_b, count_b) table lives at
        # _flat[_offsets[b] : _offsets[b] + count_b**2], row-major, so
        # entry (i, j) is _flat[_offsets[b] + i * count_b + j].
        self._counts = np.array(
            [table.shape[0] for table in self._tables], dtype=np.intp
        )
        self._offsets = np.concatenate(
            ([0], np.cumsum(self._counts * self._counts)[:-1])
        ).astype(np.intp)
        self._flat = np.concatenate(
            [table.ravel() for table in self._tables]
        )

    def candidates_similar(self, block: int, i: int, j: int) -> bool:
        """Whether candidates ``i`` and ``j`` of ``block`` are similar."""
        return bool(self._tables[block][i, j])

    def _validate_choices(self, choices: np.ndarray) -> np.ndarray:
        choices = np.asarray(choices, dtype=np.intp)
        if choices.shape[-1] != self.num_blocks:
            raise SelectionError("choice vector length != number of blocks")
        if np.any(choices < 0) or np.any(choices >= self._counts):
            raise SelectionError("choice index outside its block's pool")
        return choices

    def similarity_fraction(
        self, choice_a: np.ndarray, choice_b: np.ndarray
    ) -> float:
        """Fraction of blocks whose chosen candidates are similar."""
        choice_a = self._validate_choices(choice_a)
        choice_b = self._validate_choices(choice_b)
        hits = self._flat[
            self._offsets + choice_a * self._counts + choice_b
        ]
        return int(hits.sum()) / self.num_blocks

    def similarity_fractions(
        self, choice: np.ndarray, priors: np.ndarray
    ) -> np.ndarray:
        """Similarity fraction of ``choice`` against each stacked prior.

        ``priors`` is an ``(S, num_blocks)`` matrix of selected choice
        vectors; the result is the length-``S`` vector of fractions, via
        a single gather (no Python loop over priors).
        """
        choice = self._validate_choices(choice)
        priors = self._validate_choices(np.atleast_2d(priors))
        cells = self._offsets + choice * self._counts  # (num_blocks,)
        hits = self._flat[cells[None, :] + priors]  # (S, num_blocks)
        return hits.sum(axis=1) / self.num_blocks

    def similarity_fractions_batch(
        self, choices: np.ndarray, priors: np.ndarray
    ) -> np.ndarray:
        """Fractions of every choice row against every prior row.

        ``choices`` is ``(B, num_blocks)``, ``priors`` is
        ``(S, num_blocks)``; returns the ``(B, S)`` fraction matrix in
        one gather over the packed tables.
        """
        choices = self._validate_choices(np.atleast_2d(choices))
        priors = self._validate_choices(np.atleast_2d(priors))
        cells = self._offsets[None, :] + choices * self._counts  # (B, nb)
        hits = self._flat[cells[:, None, :] + priors[None, :, :]]
        return hits.sum(axis=2) / self.num_blocks
