"""QUEST core: similarity, Algorithm-1 objective, selection, pipeline."""

from repro.core.annealing import SelectionResult, select_approximations
from repro.core.bounds import BoundCheck, total_bound, verify_bound
from repro.core.ensemble import ensemble_distribution
from repro.core.objective import SelectionObjective
from repro.core.pool import BlockPool, Candidate, build_pool, exact_pool
from repro.core.quest import (
    QuestConfig,
    QuestResult,
    QuestTimings,
    run_quest,
)
from repro.core.similarity import (
    BlockSimilarityTables,
    are_similar,
    unitaries_similar,
)

__all__ = [
    "run_quest",
    "QuestConfig",
    "QuestResult",
    "QuestTimings",
    "SelectionObjective",
    "SelectionResult",
    "select_approximations",
    "BlockPool",
    "Candidate",
    "build_pool",
    "exact_pool",
    "BlockSimilarityTables",
    "are_similar",
    "unitaries_similar",
    "total_bound",
    "verify_bound",
    "BoundCheck",
    "ensemble_distribution",
]
