"""Circuit partitioning: scan partitioner and block stitching."""

from repro.partition.blocks import CircuitBlock, stitch_blocks
from repro.partition.scan import scan_partition

__all__ = ["CircuitBlock", "stitch_blocks", "scan_partition"]
