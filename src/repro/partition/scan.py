"""The scan partitioner (paper Sec. 4.1, after BQSKit's ScanPartitioner).

A single front-to-back pass over the circuit assigns every operation to a
block of at most ``max_block_qubits`` qubits.  Correctness invariant: for
every qubit, the block indices of its operations are non-decreasing in
circuit order, so concatenating blocks in index order reproduces the
original operator product exactly (operations on disjoint qubits commute;
operations sharing a qubit keep their order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import Circuit, Operation
from repro.exceptions import PartitionError
from repro.partition.blocks import CircuitBlock


@dataclass
class _OpenBlock:
    qubits: set[int] = field(default_factory=set)
    operations: list[Operation] = field(default_factory=list)


def scan_partition(
    circuit: Circuit, max_block_qubits: int = 3
) -> list[CircuitBlock]:
    """Partition ``circuit`` into blocks of at most ``max_block_qubits``.

    Measurements and barriers must be stripped first (QUEST partitions the
    unitary part of the circuit only).  Returns blocks in topological
    order; stitching them back yields a circuit equivalent to the input.
    """
    if max_block_qubits < 2:
        raise PartitionError("blocks need at least 2 qubits to hold CNOTs")
    if circuit.has_measurements():
        raise PartitionError(
            "strip measurements before partitioning (without_measurements())"
        )

    open_blocks: list[_OpenBlock] = []
    last_block: dict[int, int] = {q: -1 for q in range(circuit.num_qubits)}
    for op in circuit.operations:
        if op.name == "barrier":
            continue
        qubits = set(op.qubits)
        if len(qubits) > max_block_qubits:
            raise PartitionError(
                f"operation on {len(qubits)} qubits exceeds the block size "
                f"{max_block_qubits}"
            )
        earliest = max(last_block[q] for q in op.qubits)
        target_index: int | None = None
        for index in range(max(earliest, 0), len(open_blocks)):
            if index < earliest:
                continue
            block = open_blocks[index]
            if len(block.qubits | qubits) <= max_block_qubits:
                target_index = index
                break
        if target_index is None:
            open_blocks.append(_OpenBlock())
            target_index = len(open_blocks) - 1
        open_blocks[target_index].qubits |= qubits
        open_blocks[target_index].operations.append(op)
        for q in op.qubits:
            last_block[q] = target_index

    blocks: list[CircuitBlock] = []
    for index, open_block in enumerate(open_blocks):
        sorted_qubits = tuple(sorted(open_block.qubits))
        local_index = {q: i for i, q in enumerate(sorted_qubits)}
        local = Circuit(len(sorted_qubits))
        for op in open_block.operations:
            local.append(
                Operation(op.gate, tuple(local_index[q] for q in op.qubits))
            )
        blocks.append(CircuitBlock(index=index, qubits=sorted_qubits, circuit=local))
    return blocks
