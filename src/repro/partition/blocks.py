"""Circuit blocks: the unit of partitioned synthesis.

A :class:`CircuitBlock` holds a sub-circuit expressed over *local* qubit
indices ``0..k-1`` together with the tuple of global qubits it acts on.
QUEST synthesizes approximations per block and stitches chosen
approximations back into a full circuit (paper Sec. 3.3/3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import PartitionError


@dataclass(frozen=True)
class CircuitBlock:
    """A contiguous-in-order slice of a circuit on a few qubits.

    Attributes
    ----------
    index:
        Position of the block in the partition's topological order.
    qubits:
        Sorted global qubit indices the block acts on.
    circuit:
        The block's operations over local indices (``qubits[i] -> i``).
    """

    index: int
    qubits: tuple[int, ...]
    circuit: Circuit

    def __post_init__(self) -> None:
        if tuple(sorted(self.qubits)) != self.qubits:
            raise PartitionError(f"block qubits must be sorted, got {self.qubits}")
        if self.circuit.num_qubits != len(self.qubits):
            raise PartitionError(
                f"block circuit width {self.circuit.num_qubits} != "
                f"{len(self.qubits)} qubits"
            )

    @property
    def num_qubits(self) -> int:
        """Width of the block."""
        return len(self.qubits)

    def unitary(self) -> np.ndarray:
        """Local unitary of the block (``2^k x 2^k``)."""
        return self.circuit.unitary()

    def to_global(self, num_qubits: int) -> Circuit:
        """Remap the block circuit onto global qubit indices."""
        mapping = {local: global_q for local, global_q in enumerate(self.qubits)}
        return self.circuit.remap(mapping, num_qubits=num_qubits)

    def with_circuit(self, circuit: Circuit) -> "CircuitBlock":
        """Return a copy whose local circuit is replaced (same qubits)."""
        if circuit.num_qubits != len(self.qubits):
            raise PartitionError(
                f"replacement circuit width {circuit.num_qubits} != "
                f"{len(self.qubits)}"
            )
        return replace(self, circuit=circuit)


def stitch_blocks(
    blocks: list[CircuitBlock], num_qubits: int
) -> Circuit:
    """Concatenate blocks (in index order) into a full-width circuit."""
    ordered = sorted(blocks, key=lambda b: b.index)
    if [b.index for b in ordered] != list(range(len(ordered))):
        raise PartitionError(
            "blocks do not form a contiguous 0..K-1 topological order"
        )
    full = Circuit(num_qubits)
    for block in ordered:
        full.extend(block.to_global(num_qubits).operations)
    return full
