"""Output-distance metrics (paper Sec. 2).

* **Total Variation Distance (TVD)**: ``0.5 * sum_k |p(k) - q(k)|``
* **Jensen-Shannon Divergence (JSD)**: ``sqrt(0.5 * (KL(p||m) + KL(q||m)))``
  with ``m`` the pointwise mean — i.e. the *square root* of the usual JS
  divergence, as the paper defines it (base-2 logs, so it lies in [0, 1]).

Both take dense probability vectors over the ``2^n`` outcomes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError
from repro.metrics.tolerances import (
    DISTRIBUTION_NORM_TOL,
    NEGATIVE_PROBABILITY_TOL,
)


def _validate_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape or p.ndim != 1:
        raise ReproError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    if np.any(p < -NEGATIVE_PROBABILITY_TOL) or np.any(
        q < -NEGATIVE_PROBABILITY_TOL
    ):
        raise ReproError("negative probabilities")
    sum_p, sum_q = p.sum(), q.sum()
    if not (
        np.isclose(sum_p, 1.0, atol=DISTRIBUTION_NORM_TOL)
        and np.isclose(sum_q, 1.0, atol=DISTRIBUTION_NORM_TOL)
    ):
        raise ReproError(
            f"distributions must be normalized (sums {sum_p:.6f}, {sum_q:.6f})"
        )
    return np.clip(p, 0.0, None) / sum_p, np.clip(q, 0.0, None) / sum_q


def tvd(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance in [0, 1]."""
    p, q = _validate_pair(p, q)
    return float(0.5 * np.abs(p - q).sum())


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback-Leibler divergence ``sum p log2(p/q)`` (may be inf)."""
    p, q = _validate_pair(p, q)
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float(np.sum(p[mask] * np.log2(p[mask] / q[mask])))


def jsd(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon distance (sqrt of the divergence), in [0, 1]."""
    p, q = _validate_pair(p, q)
    mean = 0.5 * (p + q)
    divergence = 0.5 * (kl_divergence(p, mean) + kl_divergence(q, mean))
    return float(np.sqrt(max(0.0, divergence)))


def average_distributions(distributions: list[np.ndarray]) -> np.ndarray:
    """Pointwise mean of a list of distributions (QUEST's ensemble output)."""
    if not distributions:
        raise ReproError("cannot average an empty list of distributions")
    stacked = np.stack([np.asarray(d, dtype=float) for d in distributions])
    mean = stacked.mean(axis=0)
    return mean / mean.sum()
