"""Single source of truth for numeric tolerances on trust boundaries.

Every threshold that decides whether data crossing a trust boundary is
*accepted* — candidate health checks, equivalence certification, bound
verification, distribution normalization — lives here.  They used to be
re-declared ad hoc at each call site, which let the same conceptual
tolerance drift apart between layers (and made it impossible to audit
what "close enough" meant for the system as a whole).

``tests/test_tolerances.py`` enforces the hoist: it tokenizes the
validation/certification modules and fails if a scientific-notation
float literal reappears outside this file.

Purely numerical algorithm internals (optimizer convergence criteria,
Weyl-chamber classification cutoffs) are *not* tolerances in this sense
and stay local to their modules.
"""

from __future__ import annotations

#: Max elementwise deviation of ``U^dag U`` from the identity before a
#: candidate is rejected.  Circuits are products of exactly-unitary gate
#: matrices, so honest candidates sit at ~1e-15; this leaves orders of
#: magnitude of slack while still catching real corruption.
UNITARITY_TOL = 1e-6

#: Max |recomputed - recorded| HS distance for a candidate's claim.
#: Recorded distances are produced from the same parameters the circuit
#: is built from, so honest candidates agree to float precision.
DISTANCE_CONSISTENCY_TOL = 1e-6

#: Max elementwise deviation between a pool's stored original unitary
#: and the unitary rebuilt from its block circuit (same code path, so
#: only serialization corruption can separate them).
POOL_UNITARY_MATCH_TOL = 1e-9

#: Float slack added to every claimed distance bound during
#: certification: a measured distance may exceed its claim by this much
#: before the claim counts as violated.  Covers accumulated rounding
#: between the synthesis path's contraction and the certifier's
#: independent one, nothing more.
CERTIFICATION_SLACK = 1e-7

#: Max disagreement tolerated between the certifier's independently
#: reconstructed quantities and the synthesis path's recorded ones
#: (unitary entries, HS distances).  Two correct float implementations
#: of the same quantity agree far below this.
INDEPENDENT_AGREEMENT_TOL = 1e-9

#: Probability vectors must sum to 1 within this before any
#: distribution distance is computed.
DISTRIBUTION_NORM_TOL = 1e-6

#: Most negative a "probability" may go (float noise from subtraction /
#: renormalization) before the vector is rejected as invalid.
NEGATIVE_PROBABILITY_TOL = 1e-12

#: Float slack on the Sec. 3.8 inequality check (actual <= sum of block
#: distances): the bound is exact mathematics, the slack is rounding.
BOUND_SLACK = 1e-7

#: Max deviation of a compiled Pauli-transfer matrix's first row from
#: ``e_0`` (trace preservation).  Honest PTMs are built from exact
#: Pauli traces and sit at ~1e-15; any real violation means a corrupted
#: gate matrix or channel term reached the compiler.
PTM_TRACE_PRESERVATION_TOL = 1e-9

#: Most negative a compiled PTM's Choi-matrix eigenvalue may go (and
#: max Hermiticity defect of the Choi matrix) before the channel is
#: rejected as not completely positive.  Pure eigensolver rounding
#: slack: physical channels have exactly nonnegative Choi spectra.
PTM_CP_TOL = 1e-9

#: Max pointwise disagreement between the PTM engine's distribution and
#: the density-matrix reference for the same circuit and noise model.
#: Both engines are exact, so the gap is pure contraction-order
#: rounding; the agreement tests and the PTM throughput benchmark pin
#: it here.
PTM_DENSITY_AGREEMENT_ATOL = 1e-10

#: Failure probability budget of the random-stimulus certification
#: regime: the stimulus-derived distance bound is a lower confidence
#: bound on the true HS distance that holds with probability at least
#: ``1 - STIMULUS_CONFIDENCE_DELTA`` over the Haar draw.
STIMULUS_CONFIDENCE_DELTA = 1e-6

__all__ = [
    "UNITARITY_TOL",
    "DISTANCE_CONSISTENCY_TOL",
    "POOL_UNITARY_MATCH_TOL",
    "CERTIFICATION_SLACK",
    "INDEPENDENT_AGREEMENT_TOL",
    "DISTRIBUTION_NORM_TOL",
    "NEGATIVE_PROBABILITY_TOL",
    "BOUND_SLACK",
    "PTM_TRACE_PRESERVATION_TOL",
    "PTM_CP_TOL",
    "PTM_DENSITY_AGREEMENT_ATOL",
    "STIMULUS_CONFIDENCE_DELTA",
]
