"""Output-distance metrics, ensemble averaging, and shared tolerances."""

from repro.metrics.distances import (
    average_distributions,
    jsd,
    kl_divergence,
    tvd,
)
from repro.metrics.tolerances import (
    BOUND_SLACK,
    CERTIFICATION_SLACK,
    DISTANCE_CONSISTENCY_TOL,
    DISTRIBUTION_NORM_TOL,
    INDEPENDENT_AGREEMENT_TOL,
    NEGATIVE_PROBABILITY_TOL,
    POOL_UNITARY_MATCH_TOL,
    STIMULUS_CONFIDENCE_DELTA,
    UNITARITY_TOL,
)

__all__ = [
    "tvd",
    "jsd",
    "kl_divergence",
    "average_distributions",
    "UNITARITY_TOL",
    "DISTANCE_CONSISTENCY_TOL",
    "POOL_UNITARY_MATCH_TOL",
    "CERTIFICATION_SLACK",
    "INDEPENDENT_AGREEMENT_TOL",
    "DISTRIBUTION_NORM_TOL",
    "NEGATIVE_PROBABILITY_TOL",
    "BOUND_SLACK",
    "STIMULUS_CONFIDENCE_DELTA",
]
