"""Output-distance metrics: TVD, JSD, KL, ensemble averaging."""

from repro.metrics.distances import (
    average_distributions,
    jsd,
    kl_divergence,
    tvd,
)

__all__ = ["tvd", "jsd", "kl_divergence", "average_distributions"]
