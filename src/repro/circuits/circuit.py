"""The circuit intermediate representation.

A :class:`Circuit` is an ordered list of :class:`Operation` objects over a
fixed number of qubits.  Operations are applied left-to-right, so the
circuit unitary is ``U = U_K ... U_2 U_1`` for operations ``1..K`` —
exactly the convention used in the QUEST paper (Sec. 3.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.gates import (
    Gate,
    TWO_QUBIT_GATES,
)
from repro.exceptions import CircuitError


@dataclass(frozen=True)
class Operation:
    """A gate applied to specific qubits (and, for measure, a classical bit).

    Attributes
    ----------
    gate:
        The :class:`Gate` being applied.
    qubits:
        Target qubit indices, ordered (e.g. ``(control, target)`` for CX).
    cbit:
        Classical bit receiving the result of a ``measure`` operation.
    """

    gate: Gate
    qubits: tuple[int, ...]
    cbit: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if self.gate.name == "barrier":
            return
        if len(self.qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} needs {self.gate.num_qubits} "
                f"qubit(s), got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in operation: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"negative qubit index in {self.qubits}")

    @property
    def name(self) -> str:
        """The gate mnemonic of this operation."""
        return self.gate.name

    @property
    def params(self) -> tuple[float, ...]:
        """Bound gate parameters."""
        return self.gate.params

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operation({self.gate!r} @ {self.qubits})"


class Circuit:
    """A mutable quantum circuit over ``num_qubits`` qubits.

    The builder API mirrors common circuit libraries::

        circ = Circuit(3)
        circ.h(0)
        circ.cx(0, 1)
        circ.ry(1.2, qubit=2)
        circ.measure_all()
    """

    def __init__(self, num_qubits: int, operations: Iterable[Operation] = ()) -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self._num_qubits = int(num_qubits)
        self._ops: list[Operation] = []
        for op in operations:
            self.append(op)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits in the circuit."""
        return self._num_qubits

    @property
    def operations(self) -> tuple[Operation, ...]:
        """The operations in application order (immutable view)."""
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, index):
        return self._ops[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self._num_qubits == other._num_qubits and self._ops == other._ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit(num_qubits={self._num_qubits}, ops={len(self._ops)}, "
            f"cnots={self.cnot_count()})"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, op: Operation) -> None:
        """Append an operation, validating its qubit indices."""
        if op.gate.name != "barrier" and any(
            q >= self._num_qubits for q in op.qubits
        ):
            raise CircuitError(
                f"operation {op!r} out of range for {self._num_qubits} qubits"
            )
        self._ops.append(op)

    def add_gate(self, name: str, qubits, params: tuple[float, ...] = ()) -> None:
        """Append gate ``name`` on ``qubits`` (an int or a sequence of ints)."""
        if isinstance(qubits, int):
            qubits = (qubits,)
        self.append(Operation(Gate(name, tuple(params)), tuple(qubits)))

    def extend(self, ops: Iterable[Operation]) -> None:
        """Append every operation from ``ops``."""
        for op in ops:
            self.append(op)

    # Named builders -----------------------------------------------------
    def h(self, q: int) -> None:
        self.add_gate("h", q)

    def x(self, q: int) -> None:
        self.add_gate("x", q)

    def y(self, q: int) -> None:
        self.add_gate("y", q)

    def z(self, q: int) -> None:
        self.add_gate("z", q)

    def s(self, q: int) -> None:
        self.add_gate("s", q)

    def sdg(self, q: int) -> None:
        self.add_gate("sdg", q)

    def t(self, q: int) -> None:
        self.add_gate("t", q)

    def tdg(self, q: int) -> None:
        self.add_gate("tdg", q)

    def sx(self, q: int) -> None:
        self.add_gate("sx", q)

    def rx(self, theta: float, qubit: int) -> None:
        self.add_gate("rx", qubit, (theta,))

    def ry(self, theta: float, qubit: int) -> None:
        self.add_gate("ry", qubit, (theta,))

    def rz(self, theta: float, qubit: int) -> None:
        self.add_gate("rz", qubit, (theta,))

    def p(self, lam: float, qubit: int) -> None:
        self.add_gate("p", qubit, (lam,))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> None:
        self.add_gate("u3", qubit, (theta, phi, lam))

    def cx(self, control: int, target: int) -> None:
        self.add_gate("cx", (control, target))

    def cz(self, a: int, b: int) -> None:
        self.add_gate("cz", (a, b))

    def swap(self, a: int, b: int) -> None:
        self.add_gate("swap", (a, b))

    def rzz(self, theta: float, a: int, b: int) -> None:
        self.add_gate("rzz", (a, b), (theta,))

    def rxx(self, theta: float, a: int, b: int) -> None:
        self.add_gate("rxx", (a, b), (theta,))

    def ryy(self, theta: float, a: int, b: int) -> None:
        self.add_gate("ryy", (a, b), (theta,))

    def cp(self, lam: float, control: int, target: int) -> None:
        self.add_gate("cp", (control, target), (lam,))

    def ccx(self, c1: int, c2: int, target: int) -> None:
        self.add_gate("ccx", (c1, c2, target))

    def measure(self, qubit: int, cbit: int | None = None) -> None:
        """Measure ``qubit`` into classical bit ``cbit`` (defaults to ``qubit``)."""
        self.append(
            Operation(Gate("measure"), (qubit,), cbit if cbit is not None else qubit)
        )

    def measure_all(self) -> None:
        """Measure every qubit into its same-index classical bit."""
        for q in range(self._num_qubits):
            self.measure(q)

    def barrier(self) -> None:
        """Append a barrier pseudo-operation (blocks pass reordering)."""
        self.append(Operation(Gate("barrier"), ()))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate names in the circuit."""
        counts: dict[str, int] = {}
        for op in self._ops:
            counts[op.name] = counts.get(op.name, 0) + 1
        return counts

    def cnot_count(self) -> int:
        """Total CNOT cost: native CX plus the CX cost of other 2q+ gates."""
        return sum(op.gate.cnot_cost() for op in self._ops)

    def two_qubit_count(self) -> int:
        """Number of native two-qubit operations (any entangling gate)."""
        return sum(1 for op in self._ops if op.name in TWO_QUBIT_GATES)

    def depth(self) -> int:
        """Circuit depth counting unitary gates and measurements."""
        level = [0] * self._num_qubits
        depth = 0
        for op in self._ops:
            if op.name == "barrier":
                front = max(level) if level else 0
                level = [front] * self._num_qubits
                continue
            start = max(level[q] for q in op.qubits)
            for q in op.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def active_qubits(self) -> tuple[int, ...]:
        """Sorted qubits touched by at least one operation."""
        seen: set[int] = set()
        for op in self._ops:
            seen.update(op.qubits)
        return tuple(sorted(seen))

    def has_measurements(self) -> bool:
        """Whether the circuit contains any measure operation."""
        return any(op.name == "measure" for op in self._ops)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def copy(self) -> "Circuit":
        """Return a shallow copy (operations are immutable)."""
        return Circuit(self._num_qubits, self._ops)

    def without_measurements(self) -> "Circuit":
        """Return a copy with all measure/barrier pseudo-ops removed."""
        ops = [op for op in self._ops if op.name not in ("measure", "barrier")]
        return Circuit(self._num_qubits, ops)

    def inverse(self) -> "Circuit":
        """Return the adjoint circuit (reversed order, inverted gates)."""
        if self.has_measurements():
            raise CircuitError("cannot invert a circuit with measurements")
        ops = [
            Operation(op.gate.inverse(), op.qubits)
            for op in reversed(self._ops)
            if op.name != "barrier"
        ]
        return Circuit(self._num_qubits, ops)

    def remap(self, mapping: dict[int, int], num_qubits: int | None = None) -> "Circuit":
        """Return a copy with qubit ``q`` relabeled to ``mapping[q]``.

        ``num_qubits`` defaults to this circuit's width; pass a larger value
        to embed a block into a wider circuit.
        """
        width = self._num_qubits if num_qubits is None else int(num_qubits)
        out = Circuit(width)
        for op in self._ops:
            if op.name == "barrier":
                out.barrier()
                continue
            new_qubits = tuple(mapping[q] for q in op.qubits)
            cbit = mapping.get(op.cbit, op.cbit) if op.name == "measure" else None
            out.append(Operation(op.gate, new_qubits, cbit))
        return out

    def compose(self, other: "Circuit") -> "Circuit":
        """Return this circuit followed by ``other`` (same width required)."""
        if other.num_qubits != self._num_qubits:
            raise CircuitError(
                f"cannot compose circuits of widths {self._num_qubits} and "
                f"{other.num_qubits}"
            )
        out = self.copy()
        out.extend(other.operations)
        return out

    # ------------------------------------------------------------------
    # Unitary
    # ------------------------------------------------------------------
    def unitary(self) -> np.ndarray:
        """Compute the full ``2^n x 2^n`` unitary of the circuit.

        Measurements must be absent.  Uses tensor contraction so no gate is
        ever embedded into a dense full-width matrix.
        """
        from repro.sim.unitary import circuit_unitary

        return circuit_unitary(self)

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self._num_qubits} qubits, {len(self._ops)} ops, "
            f"depth {self.depth()}, {self.cnot_count()} CNOTs"
        )
