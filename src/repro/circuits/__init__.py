"""Circuit intermediate representation: gates, operations, circuits, QASM."""

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import (
    CNOT_COST,
    GATE_NUM_PARAMS,
    GATE_NUM_QUBITS,
    SELF_INVERSE_GATES,
    TWO_QUBIT_GATES,
    Gate,
    gate_matrix,
)
from repro.circuits.qasm import circuit_from_qasm, circuit_to_qasm
from repro.circuits.random_circuits import random_circuit, random_unitary

__all__ = [
    "Circuit",
    "Operation",
    "Gate",
    "gate_matrix",
    "GATE_NUM_PARAMS",
    "GATE_NUM_QUBITS",
    "TWO_QUBIT_GATES",
    "SELF_INVERSE_GATES",
    "CNOT_COST",
    "circuit_to_qasm",
    "circuit_from_qasm",
    "random_circuit",
    "random_unitary",
]
