"""Random circuit generation for tests and ablation studies."""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit

_ONE_QUBIT_POOL = ("h", "x", "rz", "ry", "rx", "t", "s")


def random_circuit(
    num_qubits: int,
    depth: int,
    rng: np.random.Generator | int | None = None,
    cx_probability: float = 0.35,
) -> Circuit:
    """Generate a random circuit with roughly ``depth`` layers of gates.

    Each step either places a CX on a random qubit pair (with probability
    ``cx_probability``) or a random one-qubit gate; parametric gates get
    uniformly random angles in ``[-pi, pi)``.
    """
    rng = np.random.default_rng(rng)
    circuit = Circuit(num_qubits)
    for _ in range(depth * num_qubits):
        if num_qubits >= 2 and rng.random() < cx_probability:
            control, target = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(control), int(target))
        else:
            name = str(rng.choice(_ONE_QUBIT_POOL))
            qubit = int(rng.integers(num_qubits))
            if name in ("rx", "ry", "rz"):
                angle = float(rng.uniform(-np.pi, np.pi))
                circuit.add_gate(name, qubit, (angle,))
            else:
                circuit.add_gate(name, qubit)
    return circuit


def random_unitary(dim: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Sample a Haar-random unitary of dimension ``dim``.

    Uses the QR decomposition of a complex Ginibre matrix with the phase
    correction that makes the distribution Haar.
    """
    rng = np.random.default_rng(rng)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    diag = np.diagonal(r)
    q = q * (diag / np.abs(diag))
    return q
