"""Gate definitions and their unitary matrices.

The library uses a small, explicit gate set that covers everything the
QUEST pipeline needs:

* fixed one-qubit gates: ``I, X, Y, Z, H, S, SDG, T, TDG, SX``
* parametric one-qubit rotations: ``RX, RY, RZ, P (phase), U3``
* two-qubit gates: ``CX (CNOT), CZ, SWAP, RZZ, RXX, RYY, CP``
* three-qubit gates: ``CCX (Toffoli), CSWAP``
* ``MEASURE`` / ``BARRIER`` pseudo-gates

Conventions
-----------
Matrices are written in the computational basis with **little-endian**
qubit ordering: for a two-qubit gate acting on ``(q0, q1)``, basis state
``|b1 b0>`` has index ``b0 + 2*b1`` where ``b0`` is the state of the
*first* listed qubit.  This matches Qiskit and is used consistently by
the simulators and embedding helpers in :mod:`repro.linalg`.

Rotation gates follow ``R_P(theta) = exp(-i * theta / 2 * P)``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GateError

_SQRT1_2 = 1.0 / math.sqrt(2.0)

#: Names of gates that take no parameters, with their matrices.
_FIXED_MATRICES: dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQRT1_2, _SQRT1_2], [_SQRT1_2, -_SQRT1_2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    # Two-qubit gates (little-endian: first qubit is the low-order bit).
    # CX: first listed qubit is the control, second is the target.
    "cx": np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
        ],
        dtype=complex,
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    ),
}

#: Number of qubits for each named gate.
GATE_NUM_QUBITS: dict[str, int] = {
    "id": 1, "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1, "t": 1,
    "tdg": 1, "sx": 1, "rx": 1, "ry": 1, "rz": 1, "p": 1, "u1": 1,
    "u2": 1, "u3": 1, "u": 1,
    "cx": 2, "cz": 2, "swap": 2, "rzz": 2, "rxx": 2, "ryy": 2, "cp": 2,
    "ccx": 3, "cswap": 3,
    "measure": 1, "barrier": 0,
}

#: Number of parameters for each named gate.
GATE_NUM_PARAMS: dict[str, int] = {
    "id": 0, "x": 0, "y": 0, "z": 0, "h": 0, "s": 0, "sdg": 0, "t": 0,
    "tdg": 0, "sx": 0,
    "rx": 1, "ry": 1, "rz": 1, "p": 1, "u1": 1, "u2": 2, "u3": 3, "u": 3,
    "cx": 0, "cz": 0, "swap": 0, "rzz": 1, "rxx": 1, "ryy": 1, "cp": 1,
    "ccx": 0, "cswap": 0,
    "measure": 0, "barrier": 0,
}

#: Gates treated as entangling (two-qubit) for CNOT-count purposes.
TWO_QUBIT_GATES = frozenset({"cx", "cz", "swap", "rzz", "rxx", "ryy", "cp"})

#: Self-inverse gates: g . g == identity.
SELF_INVERSE_GATES = frozenset({"id", "x", "y", "z", "h", "cx", "cz", "swap"})

#: CNOT cost of each gate when lowered to the {1q, CX} basis.
CNOT_COST: dict[str, int] = {
    "cx": 1, "cz": 1, "cp": 2, "rzz": 2, "rxx": 2, "ryy": 2, "swap": 3,
    "ccx": 6, "cswap": 8,
}


def rx_matrix(theta: float) -> np.ndarray:
    """Return the matrix of ``RX(theta) = exp(-i theta X / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Return the matrix of ``RY(theta) = exp(-i theta Y / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """Return the matrix of ``RZ(theta) = exp(-i theta Z / 2)``."""
    phase = cmath.exp(1j * theta / 2.0)
    return np.array([[1.0 / phase, 0], [0, phase]], dtype=complex)


def phase_matrix(lam: float) -> np.ndarray:
    """Return the matrix of the phase gate ``P(lambda) = diag(1, e^{i lambda})``."""
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Return the matrix of the generic one-qubit gate ``U3(theta, phi, lambda)``.

    Follows the OpenQASM 2.0 / Qiskit convention::

        U3 = [[cos(t/2),             -e^{i lam} sin(t/2)],
              [e^{i phi} sin(t/2),    e^{i (phi+lam)} cos(t/2)]]
    """
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def rzz_matrix(theta: float) -> np.ndarray:
    """Return ``exp(-i theta/2 Z (x) Z)``, diagonal in the computational basis."""
    p = cmath.exp(-1j * theta / 2.0)
    q = cmath.exp(1j * theta / 2.0)
    return np.diag([p, q, q, p]).astype(complex)


def rxx_matrix(theta: float) -> np.ndarray:
    """Return ``exp(-i theta/2 X (x) X)``."""
    c, s = math.cos(theta / 2.0), -1j * math.sin(theta / 2.0)
    out = np.zeros((4, 4), dtype=complex)
    out[0, 0] = out[1, 1] = out[2, 2] = out[3, 3] = c
    out[0, 3] = out[3, 0] = s
    out[1, 2] = out[2, 1] = s
    return out


def ryy_matrix(theta: float) -> np.ndarray:
    """Return ``exp(-i theta/2 Y (x) Y)``."""
    c = math.cos(theta / 2.0)
    s = math.sin(theta / 2.0)
    out = np.zeros((4, 4), dtype=complex)
    out[0, 0] = out[1, 1] = out[2, 2] = out[3, 3] = c
    out[0, 3] = out[3, 0] = 1j * s
    out[1, 2] = out[2, 1] = -1j * s
    return out


def cp_matrix(lam: float) -> np.ndarray:
    """Return the controlled-phase matrix ``diag(1, 1, 1, e^{i lambda})``."""
    return np.diag([1, 1, 1, cmath.exp(1j * lam)]).astype(complex)


def _ccx_matrix() -> np.ndarray:
    # Little-endian on (control, control, target): target is the *last*
    # listed qubit, i.e. the high-order bit of the local index.
    out = np.eye(8, dtype=complex)
    # Flip bit 2 (the target) when bits 0 and 1 (controls) are both 1.
    i, j = 0b011, 0b111
    out[[i, j]] = out[[j, i]]
    return out


def _cswap_matrix() -> np.ndarray:
    # (control, a, b): swap bits 1 and 2 when bit 0 is set.
    out = np.eye(8, dtype=complex)
    i, j = 0b011, 0b101
    out[[i, j]] = out[[j, i]]
    return out


_PARAMETRIC_BUILDERS = {
    "rx": lambda p: rx_matrix(p[0]),
    "ry": lambda p: ry_matrix(p[0]),
    "rz": lambda p: rz_matrix(p[0]),
    "p": lambda p: phase_matrix(p[0]),
    "u1": lambda p: phase_matrix(p[0]),
    "u2": lambda p: u3_matrix(math.pi / 2.0, p[0], p[1]),
    "u3": lambda p: u3_matrix(p[0], p[1], p[2]),
    "u": lambda p: u3_matrix(p[0], p[1], p[2]),
    "rzz": lambda p: rzz_matrix(p[0]),
    "rxx": lambda p: rxx_matrix(p[0]),
    "ryy": lambda p: ryy_matrix(p[0]),
    "cp": lambda p: cp_matrix(p[0]),
}


def gate_matrix(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """Return the unitary matrix of the named gate.

    Raises :class:`GateError` for unknown gates, pseudo-gates
    (``measure``/``barrier``), or a wrong number of parameters.
    """
    if name in ("measure", "barrier"):
        raise GateError(f"pseudo-gate {name!r} has no unitary matrix")
    expected = GATE_NUM_PARAMS.get(name)
    if expected is None:
        raise GateError(f"unknown gate {name!r}")
    if len(params) != expected:
        raise GateError(
            f"gate {name!r} takes {expected} parameter(s), got {len(params)}"
        )
    if name in _FIXED_MATRICES:
        return _FIXED_MATRICES[name].copy()
    if name == "ccx":
        return _ccx_matrix()
    if name == "cswap":
        return _cswap_matrix()
    return _PARAMETRIC_BUILDERS[name](params)


@dataclass(frozen=True)
class Gate:
    """A named gate with bound parameters.

    Attributes
    ----------
    name:
        Lower-case gate mnemonic (e.g. ``"cx"``, ``"ry"``).
    params:
        Bound real parameters, empty for fixed gates.
    """

    name: str
    params: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        expected = GATE_NUM_PARAMS.get(self.name)
        if expected is None:
            raise GateError(f"unknown gate {self.name!r}")
        if len(self.params) != expected:
            raise GateError(
                f"gate {self.name!r} takes {expected} parameter(s), "
                f"got {len(self.params)}"
            )
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))

    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""
        return GATE_NUM_QUBITS[self.name]

    @property
    def is_parametric(self) -> bool:
        """Whether the gate carries continuous parameters."""
        return GATE_NUM_PARAMS[self.name] > 0

    def matrix(self) -> np.ndarray:
        """Return the gate's unitary matrix (little-endian)."""
        return gate_matrix(self.name, self.params)

    def inverse(self) -> "Gate":
        """Return a gate whose matrix is the adjoint of this gate's matrix.

        Raises :class:`GateError` for pseudo-gates.
        """
        if self.name in ("measure", "barrier"):
            raise GateError(f"pseudo-gate {self.name!r} has no inverse")
        inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.name in SELF_INVERSE_GATES or self.name in ("ccx", "cswap"):
            return self
        if self.name in inverse_names:
            return Gate(inverse_names[self.name])
        if self.name in ("rx", "ry", "rz", "p", "u1", "rzz", "rxx", "ryy", "cp"):
            return Gate(self.name, (-self.params[0],))
        if self.name == "sx":
            return Gate("rx", (-math.pi / 2.0,))
        if self.name in ("u3", "u"):
            theta, phi, lam = self.params
            return Gate(self.name, (-theta, -lam, -phi))
        if self.name == "u2":
            phi, lam = self.params
            return Gate("u3", (-math.pi / 2.0, -lam, -phi))
        raise GateError(f"no inverse rule for gate {self.name!r}")

    def cnot_cost(self) -> int:
        """CNOT count of this gate after lowering to the {1q, CX} basis."""
        return CNOT_COST.get(self.name, 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"Gate({self.name}({args}))"
        return f"Gate({self.name})"
