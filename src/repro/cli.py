"""Command-line interface: QASM in, approximate QASM circuits out.

Mirrors the original artifact's file-based workflow
(``input_qasm_files`` -> partition -> synthesis -> dual annealing ->
approximation files)::

    python -m repro input.qasm --out-dir approx/ --threshold 0.2

writes ``approx/approx_00.qasm``, ``approx_01.qasm``, ... plus a summary
line per approximation.

Observability: ``--trace-file run.trace`` streams span/event JSON lines
for the whole run (render with ``python -m repro trace-summary
run.trace``), ``--metrics-json metrics.json`` dumps the run's metrics
snapshot, and ``--log-level`` funnels all diagnostics through the
``repro`` logger (below-WARNING to stdout, WARNING+ to stderr).

Certification: every approximation ships with an ``approx_XX.claims.json``
manifest (per-block epsilon claims); ``--certify`` re-derives those
claims independently before the run exits, and ``python -m repro
verify-run original.qasm approx.qasm --claims approx.claims.json``
certifies the artifacts later, with no access to the producing run
(exit 0 = certified, 1 = violated, 2 = unusable inputs).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.circuits import circuit_from_qasm, circuit_to_qasm
from repro.core import QuestConfig, run_quest
from repro.exceptions import ArrayBackendError, ReproError, StoreError
from repro.linalg.array_api import BACKEND_NAMES, get_backend
from repro.noise import NOISE_ENGINES
from repro.observability import (
    JsonlSink,
    Tracer,
    configure_logging,
    get_logger,
    render_summary,
    summarize_trace,
    use_tracer,
)
from repro.resilience.faults import parse_fault_spec
from repro.verify import (
    DEFAULT_BASIS_STIMULI,
    DEFAULT_HAAR_STIMULI,
    DEFAULT_MAX_EXACT_QUBITS,
    certify_equivalence,
    claims_for_choice,
    claims_from_manifest,
    claims_to_manifest,
)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _nonnegative_float(value: str) -> float:
    parsed = float(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QUEST: approximate a quantum circuit to reduce CNOTs.",
    )
    parser.add_argument("input", type=Path, help="OpenQASM 2.0 circuit file")
    _add_compile_options(parser)
    return parser


def build_compile_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro compile-batch",
        description="Compile a batch of circuits through one shared "
        "substrate: a persistent worker pool, a cross-circuit "
        "content-addressed cache, and in-flight block dedup.  "
        "Per-circuit results are bit-identical to solo runs.",
    )
    parser.add_argument(
        "inputs",
        type=Path,
        nargs="+",
        help="OpenQASM 2.0 circuit files (one result set per input)",
    )
    parser.add_argument(
        "--batch-window",
        type=_positive_int,
        default=2,
        help="circuits compiled concurrently (bounded in-flight "
        "window; synthesis of circuit i+1 overlaps selection of "
        "circuit i; default 2)",
    )
    _add_compile_options(parser)
    return parser


def _add_compile_options(parser: argparse.ArgumentParser) -> None:
    """The compile knobs shared by ``repro`` and ``repro compile-batch``."""
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("quest_output"),
        help="directory for the approximation .qasm files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="per-block process-distance threshold (default 0.2)",
    )
    parser.add_argument(
        "--max-samples", type=int, default=16, help="max approximations (M)"
    )
    parser.add_argument(
        "--block-qubits", type=int, default=3, help="max qubits per block"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--time-budget",
        type=float,
        default=30.0,
        help="per-block synthesis budget in seconds",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes for block synthesis (1 = inline)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable reuse of synthesis results across identical blocks",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the persistent block-synthesis cache "
        "(default: in-memory only)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=_positive_int,
        default=None,
        help="bound the disk tier to this many entries per namespace, "
        "evicting least-recently-used files (default: unbounded)",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help="root of the sharded multi-tenant artifact store "
        "(supersedes --cache-dir when both are given); several "
        "runs/daemon replicas may share one store root and reuse each "
        "other's published synthesis results",
    )
    parser.add_argument(
        "--namespace",
        default="default",
        help="tenant namespace inside the artifact store; entries of "
        "different namespaces never mix (default 'default')",
    )
    parser.add_argument(
        "--shm-transport",
        action="store_true",
        help="move candidate arrays from worker processes through "
        "checksummed shared-memory envelopes instead of the result "
        "pipe (workers > 1 only; falls back to pickle when shared "
        "memory is unavailable)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="directory for the crash-recovery run journal; completed "
        "block pools persist there atomically",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from an existing journal in --checkpoint-dir, "
        "skipping already-completed blocks (refused if the journal's "
        "config fingerprint does not match this run)",
    )
    parser.add_argument(
        "--retry-attempts",
        type=_positive_int,
        default=2,
        help="synthesis attempts per block before the exact-pool "
        "fallback; the first retry reuses the block seed, later ones "
        "escalate deterministically (default 2)",
    )
    parser.add_argument(
        "--retry-budget-multiplier",
        type=float,
        default=1.0,
        help="grow the per-block time budget by this factor on each "
        "retry attempt (default 1.0 = flat)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=_nonnegative_float,
        default=0.0,
        metavar="SECONDS",
        help="base delay of the full-jitter exponential backoff before "
        "each synthesis retry (default 0 = retry immediately); affects "
        "wall time only, never results",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="debug: deterministic fault schedule, e.g. "
        "'raise@0,hang@2:1,nan@*,flip-cache@0,torn-checkpoint@1,kill@3' "
        "(kind@block[:attempt], * = every block)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed pinning the random details of injected faults",
    )
    parser.add_argument(
        "--trace-file",
        type=Path,
        default=None,
        help="write a JSON-lines span/event trace of the run here "
        "(render with 'python -m repro trace-summary FILE')",
    )
    parser.add_argument(
        "--metrics-json",
        type=Path,
        default=None,
        help="write the run's metrics snapshot (counters/gauges/"
        "histograms) to this JSON file",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum level of diagnostics (default info); records "
        "below warning go to stdout, warning and above to stderr",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="independently certify every selected approximation "
        "against its epsilon claims before exiting (exit code 1 on a "
        "violated claim)",
    )
    parser.add_argument(
        "--certify-candidates",
        action="store_true",
        help="harden candidate health checks into independent "
        "certification: rebuild every worker/cache/checkpoint "
        "candidate's unitary through the certifier's own contraction "
        "path (slower)",
    )
    parser.add_argument(
        "--noise-engine",
        choices=NOISE_ENGINES,
        default="auto",
        help="engine for post-run noisy-ensemble evaluation: 'ptm' "
        "contracts the whole ensemble as one batched superoperator "
        "pass; 'auto' (default) keeps the density/trajectories "
        "dispatch",
    )
    parser.add_argument(
        "--array-backend",
        choices=BACKEND_NAMES,
        default=None,
        help="array library for the ptm engine (default: "
        "$REPRO_ARRAY_BACKEND, falling back to numpy); exits 2 if the "
        "requested library is not installed",
    )


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the compilation daemon: accepts compile jobs "
        "(QASM + config overrides) over a Unix socket, shares one "
        "worker pool / cache / dedup registry across all jobs, and "
        "journals every job in a crash-safe ledger so a killed daemon "
        "warm-restarts and resumes mid-flight jobs bit-identically.",
    )
    parser.add_argument(
        "--socket", type=Path, required=True, help="Unix socket path to bind"
    )
    parser.add_argument(
        "--ledger-dir",
        type=Path,
        required=True,
        help="job ledger directory (atomic job records + per-job "
        "checkpoints); reuse it across restarts to recover jobs",
    )
    parser.add_argument(
        "--capacity",
        type=_positive_int,
        default=64,
        help="bounded queue size; submits beyond it are rejected with "
        "a structured queue_full verdict (default 64)",
    )
    parser.add_argument(
        "--max-concurrency",
        type=_positive_int,
        default=2,
        help="jobs compiled concurrently (default 2)",
    )
    parser.add_argument(
        "--tenant-weight",
        action="append",
        default=[],
        metavar="NAME=WEIGHT",
        help="fair-share weight of a tenant (repeatable; default 1.0 "
        "each): a weight-2 tenant drains twice as fast under load",
    )
    parser.add_argument(
        "--tenant-quota",
        action="append",
        default=[],
        metavar="NAME=JOBS",
        help="max queued jobs of a tenant (repeatable; default: the "
        "full queue capacity)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=_positive_int,
        default=3,
        help="consecutive failing/recycling jobs that open the circuit "
        "breaker and switch to degraded exact-block compiles (default 3)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        help="seconds the breaker stays open before probing the full "
        "path again (default 30)",
    )
    # Substrate + default-compile knobs (requests may override the
    # non-substrate ones per job).
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="default per-block process-distance threshold",
    )
    parser.add_argument(
        "--max-samples", type=int, default=16,
        help="default max approximations (M)",
    )
    parser.add_argument(
        "--block-qubits", type=int, default=3,
        help="default max qubits per block",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="default random seed"
    )
    parser.add_argument(
        "--time-budget", type=float, default=30.0,
        help="default per-block synthesis budget in seconds",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes of the shared pool (1 = inline)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the shared block-synthesis cache",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="persistent disk tier of the shared cache",
    )
    parser.add_argument(
        "--cache-max-entries", type=_positive_int, default=None,
        help="LRU bound on the disk tier, per namespace",
    )
    parser.add_argument(
        "--store-dir", type=Path, default=None,
        help="sharded artifact-store root shared by daemon replicas; "
        "takes precedence over --cache-dir",
    )
    parser.add_argument(
        "--namespace", default="default",
        help="store namespace for jobs whose submit carries neither a "
        "namespace nor a tenant-derived one (default 'default')",
    )
    parser.add_argument(
        "--shm-transport", action="store_true",
        help="ship worker results through shared memory",
    )
    parser.add_argument(
        "--retry-attempts", type=_positive_int, default=2,
        help="default synthesis attempts per block",
    )
    parser.add_argument(
        "--retry-backoff", type=_nonnegative_float, default=0.0,
        metavar="SECONDS",
        help="default full-jitter retry backoff base (0 = immediate)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum level of diagnostics (default info)",
    )
    return parser


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit circuits to a running compilation daemon "
        "and write the returned approximations + claims manifests "
        "(one subdirectory per input, like compile-batch).",
    )
    parser.add_argument(
        "inputs", type=Path, nargs="+", help="OpenQASM 2.0 circuit files"
    )
    parser.add_argument(
        "--socket", type=Path, required=True, help="daemon Unix socket path"
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("quest_output"),
        help="directory for the approximation .qasm files",
    )
    parser.add_argument(
        "--tenant", default="default", help="tenant name (default 'default')"
    )
    parser.add_argument(
        "--namespace",
        default=None,
        help="artifact-store namespace for the jobs' cache traffic "
        "(default: derived from the tenant name)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job deadline; propagated into the pipeline's "
        "cooperative deadline checks (default: none)",
    )
    parser.add_argument(
        "--config-json",
        default=None,
        metavar="JSON",
        help="QuestConfig overrides as a JSON object, e.g. "
        "'{\"threshold_per_block\": 0.3}' (substrate fields rejected)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="seconds to wait for each job (default 600)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum level of diagnostics (default info)",
    )
    return parser


def build_service_status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro service-status",
        description="Query a running daemon's health, readiness, queue "
        "depths, breaker state, and metrics.  Exit 0: ready; 1: up but "
        "not ready (draining); 2: unreachable.",
    )
    parser.add_argument(
        "--socket", type=Path, required=True, help="daemon Unix socket path"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full status document as JSON",
    )
    return parser


def _parse_tenant_pairs(pairs: list[str], cast, flag: str, logger):
    """Parse repeated NAME=VALUE options; returns (dict, exit_code)."""
    parsed = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            logger.error(f"error: {flag} expects NAME=VALUE, got {pair!r}")
            return None, 2
        try:
            parsed[name] = cast(value)
        except ValueError as exc:
            logger.error(f"error: {flag} {pair!r}: {exc}")
            return None, 2
    return parsed, 0


def _serve_main(argv: list[str]) -> int:
    from repro.service import serve

    args = build_serve_parser().parse_args(argv)
    configure_logging(args.log_level)
    logger = get_logger("cli")
    weights, code = _parse_tenant_pairs(
        args.tenant_weight, float, "--tenant-weight", logger
    )
    if code:
        return code
    quotas, code = _parse_tenant_pairs(
        args.tenant_quota, int, "--tenant-quota", logger
    )
    if code:
        return code
    from repro.store import validate_namespace

    try:
        validate_namespace(args.namespace)
    except StoreError as exc:
        logger.error(f"error: --namespace: {exc}")
        return 2
    config = QuestConfig(
        seed=args.seed,
        max_samples=args.max_samples,
        max_block_qubits=args.block_qubits,
        threshold_per_block=args.threshold,
        block_time_budget=args.time_budget,
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=None if args.cache_dir is None else str(args.cache_dir),
        cache_max_entries=args.cache_max_entries,
        store_dir=None if args.store_dir is None else str(args.store_dir),
        namespace=args.namespace,
        shm_transport=args.shm_transport,
        retry_attempts=args.retry_attempts,
        retry_backoff_seconds=args.retry_backoff,
    )
    try:
        serve(
            str(args.socket),
            str(args.ledger_dir),
            config,
            capacity=args.capacity,
            max_concurrency=args.max_concurrency,
            tenant_weights=weights or None,
            tenant_quotas=quotas or None,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_seconds=args.breaker_cooldown,
        )
    except ReproError as exc:
        logger.error(f"daemon failed: {exc}")
        return 1
    except KeyboardInterrupt:
        pass
    return 0


def _submit_main(argv: list[str]) -> int:
    from repro.service import ServiceClient

    args = build_submit_parser().parse_args(argv)
    configure_logging(args.log_level)
    logger = get_logger("cli")
    overrides = {}
    if args.config_json is not None:
        try:
            overrides = json.loads(args.config_json)
        except json.JSONDecodeError as exc:
            logger.error(f"error: --config-json: {exc}")
            return 2
        if not isinstance(overrides, dict):
            logger.error("error: --config-json must be a JSON object")
            return 2
    texts = []
    for path in args.inputs:
        try:
            texts.append(path.read_text())
        except OSError as exc:
            logger.error(f"error reading {path}: {exc}")
            return 2
    client = ServiceClient(str(args.socket))
    failures = 0
    for path, qasm in zip(args.inputs, texts):
        try:
            payload = client.submit_and_wait(
                qasm,
                config=overrides,
                tenant=args.tenant,
                namespace=args.namespace,
                deadline_seconds=args.deadline,
                timeout=args.timeout,
            )
        except ReproError as exc:
            logger.error(f"{path.name}: {exc}")
            failures += 1
            continue
        degraded = " [DEGRADED: exact reassembly]" if payload["degraded"] else ""
        logger.info(f"{path.name}: {payload.get('summary', 'done')}{degraded}")
        out_dir = args.out_dir / path.stem
        out_dir.mkdir(parents=True, exist_ok=True)
        for index, (qasm_text, claims) in enumerate(
            zip(payload["circuits"], payload["claims"])
        ):
            (out_dir / f"approx_{index:02d}.qasm").write_text(qasm_text)
            (out_dir / f"approx_{index:02d}.claims.json").write_text(
                json.dumps(claims, indent=1) + "\n"
            )
            logger.info(
                f"  {out_dir / f'approx_{index:02d}.qasm'}: "
                f"{payload['cnot_counts'][index]} CNOTs "
                f"(baseline {payload['original_cnot_count']})"
            )
    return 1 if failures else 0


def _service_status_main(argv: list[str]) -> int:
    from repro.service import ServiceClient

    args = build_service_status_parser().parse_args(argv)
    client = ServiceClient(str(args.socket))
    try:
        status = client.status()
    except ReproError as exc:
        print(f"unreachable: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=1, default=str))
    else:
        breaker = status.get("breaker", {})
        print(
            f"ready={status.get('ready')} "
            f"uptime={status.get('uptime_seconds', 0):.0f}s "
            f"queue={status.get('queue_depth')}/{status.get('capacity')} "
            f"active={status.get('active_jobs')}"
            f"/{status.get('max_concurrency')} "
            f"breaker={breaker.get('state')} "
            f"degraded_jobs={status.get('degraded_jobs')} "
            f"stranded_joiners={status.get('stranded_joiners')}"
        )
        for state, count in sorted(status.get("jobs_by_state", {}).items()):
            print(f"  jobs {state}: {count}")
        for tenant, info in sorted(status.get("tenants", {}).items()):
            print(
                f"  tenant {tenant}: queued={info['queued']} "
                f"dispatched={info['dispatched']} weight={info['weight']}"
            )
        for reason, count in sorted(status.get("rejected", {}).items()):
            print(f"  rejected {reason}: {count}")
        store = status.get("store", {})
        for namespace, info in sorted(store.get("namespaces", {}).items()):
            print(
                f"  store {namespace}: hits={info.get('hits', 0)} "
                f"misses={info.get('misses', 0)} "
                f"disk_hits={info.get('disk_hits', 0)} "
                f"evictions={info.get('evictions', 0)} "
                f"corrupt={info.get('corrupt_entries', 0)}"
            )
    return 0 if status.get("ready") else 1


def build_trace_summary_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace-summary",
        description="Aggregate a --trace-file JSON-lines trace into "
        "per-stage wall-time and event-count tables.",
    )
    parser.add_argument(
        "trace", type=Path, help="trace file written by --trace-file"
    )
    return parser


def build_verify_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro verify-run",
        description="Independently certify that an approximate circuit "
        "stays within its claimed Hilbert-Schmidt budget of the "
        "original.  Exit 0: certified; 1: a claim is violated; 2: the "
        "inputs could not be certified at all.",
    )
    parser.add_argument(
        "original", type=Path, help="original OpenQASM 2.0 circuit"
    )
    parser.add_argument(
        "approximate", type=Path, help="stitched approximate circuit"
    )
    parser.add_argument(
        "--claims",
        type=Path,
        default=None,
        help="claims manifest (approx_XX.claims.json) with per-block "
        "epsilons; enables block-localized diagnosis",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="explicit whole-circuit HS-distance budget (defaults to "
        "the manifest's epsilon sum; required without --claims)",
    )
    parser.add_argument(
        "--max-exact-qubits",
        type=_positive_int,
        default=DEFAULT_MAX_EXACT_QUBITS,
        help="widest circuit certified by exact unitary diff; wider "
        f"ones use random-stimulus probes (default "
        f"{DEFAULT_MAX_EXACT_QUBITS})",
    )
    parser.add_argument(
        "--haar-stimuli",
        type=_positive_int,
        default=DEFAULT_HAAR_STIMULI,
        help="Haar-random stimuli in the stimulus regime "
        f"(default {DEFAULT_HAAR_STIMULI})",
    )
    parser.add_argument(
        "--basis-stimuli",
        type=_positive_int,
        default=DEFAULT_BASIS_STIMULI,
        help="computational-basis stimuli in the stimulus regime "
        f"(default {DEFAULT_BASIS_STIMULI})",
    )
    parser.add_argument(
        "--stimulus-seed",
        type=int,
        default=0,
        help="seed of the stimulus draw (certification is "
        "deterministic for a fixed seed; default 0)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also write the full certification report to this file",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum level of diagnostics (default info)",
    )
    return parser


def _verify_run_main(argv: list[str]) -> int:
    args = build_verify_run_parser().parse_args(argv)
    configure_logging(args.log_level)
    logger = get_logger("verify")
    try:
        original = circuit_from_qasm(args.original.read_text())
        approximate = circuit_from_qasm(args.approximate.read_text())
    except (OSError, ReproError) as exc:
        logger.error(f"error reading circuits: {exc}")
        return 2
    claims = None
    block_qubits = None
    if args.claims is not None:
        try:
            manifest = json.loads(args.claims.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            logger.error(f"error reading {args.claims}: {exc}")
            return 2
        try:
            block_qubits, claims = claims_from_manifest(manifest)
        except ReproError as exc:
            logger.error(f"error: {args.claims}: {exc}")
            return 2
    elif args.budget is None:
        logger.error("error: nothing to certify against; pass --claims "
                     "and/or --budget")
        return 2
    try:
        report = certify_equivalence(
            original,
            approximate,
            claims,
            block_qubits=block_qubits,
            budget=args.budget,
            max_exact_qubits=args.max_exact_qubits,
            haar_stimuli=args.haar_stimuli,
            basis_stimuli=args.basis_stimuli,
            rng=args.stimulus_seed,
        )
    except ReproError as exc:
        logger.error(f"certification could not run: {exc}")
        return 2
    logger.info(report.summary())
    for certificate in report.blocks:
        if not certificate.ok:
            logger.warning(
                f"  block {certificate.index} "
                f"(qubits {list(certificate.qubits)}): {certificate.reason}"
            )
    if args.json is not None:
        try:
            args.json.write_text(
                json.dumps(report.to_dict(), indent=1) + "\n"
            )
        except OSError as exc:
            logger.error(f"error: --json {args.json}: {exc}")
            return 2
        logger.info(f"  report written to {args.json}")
    return 0 if report.ok else 1


def _trace_summary_main(argv: list[str]) -> int:
    args = build_trace_summary_parser().parse_args(argv)
    try:
        summary = summarize_trace(args.trace)
    except OSError as exc:
        print(f"error reading {args.trace}: {exc}", file=sys.stderr)
        return 2
    print(render_summary(summary))
    return 0


def _config_from_args(args) -> QuestConfig:
    """Build the QuestConfig both compile entry points share."""
    return QuestConfig(
        seed=args.seed,
        max_samples=args.max_samples,
        max_block_qubits=args.block_qubits,
        threshold_per_block=args.threshold,
        block_time_budget=args.time_budget,
        workers=args.workers,
        cache=not args.no_cache,
        cache_dir=None if args.cache_dir is None else str(args.cache_dir),
        cache_max_entries=args.cache_max_entries,
        store_dir=None if args.store_dir is None else str(args.store_dir),
        namespace=args.namespace,
        shm_transport=args.shm_transport,
        checkpoint_dir=(
            None if args.checkpoint_dir is None else str(args.checkpoint_dir)
        ),
        retry_attempts=args.retry_attempts,
        retry_budget_multiplier=args.retry_budget_multiplier,
        retry_backoff_seconds=args.retry_backoff,
        certify=args.certify,
        certify_candidates=args.certify_candidates,
        noise_engine=args.noise_engine,
        array_backend=args.array_backend,
    )


def _compile_preflight(args, logger) -> int:
    """Shared argument validation; returns 0 or the exit code."""
    from repro.store import validate_namespace

    try:
        validate_namespace(args.namespace)
    except StoreError as exc:
        logger.error(f"error: --namespace: {exc}")
        return 2
    for flag, directory in (
        ("cache", args.cache_dir), ("store", args.store_dir)
    ):
        if directory is not None and not args.no_cache:
            try:
                directory.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                logger.error(f"error: {flag} dir {directory}: {exc}")
                return 2
    if args.resume and args.checkpoint_dir is None:
        logger.error("error: --resume requires --checkpoint-dir")
        return 2
    try:
        # Resolve eagerly so a missing array library (e.g. --array-backend
        # cupy on a CPU-only host) fails before any synthesis work starts.
        get_backend(args.array_backend)
    except ArrayBackendError as exc:
        logger.error(f"error: --array-backend: {exc}")
        return 2
    return 0


def _parse_fault_injector(args, logger):
    """Returns (injector, exit_code); exit_code nonzero on bad spec."""
    if args.inject_faults is None:
        return None, 0
    try:
        return parse_fault_spec(args.inject_faults, seed=args.fault_seed), 0
    except ValueError as exc:
        logger.error(f"error: --inject-faults: {exc}")
        return None, 2


def _write_approximations(result, out_dir: Path, block_qubits: int, logger) -> None:
    """Write approx_XX.qasm + claims manifests for one QuestResult."""
    out_dir.mkdir(parents=True, exist_ok=True)
    for index, (approx, bound) in enumerate(
        zip(result.circuits, result.selection.bounds)
    ):
        path = out_dir / f"approx_{index:02d}.qasm"
        path.write_text(circuit_to_qasm(approx))
        claims = claims_for_choice(
            result.pools, result.selection.choices[index]
        )
        claims_path = out_dir / f"approx_{index:02d}.claims.json"
        claims_path.write_text(
            json.dumps(
                claims_to_manifest(claims, block_qubits=block_qubits),
                indent=1,
            )
            + "\n"
        )
        logger.info(
            f"  {path}: {approx.cnot_count()} CNOTs "
            f"(bound {bound:.4f}, baseline {result.original_cnot_count})"
        )


def _compile_batch_main(argv: list[str]) -> int:
    from repro.batch import run_quest_batch

    args = build_compile_batch_parser().parse_args(argv)
    configure_logging(args.log_level)
    logger = get_logger("cli")
    circuits = []
    for path in args.inputs:
        try:
            circuits.append(circuit_from_qasm(path.read_text()))
        except (OSError, ReproError) as exc:
            logger.error(f"error reading {path}: {exc}")
            return 2
    code = _compile_preflight(args, logger)
    if code:
        return code
    fault_injector, code = _parse_fault_injector(args, logger)
    if code:
        return code
    config = _config_from_args(args)
    tracer = None
    if args.trace_file is not None:
        try:
            tracer = Tracer(JsonlSink(args.trace_file))
        except OSError as exc:
            logger.error(f"error: --trace-file {args.trace_file}: {exc}")
            return 2
    try:
        with use_tracer(tracer) if tracer is not None else nullcontext():
            batch = run_quest_batch(
                circuits,
                config,
                window=args.batch_window,
                checkpoint_dir=(
                    None
                    if args.checkpoint_dir is None
                    else str(args.checkpoint_dir)
                ),
                resume=args.resume,
                fault_injector=fault_injector,
            )
    except ReproError as exc:
        logger.error(f"QUEST batch failed: {exc}")
        return 1
    finally:
        if tracer is not None:
            tracer.close()
    logger.info(batch.summary())
    for path, result in zip(args.inputs, batch.results):
        logger.info(f"{path.name}: {result.summary()}")
        _write_approximations(
            result, args.out_dir / path.stem, args.block_qubits, logger
        )
    if args.metrics_json is not None:
        try:
            args.metrics_json.write_text(
                json.dumps(batch.metrics, indent=1, default=str) + "\n"
            )
        except OSError as exc:
            logger.error(f"error: --metrics-json {args.metrics_json}: {exc}")
            return 1
        logger.info(f"  metrics: wrote batch snapshot to {args.metrics_json}")
    if config.certify:
        violated = [
            path.name
            for path, result in zip(args.inputs, batch.results)
            if result.certified is False
        ]
        if violated:
            logger.error(
                f"certification VIOLATED for {', '.join(violated)}"
            )
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace-summary":
        return _trace_summary_main(argv[1:])
    if argv and argv[0] == "verify-run":
        return _verify_run_main(argv[1:])
    if argv and argv[0] == "compile-batch":
        return _compile_batch_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_main(argv[1:])
    if argv and argv[0] == "service-status":
        return _service_status_main(argv[1:])
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    logger = get_logger("cli")
    try:
        circuit = circuit_from_qasm(args.input.read_text())
    except (OSError, ReproError) as exc:
        logger.error(f"error reading {args.input}: {exc}")
        return 2
    code = _compile_preflight(args, logger)
    if code:
        return code
    fault_injector, code = _parse_fault_injector(args, logger)
    if code:
        return code
    tracer = None
    if args.trace_file is not None:
        try:
            tracer = Tracer(JsonlSink(args.trace_file))
        except OSError as exc:
            logger.error(f"error: --trace-file {args.trace_file}: {exc}")
            return 2
    config = _config_from_args(args)
    try:
        result = run_quest(
            circuit,
            config,
            resume=args.resume,
            fault_injector=fault_injector,
            tracer=tracer,
        )
    except ReproError as exc:
        logger.error(f"QUEST failed: {exc}")
        return 1
    finally:
        if tracer is not None:
            tracer.close()
    logger.info(result.summary())
    logger.info(
        f"  synthesis: {result.cache_misses} block(s) synthesized, "
        f"{result.cache_hits} cache hit(s), "
        f"{len(result.synthesis_fallbacks)} fallback(s) "
        f"in {result.timings.synthesis_seconds:.1f}s"
    )
    if result.checkpoint_hits or result.checkpoint_corrupt_entries:
        logger.info(
            f"  checkpoint: {result.checkpoint_hits} block(s) resumed, "
            f"{result.checkpoint_corrupt_entries} corrupt entr(ies) "
            "quarantined"
        )
    if result.cache_corrupt_entries:
        logger.info(
            f"  cache: {result.cache_corrupt_entries} corrupt disk "
            "entr(ies) quarantined and recomputed"
        )
    for record in result.failure_log:
        logger.warning(
            f"  fault: block {record.block_index} attempt {record.attempt} "
            f"[{record.kind}] {record.message}"
        )
    if args.metrics_json is not None:
        try:
            args.metrics_json.write_text(
                json.dumps(result.metrics, indent=1, default=str) + "\n"
            )
        except OSError as exc:
            logger.error(f"error: --metrics-json {args.metrics_json}: {exc}")
            return 1
        logger.info(f"  metrics: wrote snapshot to {args.metrics_json}")
    if args.trace_file is not None:
        logger.info(f"  trace: wrote span/event stream to {args.trace_file}")
    _write_approximations(result, args.out_dir, args.block_qubits, logger)
    if result.certifications:
        for index, report in enumerate(result.certifications):
            line = f"  certify approx_{index:02d}: {report.summary()}"
            if report.ok:
                logger.info(line)
            else:
                logger.warning(line)
        if not result.certified:
            logger.error("certification VIOLATED; see reports above")
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
