"""Linear-algebra substrate: embedding, unitary metrics, decompositions."""

from repro.linalg.array_api import (
    ArrayBackend,
    available_backends,
    get_backend,
)
from repro.linalg.embed import (
    apply_gate_to_matrix,
    apply_gate_to_state,
    apply_gate_to_states,
    embed_unitary,
)
from repro.linalg.su2 import u3_params, zyz_decompose, zyz_reconstruct
from repro.linalg.unitary import (
    closest_unitary,
    equal_up_to_global_phase,
    fidelity_from_distance,
    global_phase_between,
    hs_cost,
    hs_distance,
    hs_inner,
    is_unitary,
)
from repro.linalg.weyl import (
    MAGIC,
    decompose_tensor_product,
    estimated_cnot_class,
    is_tensor_product,
    magic_rep,
    makhlin_invariants,
)

__all__ = [
    "ArrayBackend",
    "get_backend",
    "available_backends",
    "apply_gate_to_state",
    "apply_gate_to_states",
    "apply_gate_to_matrix",
    "embed_unitary",
    "hs_inner",
    "hs_distance",
    "hs_cost",
    "is_unitary",
    "equal_up_to_global_phase",
    "closest_unitary",
    "global_phase_between",
    "fidelity_from_distance",
    "zyz_decompose",
    "zyz_reconstruct",
    "u3_params",
    "MAGIC",
    "magic_rep",
    "makhlin_invariants",
    "is_tensor_product",
    "decompose_tensor_product",
    "estimated_cnot_class",
]
