"""Unitary matrix utilities and the Hilbert-Schmidt process distance.

The Hilbert-Schmidt (HS) distance is QUEST's process-distance metric
(paper Sec. 2)::

    d(U, V) = sqrt(1 - |Tr(U^dag V)|^2 / N^2)

It is invariant to global phase, ranges over [0, 1], and 0 means the two
unitaries implement the same physical transformation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ReproError


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Check ``U^dag U == I`` within tolerance."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))


def hs_inner(u: np.ndarray, v: np.ndarray) -> complex:
    """Hilbert-Schmidt inner product ``Tr(U^dag V)``."""
    if u.shape != v.shape:
        raise ReproError(f"shape mismatch {u.shape} vs {v.shape}")
    # Tr(U^dag V) = sum(conj(U) * V), avoiding the full matrix product.
    return complex(np.sum(u.conj() * v))


def hs_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Phase-invariant HS process distance in ``[0, 1]`` (paper Sec. 2)."""
    dim = u.shape[0]
    overlap = abs(hs_inner(u, v)) / dim
    return math.sqrt(max(0.0, 1.0 - overlap * overlap))


def hs_cost(u: np.ndarray, v: np.ndarray) -> float:
    """Synthesis cost function ``1 - |Tr(U^dag V)| / N``, in ``[0, 1]``.

    Monotone with :func:`hs_distance` and better conditioned near zero,
    which is why LEAP-style optimizers minimize it instead of the distance.
    """
    dim = u.shape[0]
    return 1.0 - abs(hs_inner(u, v)) / dim


def equal_up_to_global_phase(
    u: np.ndarray, v: np.ndarray, atol: float = 1e-8
) -> bool:
    """Whether two unitaries differ only by a global phase."""
    if u.shape != v.shape:
        return False
    overlap = hs_inner(u, v)
    if abs(overlap) < atol:
        return False
    phase = overlap / abs(overlap)
    return bool(np.allclose(u * phase, v, atol=atol))


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project a matrix onto the unitary group (polar decomposition)."""
    left, _, right = np.linalg.svd(matrix)
    return left @ right


def global_phase_between(u: np.ndarray, v: np.ndarray) -> complex:
    """Return phase ``p`` minimizing ``||p*U - V||_F`` (unit modulus)."""
    overlap = hs_inner(u, v)
    if abs(overlap) == 0.0:
        return 1.0 + 0.0j
    return overlap / abs(overlap)


def fidelity_from_distance(distance: float) -> float:
    """Convert an HS distance to the corresponding process overlap."""
    return math.sqrt(max(0.0, 1.0 - distance * distance))
