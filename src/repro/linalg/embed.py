"""Tensor-network style gate application and dense embedding.

These routines define the library's single source of truth for how a
k-qubit gate acts inside an n-qubit system.  Everything else — the
statevector simulator, the unitary simulator, the synthesis gradient code
— goes through these functions, so the little-endian convention is
enforced in exactly one place.

Convention: basis index ``k = sum_q b_q * 2**q`` (qubit 0 is the
least-significant bit).  A state of ``n`` qubits reshaped to ``(2,)*n``
has axis ``a`` corresponding to qubit ``n - 1 - a``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError


def _check_targets(qubits: tuple[int, ...], num_qubits: int) -> None:
    if len(set(qubits)) != len(qubits):
        raise SimulationError(f"duplicate target qubits {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise SimulationError(
            f"target qubits {qubits} out of range for {num_qubits} qubits"
        )


def apply_gate_to_state(
    state: np.ndarray, gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` gate to ``qubits`` of a statevector.

    Returns a new array; the input is not modified.
    """
    _check_targets(qubits, num_qubits)
    k = len(qubits)
    if gate.shape != (2**k, 2**k):
        raise SimulationError(
            f"gate shape {gate.shape} does not match {k} target qubit(s)"
        )
    tensor = state.reshape((2,) * num_qubits)
    gate_tensor = gate.reshape((2,) * (2 * k))
    # Gate input axis k + i corresponds to gate qubit (k - 1 - i), i.e. the
    # qubit qubits[k - 1 - i]; in the state tensor that qubit lives on axis
    # num_qubits - 1 - qubits[k - 1 - i].
    state_axes = [num_qubits - 1 - qubits[k - 1 - i] for i in range(k)]
    out = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), state_axes))
    # Output axes 0..k-1 correspond to qubits[k-1], ..., qubits[0].
    out = np.moveaxis(out, range(k), state_axes)
    return np.ascontiguousarray(out.reshape(state.shape))


def apply_gate_to_matrix(
    matrix: np.ndarray, gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Left-multiply an ``2^n x m`` matrix by the embedded gate.

    Computes ``embed(gate) @ matrix`` without materializing the embedded
    operator.  Used to accumulate circuit unitaries column-block-wise.
    """
    _check_targets(qubits, num_qubits)
    k = len(qubits)
    dim = 2**num_qubits
    if matrix.shape[0] != dim:
        raise SimulationError(
            f"matrix row dimension {matrix.shape[0]} != 2**{num_qubits}"
        )
    cols = matrix.shape[1]
    tensor = matrix.reshape((2,) * num_qubits + (cols,))
    gate_tensor = gate.reshape((2,) * (2 * k))
    row_axes = [num_qubits - 1 - qubits[k - 1 - i] for i in range(k)]
    out = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), row_axes))
    out = np.moveaxis(out, range(k), row_axes)
    return np.ascontiguousarray(out.reshape(dim, cols))


_IDENTITIES = {k: np.eye(2**k, dtype=complex) for k in range(0, 12)}


def embed_unitary(
    gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Return the dense ``2^n x 2^n`` embedding of a k-qubit gate.

    Only used where a dense operator is genuinely needed (synthesis
    gradients over small blocks); simulators use the apply functions.
    One-qubit gates take the fast Kronecker path
    ``I_high (x) G (x) I_low`` (the synthesis gradient hot loop).
    """
    if len(qubits) == 1 and gate.shape == (2, 2):
        q = qubits[0]
        _check_targets(qubits, num_qubits)
        low = _IDENTITIES[q]
        high = _IDENTITIES[num_qubits - 1 - q]
        return np.kron(high, np.kron(gate, low))
    dim = 2**num_qubits
    return apply_gate_to_matrix(np.eye(dim, dtype=complex), gate, qubits, num_qubits)
