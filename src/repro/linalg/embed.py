"""Tensor-network style gate application and dense embedding.

These routines define the library's single source of truth for how a
k-qubit gate acts inside an n-qubit system.  Everything else — the
statevector simulator, the unitary simulator, the synthesis gradient code
— goes through these functions, so the little-endian convention is
enforced in exactly one place.

Convention: basis index ``k = sum_q b_q * 2**q`` (qubit 0 is the
least-significant bit).  A state of ``n`` qubits reshaped to ``(2,)*n``
has axis ``a`` corresponding to qubit ``n - 1 - a``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError


def _check_targets(qubits: tuple[int, ...], num_qubits: int) -> None:
    if len(set(qubits)) != len(qubits):
        raise SimulationError(f"duplicate target qubits {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise SimulationError(
            f"target qubits {qubits} out of range for {num_qubits} qubits"
        )


def apply_gate_to_state(
    state: np.ndarray, gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` gate to ``qubits`` of a statevector.

    Returns a new array; the input is not modified.
    """
    _check_targets(qubits, num_qubits)
    k = len(qubits)
    if gate.shape != (2**k, 2**k):
        raise SimulationError(
            f"gate shape {gate.shape} does not match {k} target qubit(s)"
        )
    tensor = state.reshape((2,) * num_qubits)
    gate_tensor = gate.reshape((2,) * (2 * k))
    # Gate input axis k + i corresponds to gate qubit (k - 1 - i), i.e. the
    # qubit qubits[k - 1 - i]; in the state tensor that qubit lives on axis
    # num_qubits - 1 - qubits[k - 1 - i].
    state_axes = [num_qubits - 1 - qubits[k - 1 - i] for i in range(k)]
    out = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), state_axes))
    # Output axes 0..k-1 correspond to qubits[k-1], ..., qubits[0].
    out = np.moveaxis(out, range(k), state_axes)
    return np.ascontiguousarray(out.reshape(state.shape))


def apply_gate_to_states(
    states: np.ndarray, gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` gate to every row of a ``(T, 2^n)`` batch.

    The batched analogue of :func:`apply_gate_to_state`: one ``tensordot``
    evolves all ``T`` statevectors at once, which is what makes the
    Monte-Carlo trajectory sampler fast (the whole trajectory batch moves
    through each gate in a single contraction instead of ``T`` Python
    calls).  Returns a new ``(T, 2^n)`` array; the input is not modified.
    """
    _check_targets(qubits, num_qubits)
    k = len(qubits)
    if gate.shape != (2**k, 2**k):
        raise SimulationError(
            f"gate shape {gate.shape} does not match {k} target qubit(s)"
        )
    if states.ndim != 2 or states.shape[1] != 2**num_qubits:
        raise SimulationError(
            f"batch shape {states.shape} is not (T, 2**{num_qubits})"
        )
    batch = states.shape[0]
    tensor = states.reshape((batch,) + (2,) * num_qubits)
    gate_tensor = gate.reshape((2,) * (2 * k))
    # Same axis bookkeeping as apply_gate_to_state, shifted by the leading
    # batch axis: qubit q lives on axis 1 + (num_qubits - 1 - q).
    state_axes = [1 + num_qubits - 1 - qubits[k - 1 - i] for i in range(k)]
    out = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), state_axes))
    # tensordot leaves the k gate-output axes in front and the remaining
    # tensor axes (batch first) in their original relative order; moving
    # the gate outputs back to state_axes restores the layout.
    out = np.moveaxis(out, range(k), state_axes)
    return np.ascontiguousarray(out.reshape(states.shape))


def apply_gate_to_matrix(
    matrix: np.ndarray, gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Left-multiply an ``2^n x m`` matrix by the embedded gate.

    Computes ``embed(gate) @ matrix`` without materializing the embedded
    operator.  Used to accumulate circuit unitaries column-block-wise.
    """
    _check_targets(qubits, num_qubits)
    k = len(qubits)
    dim = 2**num_qubits
    if matrix.shape[0] != dim:
        raise SimulationError(
            f"matrix row dimension {matrix.shape[0]} != 2**{num_qubits}"
        )
    cols = matrix.shape[1]
    tensor = matrix.reshape((2,) * num_qubits + (cols,))
    gate_tensor = gate.reshape((2,) * (2 * k))
    row_axes = [num_qubits - 1 - qubits[k - 1 - i] for i in range(k)]
    out = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), row_axes))
    out = np.moveaxis(out, range(k), row_axes)
    return np.ascontiguousarray(out.reshape(dim, cols))


_IDENTITIES = {k: np.eye(2**k, dtype=complex) for k in range(0, 12)}


def _identity(k: int) -> np.ndarray:
    """Cached ``2^k`` identity; falls back to a fresh ``np.eye`` beyond the
    pre-built cache (the fast path used to raise a bare ``KeyError`` for
    one-qubit embeddings past 12 qubits)."""
    matrix = _IDENTITIES.get(k)
    if matrix is None:
        matrix = np.eye(2**k, dtype=complex)
    return matrix


def _kron(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker product of two 2-D arrays.

    Bit-identical to ``np.kron`` (every element is the same single
    product ``a[i, j] * b[k, l]``) but skips its generic-ndim axis
    bookkeeping, which dominates the synthesis gradient hot loop where
    thousands of tiny embeddings are built per optimizer step.
    """
    rows_a, cols_a = a.shape
    rows_b, cols_b = b.shape
    out = a[:, None, :, None] * b[None, :, None, :]
    return out.reshape(rows_a * rows_b, cols_a * cols_b)


def embed_unitary(
    gate: np.ndarray, qubits: tuple[int, ...], num_qubits: int
) -> np.ndarray:
    """Return the dense ``2^n x 2^n`` embedding of a k-qubit gate.

    Only used where a dense operator is genuinely needed (synthesis
    gradients over small blocks); simulators use the apply functions.
    One-qubit gates take the fast Kronecker path
    ``I_high (x) G (x) I_low`` (the synthesis gradient hot loop).
    """
    if len(qubits) == 1 and gate.shape == (2, 2):
        q = qubits[0]
        _check_targets(qubits, num_qubits)
        low = _identity(q)
        high = _identity(num_qubits - 1 - q)
        return _kron(high, _kron(gate, low))
    dim = 2**num_qubits
    return apply_gate_to_matrix(np.eye(dim, dtype=complex), gate, qubits, num_qubits)
