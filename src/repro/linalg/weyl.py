"""Two-qubit invariants: magic basis, Makhlin invariants, CNOT class.

Used by the transpiler's two-qubit consolidation pass to predict how many
CNOTs a consolidated block needs before running numerical template
fitting, and by tests as an independent check of the synthesis engine.

References: Makhlin (2002); Shende, Bullock, Markov (2004) "Minimal
universal two-qubit controlled-NOT-based circuits".
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ReproError
from repro.linalg.unitary import is_unitary

#: The magic basis: conjugation by MAGIC maps SU(2) (x) SU(2) to SO(4).
MAGIC = (1.0 / math.sqrt(2.0)) * np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
)


def magic_rep(u: np.ndarray) -> np.ndarray:
    """Return the special-unitary magic-basis representation of ``U``.

    The result is ``M^dag (U / det(U)^{1/4}) M``; the fourth-root branch is
    arbitrary, which the invariant helpers below account for.
    """
    if u.shape != (4, 4) or not is_unitary(u, atol=1e-7):
        raise ReproError("magic_rep expects a 4x4 unitary")
    det = np.linalg.det(u)
    su4 = u * complex(det) ** (-0.25)
    return MAGIC.conj().T @ su4 @ MAGIC


def makhlin_invariants(u: np.ndarray) -> tuple[complex, float]:
    """Return the Makhlin local invariants ``(G1, G2)`` of a 4x4 unitary.

    ``G1 = tr(gamma)^2 / 16`` and ``G2 = (tr(gamma)^2 - tr(gamma^2)) / 4``
    with ``gamma = m m^T`` in the magic basis.  Both are invariant under
    local (one-qubit) gates; ``G1`` flips sign with the det branch, so
    callers should compare ``|G1|`` / ``Re(G1)`` patterns, which this
    module's classifier does.
    """
    m = magic_rep(u)
    gamma = m @ m.T
    trace = np.trace(gamma)
    g1 = complex(trace * trace / 16.0)
    g2 = float(np.real((trace * trace - np.trace(gamma @ gamma)) / 4.0))
    return g1, g2


def is_tensor_product(u: np.ndarray, atol: float = 1e-8) -> bool:
    """Whether ``U = B (x) A`` for one-qubit unitaries ``A`` and ``B``."""
    if u.shape != (4, 4):
        raise ReproError("is_tensor_product expects a 4x4 matrix")
    # Reshuffle so that a Kron product becomes a rank-1 matrix.
    reshaped = u.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    singular_values = np.linalg.svd(reshaped, compute_uv=False)
    return bool(singular_values[1] < atol)


def decompose_tensor_product(u: np.ndarray) -> tuple[np.ndarray, np.ndarray, complex]:
    """Split ``U = phase * (B (x) A)`` into ``(A, B, phase)``.

    ``A`` acts on the first (low-order) qubit, ``B`` on the second, matching
    the little-endian convention (``np.kron(B, A)``).  Raises
    :class:`ReproError` if ``U`` is not a tensor product.
    """
    if not is_tensor_product(u, atol=1e-6):
        raise ReproError("matrix is not a tensor product of one-qubit gates")
    reshaped = u.reshape(2, 2, 2, 2).transpose(0, 2, 1, 3).reshape(4, 4)
    left, sing, right_h = np.linalg.svd(reshaped)
    b = left[:, 0].reshape(2, 2) * math.sqrt(sing[0])
    a = right_h[0, :].reshape(2, 2) * math.sqrt(sing[0])
    # Normalize each factor to unit determinant; push the correction
    # phases into the returned global phase so phase * kron(B, A) == U.
    phase = 1.0 + 0.0j
    det_a = complex(np.linalg.det(a))
    det_b = complex(np.linalg.det(b))
    if abs(det_a) < 1e-12 or abs(det_b) < 1e-12:
        raise ReproError("degenerate tensor factor")
    a = a * det_a ** (-0.5)
    b = b * det_b ** (-0.5)
    phase = det_a**0.5 * det_b**0.5
    return a, b, phase


def estimated_cnot_class(u: np.ndarray, atol: float = 1e-7) -> int:
    """Estimate the minimal CNOT count (0-3) to implement ``U`` exactly.

    Uses local invariants: tensor products need 0; the CNOT local-
    equivalence class (``|G1| = 0``, ``G2 = 1``) needs 1; unitaries with a
    real ``G1`` sit in the two-CNOT subvariety (Shende-Bullock-Markov);
    everything else needs 3.  The numerical two-qubit decomposer uses this
    as a starting point and falls back to more CNOTs if template fitting
    does not reach tolerance, so a borderline misclassification is safe.
    """
    if is_tensor_product(u, atol=max(atol, 1e-8)):
        return 0
    m = magic_rep(u)
    gamma = m @ m.T
    trace = complex(np.trace(gamma))
    g2 = float(np.real((trace * trace - np.trace(gamma @ gamma)) / 4.0))
    tol = math.sqrt(atol)
    if abs(trace) < tol and abs(g2 - 1.0) < tol:
        return 1
    # Shende-Bullock-Markov: two CNOTs suffice iff tr(gamma) is real (the
    # det-branch only flips its sign, so realness is branch-invariant).
    if abs(trace.imag) < tol:
        return 2
    return 3
