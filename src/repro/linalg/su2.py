"""Analytic decomposition of one-qubit unitaries (ZYZ / U3 form).

Any ``U in U(2)`` factors as ``U = e^{i alpha} RZ(phi) RY(theta) RZ(lam)``.
This is the workhorse of the transpiler's one-qubit resynthesis pass: runs
of adjacent one-qubit gates are multiplied together and re-emitted as a
single U3.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuits.gates import ry_matrix, rz_matrix, u3_matrix
from repro.exceptions import ReproError
from repro.linalg.unitary import is_unitary

#: Angles smaller than this are treated as zero when simplifying.
ANGLE_ATOL = 1e-10


def zyz_decompose(u: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, alpha)`` with ``U = e^{i alpha} RZ(phi) RY(theta) RZ(lam)``."""
    if u.shape != (2, 2) or not is_unitary(u, atol=1e-7):
        raise ReproError("zyz_decompose expects a 2x2 unitary")
    det = np.linalg.det(u)
    alpha = 0.5 * cmath.phase(det)
    su2 = u * cmath.exp(-1j * alpha)
    # su2 = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[1, 0]) < ANGLE_ATOL:
        # Diagonal: only phi + lam is defined; put it all in phi.
        phi = 2.0 * cmath.phase(su2[1, 1])
        lam = 0.0
    elif abs(su2[0, 0]) < ANGLE_ATOL:
        # Anti-diagonal: only phi - lam is defined.
        phi = 2.0 * cmath.phase(su2[1, 0])
        lam = 0.0
    else:
        phi = cmath.phase(su2[1, 1]) + cmath.phase(su2[1, 0])
        lam = cmath.phase(su2[1, 1]) - cmath.phase(su2[1, 0])
    return theta, phi, lam, alpha


def zyz_reconstruct(theta: float, phi: float, lam: float, alpha: float) -> np.ndarray:
    """Inverse of :func:`zyz_decompose`."""
    return cmath.exp(1j * alpha) * (
        rz_matrix(phi) @ ry_matrix(theta) @ rz_matrix(lam)
    )


def u3_params(u: np.ndarray) -> tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, phase)`` with ``U = e^{i phase} U3(theta, phi, lam)``.

    ``U3(theta, phi, lam) = e^{i (phi + lam) / 2} RZ(phi) RY(theta) RZ(lam)``,
    so the U3 form reuses the ZYZ angles with a shifted global phase.
    """
    theta, phi, lam, alpha = zyz_decompose(u)
    phase = alpha - (phi + lam) / 2.0
    reconstructed = u3_matrix(theta, phi, lam) * cmath.exp(1j * phase)
    if not np.allclose(reconstructed, u, atol=1e-7):
        raise ReproError("u3 reconstruction failed (internal error)")
    return theta, phi, lam, phase


def is_identity_angles(theta: float, phi: float, lam: float) -> bool:
    """Whether ``U3(theta, phi, lam)`` is the identity up to global phase."""
    two_pi = 2.0 * math.pi
    theta_mod = abs(math.remainder(theta, two_pi))
    total = abs(math.remainder(phi + lam, two_pi))
    return theta_mod < ANGLE_ATOL and total < ANGLE_ATOL
