"""Thin array-API shim: one kernel code path, pluggable array libraries.

The PTM noise engine (:mod:`repro.noise.ptm`) expresses every hot kernel
— compile, embed, batched contraction, readout — through the handful of
operations below instead of calling ``numpy`` directly.  An
:class:`ArrayBackend` binds those operations to a concrete array
library:

* ``numpy`` — the default; always available, used by the test suite.
* ``cupy`` — drop-in GPU arrays; used when installed and selected.
* ``torch`` — PyTorch tensors, placed on CUDA when available.

Selection is by name, resolved in precedence order: an explicit argument
(``QuestConfig.array_backend`` / ``--array-backend``), the
``REPRO_ARRAY_BACKEND`` environment variable, then ``numpy``.  A
requested backend whose library is not installed raises
:class:`~repro.exceptions.ArrayBackendError` naming the backends that
*are* available — callers surface that instead of an ``ImportError``
five layers deep (the CLI exits with code 2).

The shim is deliberately small: subscript-explicit ``einsum`` carries
every contraction, so adding a backend means implementing seven methods,
not porting kernels.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.exceptions import ArrayBackendError

#: Environment variable consulted when no backend is named explicitly.
ARRAY_BACKEND_ENV = "REPRO_ARRAY_BACKEND"

#: Names accepted by :func:`get_backend`, in documentation order.
BACKEND_NAMES: tuple[str, ...] = ("numpy", "cupy", "torch")


class ArrayBackend:
    """Interface the PTM kernels program against.

    Implementations wrap one array library.  Arrays returned by one
    method are accepted by every other method of the same backend;
    :meth:`to_numpy` is the single exit point back to host numpy.
    """

    name: str = "abstract"

    def asarray(self, data: Any, dtype: str | None = None) -> Any:
        """Device array from array-like ``data`` (dtype: "float64"/"complex128")."""
        raise NotImplementedError

    def zeros(self, shape: tuple[int, ...], dtype: str = "float64") -> Any:
        """Device array of zeros."""
        raise NotImplementedError

    def stack(self, arrays: list) -> Any:
        """Stack same-shape device arrays along a new leading axis."""
        raise NotImplementedError

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        """Subscript-explicit Einstein summation over device arrays."""
        raise NotImplementedError

    def take(self, array: Any, indices: tuple[int, ...], axis: int) -> Any:
        """Select ``indices`` along ``axis`` (numpy ``take`` semantics)."""
        raise NotImplementedError

    def reshape(self, array: Any, shape: tuple[int, ...]) -> Any:
        """Reshape without copying where the library allows it."""
        raise NotImplementedError

    def to_numpy(self, array: Any) -> np.ndarray:
        """Copy a device array back to a host ``np.ndarray``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArrayBackend {self.name}>"


class _NumpyLikeBackend(ArrayBackend):
    """Backend over any module implementing the numpy API (numpy, cupy)."""

    def __init__(self, name: str, module) -> None:
        self.name = name
        self._xp = module

    def asarray(self, data, dtype=None):
        return self._xp.asarray(data, dtype=dtype)

    def zeros(self, shape, dtype="float64"):
        return self._xp.zeros(shape, dtype=dtype)

    def stack(self, arrays):
        return self._xp.stack(arrays)

    def einsum(self, subscripts, *operands):
        return self._xp.einsum(subscripts, *operands)

    def take(self, array, indices, axis):
        return self._xp.take(array, self._xp.asarray(list(indices)), axis=axis)

    def reshape(self, array, shape):
        return array.reshape(shape)

    def to_numpy(self, array):
        if self._xp is np:
            return np.asarray(array)
        # cupy: explicit device-to-host copy.
        return self._xp.asnumpy(array)


class _TorchBackend(ArrayBackend):
    """Backend over PyTorch tensors; uses CUDA when available."""

    name = "torch"

    def __init__(self, torch) -> None:
        self._torch = torch
        self._device = "cuda" if torch.cuda.is_available() else "cpu"
        self._dtypes = {
            None: None,
            "float64": torch.float64,
            "complex128": torch.complex128,
        }

    def asarray(self, data, dtype=None):
        torch = self._torch
        if torch.is_tensor(data):
            tensor = data.to(self._device)
            if dtype is not None:
                tensor = tensor.to(self._dtypes[dtype])
            return tensor
        return torch.as_tensor(
            np.asarray(data), dtype=self._dtypes[dtype], device=self._device
        )

    def zeros(self, shape, dtype="float64"):
        return self._torch.zeros(
            shape, dtype=self._dtypes[dtype], device=self._device
        )

    def stack(self, arrays):
        return self._torch.stack(list(arrays))

    def einsum(self, subscripts, *operands):
        return self._torch.einsum(subscripts, *operands)

    def take(self, array, indices, axis):
        index = self._torch.as_tensor(list(indices), device=self._device)
        return self._torch.index_select(array, axis, index)

    def reshape(self, array, shape):
        return array.reshape(shape)

    def to_numpy(self, array):
        return array.detach().cpu().numpy()


#: Resolved backend instances, one per successfully imported library.
_RESOLVED: dict[str, ArrayBackend] = {}


def _resolve(name: str) -> ArrayBackend:
    if name == "numpy":
        return _NumpyLikeBackend("numpy", np)
    if name == "cupy":
        try:
            import cupy  # noqa: PLC0415 - optional dependency
        except ImportError as exc:
            raise ArrayBackendError(
                f"array backend 'cupy' requested but cupy is not "
                f"installed ({exc}); available backends: "
                f"{', '.join(available_backends())}"
            ) from exc
        return _NumpyLikeBackend("cupy", cupy)
    if name == "torch":
        try:
            import torch  # noqa: PLC0415 - optional dependency
        except ImportError as exc:
            raise ArrayBackendError(
                f"array backend 'torch' requested but torch is not "
                f"installed ({exc}); available backends: "
                f"{', '.join(available_backends())}"
            ) from exc
        return _TorchBackend(torch)
    raise ArrayBackendError(
        f"unknown array backend {name!r}; choose from "
        f"{', '.join(BACKEND_NAMES)}"
    )


def get_backend(name: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve an array backend by name.

    ``None`` falls back to ``$REPRO_ARRAY_BACKEND``, then ``numpy``.  An
    already-constructed :class:`ArrayBackend` passes through untouched,
    so call sites can accept either form.  Raises
    :class:`~repro.exceptions.ArrayBackendError` for unknown names and
    for backends whose library is missing.
    """
    if isinstance(name, ArrayBackend):
        return name
    requested = name or os.environ.get(ARRAY_BACKEND_ENV) or "numpy"
    requested = requested.strip().lower()
    backend = _RESOLVED.get(requested)
    if backend is None:
        backend = _resolve(requested)
        _RESOLVED[requested] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of the backends whose libraries import in this environment."""
    names = ["numpy"]
    for optional in ("cupy", "torch"):
        try:
            __import__(optional)
        except ImportError:
            continue
        names.append(optional)
    return tuple(names)


__all__ = [
    "ArrayBackend",
    "get_backend",
    "available_backends",
    "BACKEND_NAMES",
    "ARRAY_BACKEND_ENV",
]
