"""Exception hierarchy for the QUEST reproduction library.

All library errors derive from :class:`ReproError` so that callers can
catch library failures without masking programming errors such as
``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class GateError(ReproError):
    """Raised for invalid gate definitions or parameters."""


class QasmError(ReproError):
    """Raised when OpenQASM 2.0 text cannot be parsed or emitted."""


class SimulationError(ReproError):
    """Raised when a simulator is asked for something it cannot do."""


class NoiseModelError(ReproError):
    """Raised for inconsistent noise-model definitions."""


class TranspilerError(ReproError):
    """Raised when a transpilation pass cannot complete."""


class PartitionError(ReproError):
    """Raised when circuit partitioning fails or is inconsistent."""


class SynthesisError(ReproError):
    """Raised when numerical synthesis cannot produce a solution."""


class SelectionError(ReproError):
    """Raised by the QUEST approximation-selection engine."""


class ValidationError(ReproError):
    """Raised when a synthesis result fails its health check.

    Candidates coming back from a worker, the pool cache, or a run
    checkpoint are validated (finite entries, unitarity, recomputed
    distance) before they may enter a block pool; failures quarantine
    the candidate set instead of letting corrupt data poison a run.
    """


class CertificationError(ReproError):
    """Raised when equivalence certification cannot even be *attempted*.

    Structural misuse only — mismatched circuit widths, a block manifest
    that does not describe the stitched circuit, a malformed claims
    file.  A certification that runs and finds the claim violated is not
    an error: it is reported through
    :class:`repro.verify.CertificationReport` with ``ok=False``.
    """


class CheckpointError(ReproError):
    """Raised when a run journal cannot be created or resumed.

    Most importantly: resuming against a checkpoint directory whose
    recorded config fingerprint or seed stream does not match the
    current run is refused with this error rather than silently mixing
    incompatible results.
    """


class BlockTimeoutError(ReproError):
    """Raised by the cooperative deadline when a block's budget expires.

    Worker processes are bounded by the executor's hard future timeout;
    the inline (``workers == 1``) path instead relies on
    :func:`repro.resilience.deadline.check_deadline` calls sprinkled
    through the synthesis loop raising this error.
    """
