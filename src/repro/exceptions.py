"""Exception hierarchy for the QUEST reproduction library.

All library errors derive from :class:`ReproError` so that callers can
catch library failures without masking programming errors such as
``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class GateError(ReproError):
    """Raised for invalid gate definitions or parameters."""


class QasmError(ReproError):
    """Raised when OpenQASM 2.0 text cannot be parsed or emitted."""


class SimulationError(ReproError):
    """Raised when a simulator is asked for something it cannot do."""


class NoiseModelError(ReproError):
    """Raised for inconsistent noise-model definitions."""


class TranspilerError(ReproError):
    """Raised when a transpilation pass cannot complete."""


class PartitionError(ReproError):
    """Raised when circuit partitioning fails or is inconsistent."""


class SynthesisError(ReproError):
    """Raised when numerical synthesis cannot produce a solution."""


class SelectionError(ReproError):
    """Raised by the QUEST approximation-selection engine."""
