"""Exception hierarchy for the QUEST reproduction library.

All library errors derive from :class:`ReproError` so that callers can
catch library failures without masking programming errors such as
``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Raised for invalid circuit construction or manipulation."""


class GateError(ReproError):
    """Raised for invalid gate definitions or parameters."""


class QasmError(ReproError):
    """Raised when OpenQASM 2.0 text cannot be parsed or emitted."""


class SimulationError(ReproError):
    """Raised when a simulator is asked for something it cannot do."""


class SimulationCapacityError(SimulationError):
    """Raised when a circuit exceeds a noise engine's practical ceiling.

    Carries the structured context a caller needs to pick a different
    engine instead of parsing a message (or, worse, watching the process
    swap itself to death on a ``4^n`` allocation): the offending engine,
    the requested qubit count, the engine's ceiling, and the engine the
    library suggests for that size.
    """

    def __init__(
        self,
        engine: str,
        num_qubits: int,
        limit: int,
        suggested_engine: str | None = None,
        detail: str = "",
    ) -> None:
        self.engine = engine
        self.num_qubits = num_qubits
        self.limit = limit
        self.suggested_engine = suggested_engine
        message = (
            f"the {engine!r} noise engine cannot practically simulate "
            f"{num_qubits} qubits (ceiling: {limit})"
        )
        if detail:
            message += f": {detail}"
        if suggested_engine is not None:
            message += f"; use the {suggested_engine!r} engine instead"
        super().__init__(message)


class NoiseModelError(ReproError):
    """Raised for inconsistent noise-model definitions."""


class ArrayBackendError(ReproError):
    """Raised when a requested array backend cannot be provided.

    Either the name is unknown or the backing library (cupy, torch) is
    not installed in this environment.  The message always names the
    backends that *are* available so callers can fall back cleanly.
    """


class TranspilerError(ReproError):
    """Raised when a transpilation pass cannot complete."""


class PartitionError(ReproError):
    """Raised when circuit partitioning fails or is inconsistent."""


class SynthesisError(ReproError):
    """Raised when numerical synthesis cannot produce a solution."""


class SelectionError(ReproError):
    """Raised by the QUEST approximation-selection engine."""


class ValidationError(ReproError):
    """Raised when a synthesis result fails its health check.

    Candidates coming back from a worker, the pool cache, or a run
    checkpoint are validated (finite entries, unitarity, recomputed
    distance) before they may enter a block pool; failures quarantine
    the candidate set instead of letting corrupt data poison a run.
    """


class CertificationError(ReproError):
    """Raised when equivalence certification cannot even be *attempted*.

    Structural misuse only — mismatched circuit widths, a block manifest
    that does not describe the stitched circuit, a malformed claims
    file.  A certification that runs and finds the claim violated is not
    an error: it is reported through
    :class:`repro.verify.CertificationReport` with ``ok=False``.
    """


class StoreError(ReproError):
    """Raised for artifact-store misuse (see :mod:`repro.store`).

    Structural problems only — an invalid namespace, an unusable root
    directory.  I/O races and integrity failures are *not* errors: a
    vanished or corrupt entry is a miss that costs a recomputation,
    never an exception.
    """


class CheckpointError(ReproError):
    """Raised when a run journal cannot be created or resumed.

    Most importantly: resuming against a checkpoint directory whose
    recorded config fingerprint or seed stream does not match the
    current run is refused with this error rather than silently mixing
    incompatible results.
    """


class ServiceError(ReproError):
    """Raised for failures of the compilation service layer.

    Protocol violations, an unreachable daemon, a ledger that cannot be
    created — conditions where the *service machinery* (not a compile
    job) is broken.  Job-level failures travel as structured result
    payloads, never as this exception.
    """


class AdmissionRejected(ServiceError):
    """Raised client-side when the daemon refuses to admit a job.

    Structured, not stringly: ``reason`` is one of the admission-control
    verdicts (``queue_full``, ``tenant_quota``, ``shutting_down``,
    ``invalid_request``, ``deadline_expired``), and the queue context a
    caller needs for backoff decisions rides along.  Rejection is
    backpressure working as designed — the queue is bounded, so an
    overloaded daemon says "no" immediately instead of growing without
    bound and failing everyone late.
    """

    def __init__(
        self,
        reason: str,
        detail: str = "",
        *,
        tenant: str | None = None,
        queue_depth: int | None = None,
        capacity: int | None = None,
        retry_after_seconds: float | None = None,
    ) -> None:
        self.reason = reason
        self.detail = detail
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.capacity = capacity
        self.retry_after_seconds = retry_after_seconds
        message = f"admission rejected ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class BlockTimeoutError(ReproError):
    """Raised by the cooperative deadline when a block's budget expires.

    Worker processes are bounded by the executor's hard future timeout;
    the inline (``workers == 1``) path instead relies on
    :func:`repro.resilience.deadline.check_deadline` calls sprinkled
    through the synthesis loop raising this error.
    """
