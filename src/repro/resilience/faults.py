"""Deterministic fault injection for the synthesis pipeline.

Every recovery path in :mod:`repro.resilience` — retry, validation
quarantine, cache-corruption recompute, checkpoint resume — needs to be
exercised *deterministically* in CI, not discovered in production.  The
:class:`FaultInjector` is a schedule of :class:`FaultSpec` entries, each
firing at a precise point (block index, attempt number, or write
ordinal), plus a seed that pins every random detail (which byte flips,
which candidate corrupts).

Fault taxonomy (``FaultSpec.kind``):

``raise``
    The synthesis job raises :class:`InjectedFault` before doing work —
    models a worker crash / unhandled optimizer exception.
``hang``
    The job spins past its time budget.  Under a cooperative deadline
    (inline path) it raises :class:`BlockTimeoutError` the moment the
    deadline passes; in a worker process it sleeps ``hang_seconds`` so
    the executor's hard future timeout fires instead.
``nan``
    The job completes but one returned candidate is NaN-corrupted —
    models a silently diverged optimizer.  Caught by validation.
``kill``
    The process SIGKILLs itself at the job's start — models a hard
    mid-run crash, for checkpoint/resume testing.  (POSIX only.)
``flip-cache``
    One byte of the Nth disk-cache entry written is bit-flipped after
    publish — models at-rest corruption.  Caught by the cache checksum.
``torn-checkpoint``
    The journal entry for block N is truncated after publish — models a
    torn write / crash mid-checkpoint.  Caught on resume.

Schedules parse from a compact CLI syntax (``--inject-faults``)::

    kind@block[:attempt][,kind@block[:attempt]...]

e.g. ``raise@0,hang@2:1,nan@*,torn-checkpoint@1``.  ``*`` matches every
block; the attempt defaults to 0 so a default retry policy recovers on
its first (same-seed) retry.  For ``flip-cache`` the "block" field is the
0-based ordinal of the disk write, since cache entries are content-keyed
rather than block-keyed.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from repro.observability import get_metrics, get_tracer
from repro.resilience.deadline import check_deadline

FAULT_KINDS = (
    "raise",
    "hang",
    "nan",
    "kill",
    "flip-cache",
    "torn-checkpoint",
)


class InjectedFault(RuntimeError):
    """The exception raised by a scheduled ``raise`` fault.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it
    models an arbitrary unexpected worker failure, so nothing in the
    library should catch it specifically.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what, where, and on which attempt."""

    kind: str
    #: Block index (or write ordinal for ``flip-cache``); None = every.
    block: int | None = None
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )

    def matches(self, block: int, attempt: int = 0) -> bool:
        return (self.block is None or self.block == block) and (
            self.attempt == attempt
        )


@dataclass
class FaultInjector:
    """Applies a deterministic fault schedule at the pipeline's hooks.

    Instances are picklable (they ship to worker processes); the
    ``fired`` log is best-effort telemetry and only reflects faults
    fired in the process holding this instance.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: How long a ``hang`` fault spins when no cooperative deadline is
    #: armed (worker processes); the hard future timeout should be
    #: shorter for the fault to behave as a hang rather than a stall.
    hang_seconds: float = 60.0
    fired: list[tuple[str, int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        #: Parent-side ordinal of disk-cache writes, for ``flip-cache``.
        self._cache_writes = 0

    def _firing(self, kind: str, block: int, attempt: int = 0) -> FaultSpec | None:
        for spec in self.specs:
            if spec.kind == kind and spec.matches(block, attempt):
                return spec
        return None

    def _rng(self, *context: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([int(self.seed) & 0xFFFFFFFF, *context])
        )

    def _note(self, kind: str, block: int, attempt: int = 0) -> None:
        """Log a fired fault locally and to the ambient tracer/metrics."""
        self.fired.append((kind, block, attempt))
        tracer = get_tracer()
        if tracer.is_enabled:
            tracer.event(
                "fault.injected", kind=kind, block=block, attempt=attempt
            )
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc("faults.injected")

    # ------------------------------------------------------------------
    # Synthesis-job hooks
    # ------------------------------------------------------------------
    def on_synthesis_start(self, block: int, attempt: int) -> None:
        """Fire ``kill`` / ``raise`` / ``hang`` faults for this attempt."""
        if self._firing("kill", block, attempt) is not None:
            self._note("kill", block, attempt)
            os.kill(os.getpid(), signal.SIGKILL)
        if self._firing("raise", block, attempt) is not None:
            self._note("raise", block, attempt)
            raise InjectedFault(
                f"injected worker exception (block {block}, attempt {attempt})"
            )
        if self._firing("hang", block, attempt) is not None:
            self._note("hang", block, attempt)
            end = time.monotonic() + self.hang_seconds
            while time.monotonic() < end:
                # Raises BlockTimeoutError under a cooperative deadline.
                check_deadline()
                time.sleep(0.01)

    def corrupt_solutions(self, block: int, attempt: int, solutions: list) -> list:
        """Fire a ``nan`` fault: corrupt one candidate of the result."""
        if self._firing("nan", block, attempt) is None or not solutions:
            return solutions
        self._note("nan", block, attempt)
        from dataclasses import replace

        victim = int(self._rng(block, attempt).integers(len(solutions)))
        corrupted = list(solutions)
        corrupted[victim] = replace(corrupted[victim], distance=float("nan"))
        return corrupted

    # ------------------------------------------------------------------
    # Disk hooks
    # ------------------------------------------------------------------
    def on_cache_write(self, path) -> None:
        """Fire a ``flip-cache`` fault: bit-flip one byte of the entry."""
        ordinal = self._cache_writes
        self._cache_writes += 1
        if self._firing("flip-cache", ordinal) is None:
            return
        self._note("flip-cache", ordinal)
        raw = bytearray(path.read_bytes())
        if not raw:
            return
        rng = self._rng(ordinal, len(raw))
        position = int(rng.integers(len(raw)))
        raw[position] ^= 1 << int(rng.integers(8))
        path.write_bytes(bytes(raw))

    def on_checkpoint_write(self, block: int, path) -> None:
        """Fire a ``torn-checkpoint`` fault: truncate the journal entry."""
        if self._firing("torn-checkpoint", block) is None:
            return
        self._note("torn-checkpoint", block)
        raw = path.read_bytes()
        keep = int(self._rng(block, len(raw)).integers(1, max(len(raw) // 2, 2)))
        path.write_bytes(raw[:keep])


def parse_fault_spec(text: str, seed: int = 0) -> FaultInjector:
    """Build an injector from the ``--inject-faults`` CLI syntax."""
    specs: list[FaultSpec] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, separator, location = part.partition("@")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {part!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        block: int | None = None
        attempt = 0
        if separator:
            block_text, _, attempt_text = location.partition(":")
            block_text = block_text.strip()
            block = None if block_text in ("", "*") else int(block_text)
            if attempt_text.strip():
                attempt = int(attempt_text)
        specs.append(FaultSpec(kind=kind, block=block, attempt=attempt))
    if not specs:
        raise ValueError(f"no faults found in spec {text!r}")
    return FaultInjector(specs=tuple(specs), seed=seed)
