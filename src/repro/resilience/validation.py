"""Health checks for synthesis candidates.

Every candidate set that enters a pool crosses a trust boundary: it came
back from a worker process, the content-addressed disk cache, or a run
checkpoint.  A crashed worker, a bit-flipped cache file that slipped
past its checksum, or a non-converging optimizer can all hand the
pipeline data that *parses* fine but is numerically garbage — and a
garbage candidate silently poisons every downstream selection.

``validate_solutions`` / ``validate_pool`` therefore check, for each
candidate:

* **finiteness** — no NaN/Inf in the recorded distance or the circuit's
  unitary;
* **unitarity** — ``U^dag U = I`` to ``unitarity_tol`` (a circuit built
  from rotation gates is unitary by construction, so any violation means
  corrupted parameters or a corrupted matrix);
* **distance consistency** — the HS distance recomputed from the
  circuit agrees with the recorded one to ``distance_tol``.

With ``independent=True`` the checks harden into *certification*: each
candidate's unitary is additionally rebuilt column-by-column through the
certifier's own contraction path (:mod:`repro.verify.independent`, which
shares no accumulation code with the recorded artifacts) and must agree
elementwise with the stored matrix, and the HS distance re-derived along
that independent path must agree with the recorded one.  The plain
checks accept any matrix that is *a* unitary at the recorded distance;
the independent ones accept only the unitary the candidate's circuit
actually implements.

Failures raise :class:`~repro.exceptions.ValidationError`; the executor
quarantines the offending set (records a failure, retries or falls
back) instead of admitting it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.unitary import hs_distance
from repro.metrics.tolerances import (
    DISTANCE_CONSISTENCY_TOL,
    INDEPENDENT_AGREEMENT_TOL,
    POOL_UNITARY_MATCH_TOL,
    PTM_CP_TOL,
    PTM_TRACE_PRESERVATION_TOL,
    UNITARITY_TOL,
)
from repro.verify.independent import (
    independent_hs_distance,
    independent_unitary,
)

#: Historical aliases; the canonical values live in
#: :mod:`repro.metrics.tolerances` so every layer shares one definition.
DEFAULT_UNITARITY_TOL = UNITARITY_TOL
DEFAULT_DISTANCE_TOL = DISTANCE_CONSISTENCY_TOL


def _unitarity_defect(unitary: np.ndarray) -> float:
    """Max elementwise |U^dag U - I| (inf for non-finite input)."""
    if not np.all(np.isfinite(unitary)):
        return float("inf")
    dim = unitary.shape[0]
    gram = unitary.conj().T @ unitary
    return float(np.max(np.abs(gram - np.eye(dim))))


def validate_candidate_unitary(
    unitary: np.ndarray,
    target: np.ndarray,
    recorded_distance: float,
    *,
    label: str,
    unitarity_tol: float = DEFAULT_UNITARITY_TOL,
    distance_tol: float = DEFAULT_DISTANCE_TOL,
    circuit=None,
    independent: bool = False,
) -> None:
    """Validate one candidate unitary against its target block unitary.

    With ``independent=True`` (and the candidate's ``circuit``), the
    unitary is also rebuilt through the certifier's independent
    contraction path and both the matrix and its distance must agree
    with the recorded artifacts — the check that catches a matrix which
    is still perfectly unitary but no longer the circuit's.
    """
    if not np.isfinite(recorded_distance):
        raise ValidationError(f"{label}: recorded distance is not finite")
    if not np.all(np.isfinite(unitary)):
        raise ValidationError(f"{label}: unitary contains non-finite entries")
    defect = _unitarity_defect(unitary)
    if defect > unitarity_tol:
        raise ValidationError(
            f"{label}: unitarity defect {defect:.3e} exceeds "
            f"tolerance {unitarity_tol:.1e}"
        )
    recomputed = hs_distance(unitary, target)
    if abs(recomputed - recorded_distance) > distance_tol:
        raise ValidationError(
            f"{label}: recomputed HS distance {recomputed:.6e} disagrees "
            f"with recorded {recorded_distance:.6e} "
            f"(tolerance {distance_tol:.1e})"
        )
    if independent and circuit is not None:
        rebuilt = independent_unitary(circuit)
        disagreement = float(np.max(np.abs(rebuilt - unitary)))
        if disagreement > INDEPENDENT_AGREEMENT_TOL:
            raise ValidationError(
                f"{label}: recorded unitary disagrees with the "
                f"independently rebuilt one by {disagreement:.3e} "
                f"(tolerance {INDEPENDENT_AGREEMENT_TOL:.1e})"
            )
        rederived = independent_hs_distance(rebuilt, target)
        if abs(rederived - recorded_distance) > distance_tol:
            raise ValidationError(
                f"{label}: independently re-derived HS distance "
                f"{rederived:.6e} disagrees with recorded "
                f"{recorded_distance:.6e} (tolerance {distance_tol:.1e})"
            )


def validate_ptm(
    ptm: np.ndarray,
    arity: int,
    *,
    label: str = "PTM",
    trace_tol: float = PTM_TRACE_PRESERVATION_TOL,
    cp_tol: float = PTM_CP_TOL,
) -> None:
    """Health-check a compiled Pauli-transfer matrix.

    A PTM crosses the same kind of trust boundary as a synthesis
    candidate: it is cached content, and every downstream distribution
    is a linear function of it.  The checks are the two physicality
    invariants any Pauli-channel-after-unitary PTM must satisfy:

    * **trace preservation** — the first row is ``e_0`` (``Tr(rho)`` is
      conserved);
    * **complete positivity** — the Choi matrix is Hermitian and
      positive semidefinite to eigensolver rounding.

    Failures raise :class:`~repro.exceptions.ValidationError`, keeping a
    corrupted cache entry or a doctored channel out of the evolution
    loop the same way candidate quarantine keeps bad pools out of
    selection.
    """
    # Imported lazily: repro.noise.ptm calls back into this module on
    # compile-cache misses, so a module-level import would be circular.
    from repro.noise.ptm import choi_matrix, trace_preservation_defect

    dim = 4**arity
    if ptm.shape != (dim, dim):
        raise ValidationError(
            f"{label}: shape {ptm.shape} is not ({dim}, {dim})"
        )
    if not np.all(np.isfinite(ptm)):
        raise ValidationError(f"{label}: contains non-finite entries")
    defect = trace_preservation_defect(ptm)
    if defect > trace_tol:
        raise ValidationError(
            f"{label}: trace-preservation defect {defect:.3e} exceeds "
            f"tolerance {trace_tol:.1e}"
        )
    choi = choi_matrix(ptm, arity)
    hermiticity = float(np.max(np.abs(choi - choi.conj().T)))
    if hermiticity > cp_tol:
        raise ValidationError(
            f"{label}: Choi matrix Hermiticity defect {hermiticity:.3e} "
            f"exceeds tolerance {cp_tol:.1e}"
        )
    min_eigenvalue = float(
        np.linalg.eigvalsh((choi + choi.conj().T) / 2.0).min()
    )
    if min_eigenvalue < -cp_tol:
        raise ValidationError(
            f"{label}: Choi matrix eigenvalue {min_eigenvalue:.3e} breaks "
            f"complete positivity (tolerance {cp_tol:.1e})"
        )


def validate_solutions(
    target: np.ndarray,
    solutions,
    *,
    unitarity_tol: float = DEFAULT_UNITARITY_TOL,
    distance_tol: float = DEFAULT_DISTANCE_TOL,
    independent: bool = False,
) -> None:
    """Validate a worker's / the cache's raw LEAP solution list.

    Raises :class:`ValidationError` naming the first offending solution;
    an empty list is valid (the pool degenerates to the exact block).
    """
    if not isinstance(solutions, list):
        raise ValidationError(
            f"solution payload is {type(solutions).__name__}, expected list"
        )
    for position, solution in enumerate(solutions):
        label = f"solution {position} (cnots={solution.cnot_count})"
        validate_candidate_unitary(
            solution.circuit.unitary(),
            target,
            solution.distance,
            label=label,
            unitarity_tol=unitarity_tol,
            distance_tol=distance_tol,
            circuit=solution.circuit,
            independent=independent,
        )


def validate_pool(
    pool,
    *,
    unitarity_tol: float = DEFAULT_UNITARITY_TOL,
    distance_tol: float = DEFAULT_DISTANCE_TOL,
    independent: bool = False,
) -> None:
    """Validate an assembled :class:`BlockPool` (e.g. from a checkpoint).

    Checks the stored original unitary against the block circuit it
    claims to represent, then every candidate against it.
    """
    if not pool.candidates:
        raise ValidationError("pool has no candidates (not even the exact block)")
    target = pool.original_unitary
    if not np.all(np.isfinite(target)):
        raise ValidationError("pool original unitary contains non-finite entries")
    if _unitarity_defect(target) > unitarity_tol:
        raise ValidationError("pool original unitary is not unitary")
    if not np.allclose(target, pool.block.unitary(), atol=POOL_UNITARY_MATCH_TOL):
        raise ValidationError(
            "pool original unitary disagrees with its block circuit"
        )
    for position, candidate in enumerate(pool.candidates):
        label = f"candidate {position} (cnots={candidate.cnot_count})"
        validate_candidate_unitary(
            candidate.unitary,
            target,
            candidate.distance,
            label=label,
            unitarity_tol=unitarity_tol,
            distance_tol=distance_tol,
            circuit=candidate.circuit,
            independent=independent,
        )
