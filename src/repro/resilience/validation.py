"""Health checks for synthesis candidates.

Every candidate set that enters a pool crosses a trust boundary: it came
back from a worker process, the content-addressed disk cache, or a run
checkpoint.  A crashed worker, a bit-flipped cache file that slipped
past its checksum, or a non-converging optimizer can all hand the
pipeline data that *parses* fine but is numerically garbage — and a
garbage candidate silently poisons every downstream selection.

``validate_solutions`` / ``validate_pool`` therefore check, for each
candidate:

* **finiteness** — no NaN/Inf in the recorded distance or the circuit's
  unitary;
* **unitarity** — ``U^dag U = I`` to ``unitarity_tol`` (a circuit built
  from rotation gates is unitary by construction, so any violation means
  corrupted parameters or a corrupted matrix);
* **distance consistency** — the HS distance recomputed from the
  circuit agrees with the recorded one to ``distance_tol``.

Failures raise :class:`~repro.exceptions.ValidationError`; the executor
quarantines the offending set (records a failure, retries or falls
back) instead of admitting it.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.unitary import hs_distance

#: Max elementwise deviation of ``U^dag U`` from the identity.  Circuits
#: are products of exactly-unitary gate matrices, so honest candidates
#: sit at ~1e-15; 1e-6 leaves orders of magnitude of slack while still
#: catching any real corruption.
DEFAULT_UNITARITY_TOL = 1e-6
#: Max |recomputed - recorded| HS distance.  Recorded distances are
#: produced from the same parameters the circuit is built from, so
#: honest candidates agree to float precision.
DEFAULT_DISTANCE_TOL = 1e-6


def _unitarity_defect(unitary: np.ndarray) -> float:
    """Max elementwise |U^dag U - I| (inf for non-finite input)."""
    if not np.all(np.isfinite(unitary)):
        return float("inf")
    dim = unitary.shape[0]
    gram = unitary.conj().T @ unitary
    return float(np.max(np.abs(gram - np.eye(dim))))


def validate_candidate_unitary(
    unitary: np.ndarray,
    target: np.ndarray,
    recorded_distance: float,
    *,
    label: str,
    unitarity_tol: float = DEFAULT_UNITARITY_TOL,
    distance_tol: float = DEFAULT_DISTANCE_TOL,
) -> None:
    """Validate one candidate unitary against its target block unitary."""
    if not np.isfinite(recorded_distance):
        raise ValidationError(f"{label}: recorded distance is not finite")
    if not np.all(np.isfinite(unitary)):
        raise ValidationError(f"{label}: unitary contains non-finite entries")
    defect = _unitarity_defect(unitary)
    if defect > unitarity_tol:
        raise ValidationError(
            f"{label}: unitarity defect {defect:.3e} exceeds "
            f"tolerance {unitarity_tol:.1e}"
        )
    recomputed = hs_distance(unitary, target)
    if abs(recomputed - recorded_distance) > distance_tol:
        raise ValidationError(
            f"{label}: recomputed HS distance {recomputed:.6e} disagrees "
            f"with recorded {recorded_distance:.6e} "
            f"(tolerance {distance_tol:.1e})"
        )


def validate_solutions(
    target: np.ndarray,
    solutions,
    *,
    unitarity_tol: float = DEFAULT_UNITARITY_TOL,
    distance_tol: float = DEFAULT_DISTANCE_TOL,
) -> None:
    """Validate a worker's / the cache's raw LEAP solution list.

    Raises :class:`ValidationError` naming the first offending solution;
    an empty list is valid (the pool degenerates to the exact block).
    """
    if not isinstance(solutions, list):
        raise ValidationError(
            f"solution payload is {type(solutions).__name__}, expected list"
        )
    for position, solution in enumerate(solutions):
        label = f"solution {position} (cnots={solution.cnot_count})"
        validate_candidate_unitary(
            solution.circuit.unitary(),
            target,
            solution.distance,
            label=label,
            unitarity_tol=unitarity_tol,
            distance_tol=distance_tol,
        )


def validate_pool(
    pool,
    *,
    unitarity_tol: float = DEFAULT_UNITARITY_TOL,
    distance_tol: float = DEFAULT_DISTANCE_TOL,
) -> None:
    """Validate an assembled :class:`BlockPool` (e.g. from a checkpoint).

    Checks the stored original unitary against the block circuit it
    claims to represent, then every candidate against it.
    """
    if not pool.candidates:
        raise ValidationError("pool has no candidates (not even the exact block)")
    target = pool.original_unitary
    if not np.all(np.isfinite(target)):
        raise ValidationError("pool original unitary contains non-finite entries")
    if _unitarity_defect(target) > unitarity_tol:
        raise ValidationError("pool original unitary is not unitary")
    if not np.allclose(target, pool.block.unitary(), atol=1e-9):
        raise ValidationError(
            "pool original unitary disagrees with its block circuit"
        )
    for position, candidate in enumerate(pool.candidates):
        label = f"candidate {position} (cnots={candidate.cnot_count})"
        validate_candidate_unitary(
            candidate.unitary,
            target,
            candidate.distance,
            label=label,
            unitarity_tol=unitarity_tol,
            distance_tol=distance_tol,
        )
