"""Retry policy with deterministic per-attempt seed escalation.

A block whose synthesis fails — worker crash, hard timeout, or a
candidate set that fails validation — is retried up to
``max_attempts`` times before the executor downgrades it to the exact
singleton pool.  Two properties keep retries compatible with the
pipeline's determinism contract:

* **Same-seed first.**  Attempts ``0..same_seed_retries`` reuse the
  block's original seed, so a *transient* fault (a crashed worker, an
  injected exception, a corrupted result) recovers with a result that is
  bit-identical to an unfaulted run.
* **Deterministic escalation.**  Later attempts derive fresh seeds via
  ``np.random.SeedSequence(block_seed).spawn(...)`` — a pure function of
  the block seed and the attempt number, so a retried run is itself
  reproducible even when it escalates.

``budget_multiplier`` optionally grows the per-attempt time budget
(cooperative LEAP budget and the hard timeout alike) geometrically, so a
block that timed out gets more room instead of timing out identically.

``backoff_base`` optionally delays each retry with *full-jitter
exponential backoff* (delay drawn uniformly from ``[0, min(cap,
base * 2**(attempt-1))]``) so a burst of correlated failures — a
briefly-broken worker pool, a filesystem blip under the cache — is not
hammered with an immediate synchronized re-dispatch.  Backoff changes
only *when* an attempt runs, never *what* it computes: the attempt's
seed and budget come from :meth:`attempt_seed` / :meth:`attempt_budget`
exactly as before, so the first (same-seed) retry stays bit-identical
to an unfaulted run.  The default of ``0.0`` preserves the historical
immediate re-dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Failure taxonomy recorded in :class:`FailureRecord.kind`.
FAILURE_EXCEPTION = "exception"
FAILURE_TIMEOUT = "timeout"
FAILURE_VALIDATION = "validation"
FAILURE_CHECKPOINT = "checkpoint"
#: Terminal degradation: every attempt failed and the block was replaced
#: by its exact singleton pool.  Unlike the other kinds this is not an
#: attempt-level failure but the run-level outcome of exhausting them.
FAILURE_FALLBACK = "fallback"
FAILURE_KINDS = (
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    FAILURE_VALIDATION,
    FAILURE_CHECKPOINT,
    FAILURE_FALLBACK,
)


@dataclass(frozen=True)
class FailureRecord:
    """One structured entry of a run's failure log."""

    block_index: int
    attempt: int
    kind: str
    message: str

    def as_dict(self) -> dict:
        """JSON-serializable form (for artifacts and the CLI)."""
        return {
            "block_index": self.block_index,
            "attempt": self.attempt,
            "kind": self.kind,
            "message": self.message,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how often) failed block synthesis is retried.

    ``max_attempts=1`` disables retries entirely (one attempt, then the
    exact-pool fallback) — the executor's historical behaviour.
    """

    max_attempts: int = 2
    budget_multiplier: float = 1.0
    #: Number of *retries* (attempts beyond the first) that reuse the
    #: block's original seed before escalation kicks in.
    same_seed_retries: int = 1
    #: Base delay (seconds) of the full-jitter exponential backoff
    #: applied before each retry round; 0.0 = immediate re-dispatch
    #: (the historical behaviour).
    backoff_base: float = 0.0
    #: Ceiling on the un-jittered exponential delay.
    backoff_cap: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.budget_multiplier <= 0:
            raise ValueError(
                f"budget_multiplier must be > 0, got {self.budget_multiplier}"
            )
        if self.same_seed_retries < 0:
            raise ValueError(
                f"same_seed_retries must be >= 0, got {self.same_seed_retries}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap <= 0:
            raise ValueError(
                f"backoff_cap must be > 0, got {self.backoff_cap}"
            )

    def attempt_seed(self, block_seed: int, attempt: int) -> int:
        """Deterministic seed for ``attempt`` (0-based) of a block."""
        if attempt <= self.same_seed_retries:
            return int(block_seed)
        escalation = attempt - self.same_seed_retries
        spawned = np.random.SeedSequence(int(block_seed)).spawn(escalation)
        return int(spawned[-1].generate_state(1)[0] % (2**31 - 1))

    def attempt_budget(self, base: float | None, attempt: int) -> float | None:
        """Time budget for ``attempt``; ``None`` stays unbounded."""
        if base is None:
            return None
        return float(base) * self.budget_multiplier**attempt

    def backoff_seconds(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Full-jitter delay before dispatching ``attempt`` (0-based).

        Attempt 0 (the first try) never waits.  Retry ``k`` draws
        uniformly from ``[0, min(backoff_cap, backoff_base * 2**(k-1))]``
        — AWS-style full jitter, which decorrelates a thundering herd of
        retries better than equal-jitter at the same expected delay.
        The draw uses the *caller's* RNG (a fresh one when omitted), so
        it can never perturb the synthesis seed stream.
        """
        if attempt < 1 or self.backoff_base <= 0:
            return 0.0
        ceiling = min(
            float(self.backoff_cap),
            float(self.backoff_base) * 2.0 ** (attempt - 1),
        )
        if rng is None:
            rng = np.random.default_rng()
        return float(rng.uniform(0.0, ceiling))

    def is_baseline_attempt(self, block_seed: int, attempt: int, base_budget) -> bool:
        """Whether ``attempt`` reproduces attempt 0's (seed, budget).

        Results from baseline attempts are interchangeable with an
        unfaulted run's, so they are safe to persist in the
        content-addressed cache under attempt 0's entry key.
        """
        return (
            self.attempt_seed(block_seed, attempt) == int(block_seed)
            and self.attempt_budget(base_budget, attempt) == base_budget
        )


@dataclass
class RetryLog:
    """Mutable accumulator the executor threads through a run."""

    records: list[FailureRecord] = field(default_factory=list)
    #: Attempts beyond the first actually executed, across all blocks.
    retries: int = 0

    def record(self, block_index: int, attempt: int, kind: str, message: str) -> None:
        self.records.append(
            FailureRecord(
                block_index=int(block_index),
                attempt=int(attempt),
                kind=kind,
                message=str(message),
            )
        )
