"""Checkpoint/resume journal for QUEST runs.

Per-block synthesis dominates a run's wall time, and the blocks complete
independently — so a crash three hours into a forty-block run should
cost one block, not forty.  :class:`RunJournal` persists, under a
``checkpoint_dir``:

``manifest.json``
    The run's identity, written once at start: journal format version,
    the **config fingerprint** (a digest of the baseline circuit plus
    every result-affecting :class:`QuestConfig` knob), the pre-drawn
    per-block seed stream, and the block count.  Resume refuses
    (:class:`~repro.exceptions.CheckpointError`) when the fingerprint or
    seed stream disagrees — mixing pools across configs would silently
    produce garbage.

``block_NNNN.qckpt``
    One file per completed nontrivial block pool: a pickled envelope
    ``{version, index, key, checksum, payload}``, where ``key`` is the
    block's content-addressed cache entry key and ``payload`` the
    pickled :class:`~repro.core.pool.BlockPool`.  Every entry is
    published atomically — write temp file, flush, ``fsync``, ``rename``
    — so a crash mid-write leaves either the previous state or a
    temp file that resume ignores, never a half-entry under the final
    name.  Entries that fail the checksum (torn write, bit rot) are
    quarantined (counted, deleted, resynthesized), never trusted.

Resume is bit-identical by construction: pools round-trip through
pickle exactly, the seed stream is pre-drawn and verified, and blocks
not in the journal re-synthesize under the same seeds an uninterrupted
run would have used.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.exceptions import CheckpointError
from repro.observability import get_metrics, get_tracer

#: Bump when the journal layout changes; old directories refuse to resume.
JOURNAL_VERSION = 1

_MANIFEST_NAME = "manifest.json"


def quest_fingerprint(baseline, config) -> str:
    """Digest of everything that determines a run's results.

    Covers the basis-lowered circuit (via its QASM text) and every
    :class:`QuestConfig` knob that changes pools or selection.  Runtime
    knobs — workers, cache, checkpointing, retry policy — are excluded:
    they change *how* results are computed, not what they are.
    """
    from repro.circuits.qasm import circuit_to_qasm

    knobs = (
        ("max_block_qubits", int(config.max_block_qubits)),
        ("max_samples", int(config.max_samples)),
        ("threshold_per_block", float(config.threshold_per_block)),
        ("weight", float(config.weight)),
        ("max_layers_per_block", int(config.max_layers_per_block)),
        ("solutions_per_layer", int(config.solutions_per_layer)),
        ("max_candidates_per_block", int(config.max_candidates_per_block)),
        ("instantiation_starts", int(config.instantiation_starts)),
        ("max_optimizer_iterations", int(config.max_optimizer_iterations)),
        ("annealing_maxiter", int(config.annealing_maxiter)),
        ("seed", config.seed),
        ("block_time_budget", config.block_time_budget),
        ("sphere_variants_per_count", int(config.sphere_variants_per_count)),
    )
    digest = hashlib.sha256()
    digest.update(circuit_to_qasm(baseline).encode())
    digest.update(b"\x00")
    digest.update(repr(knobs).encode())
    return digest.hexdigest()


def _atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Publish ``blob`` at ``path`` via write-temp + fsync + rename."""
    tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    # Durability of the rename itself (POSIX): fsync the directory.
    try:
        directory_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(directory_fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(directory_fd)


class RunJournal:
    """Atomically journaled per-block pools under a checkpoint dir."""

    def __init__(
        self,
        directory: str | os.PathLike,
        fingerprint: str,
        seeds: list[int],
        *,
        resume: bool = True,
        fault_injector=None,
    ) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self.seeds = [int(seed) for seed in seeds]
        self.fault_injector = fault_injector
        #: Entries that existed but failed integrity/health checks.
        self.corrupt_entries = 0
        manifest_path = self._dir / _MANIFEST_NAME
        if manifest_path.exists():
            self._check_manifest(manifest_path, resume)
        else:
            self._write_manifest(manifest_path)

    @property
    def directory(self) -> Path:
        return self._dir

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def _write_manifest(self, path: Path) -> None:
        manifest = {
            "version": JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
            "seeds": self.seeds,
            "num_blocks": len(self.seeds),
        }
        _atomic_write_bytes(path, json.dumps(manifest, indent=1).encode())

    def _check_manifest(self, path: Path, resume: bool) -> None:
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {path}: {exc}"
            ) from exc
        if not resume:
            raise CheckpointError(
                f"checkpoint directory {self._dir} already holds a run "
                "journal; resume it (resume=True / --resume) or clear the "
                "directory for a fresh run"
            )
        if manifest.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"checkpoint {self._dir} uses journal version "
                f"{manifest.get('version')!r}, this build writes "
                f"{JOURNAL_VERSION}; clear the directory to restart"
            )
        if manifest.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"refusing to resume from {self._dir}: its config "
                "fingerprint does not match this run (different circuit "
                "or QuestConfig); clear the directory to restart"
            )
        if [int(s) for s in manifest.get("seeds", [])] != self.seeds:
            raise CheckpointError(
                f"refusing to resume from {self._dir}: recorded seed "
                "stream does not match this run"
            )

    # ------------------------------------------------------------------
    # Block entries
    # ------------------------------------------------------------------
    def _entry_path(self, index: int) -> Path:
        return self._dir / f"block_{index:04d}.qckpt"

    def journaled_blocks(self) -> list[int]:
        """Indices with a published (not necessarily valid) entry."""
        indices = []
        for path in sorted(self._dir.glob("block_*.qckpt")):
            try:
                indices.append(int(path.stem.split("_")[1]))
            except (IndexError, ValueError):
                continue
        return indices

    def store_pool(self, index: int, key: str, pool) -> None:
        """Atomically journal ``pool`` as block ``index``'s result."""
        payload = pickle.dumps(pool, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "version": JOURNAL_VERSION,
            "index": int(index),
            "key": key,
            "checksum": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        path = self._entry_path(index)
        _atomic_write_bytes(
            path, pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        )
        tracer = get_tracer()
        if tracer.is_enabled:
            tracer.event("checkpoint.store", block=int(index))
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc("checkpoint.stores")
        if self.fault_injector is not None:
            self.fault_injector.on_checkpoint_write(int(index), path)

    def load_pool(self, index: int, key: str):
        """Load block ``index``'s journaled pool, or None.

        A missing entry is a plain miss.  An entry that exists but fails
        any integrity check — unpicklable, wrong version/index/key, bad
        checksum — is *quarantined*: counted in ``corrupt_entries``,
        deleted so the block re-journals cleanly, and reported as a miss.
        """
        from repro.core.pool import BlockPool

        path = self._entry_path(index)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            envelope = pickle.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not a dict")
            if envelope.get("version") != JOURNAL_VERSION:
                raise ValueError("journal version mismatch")
            if envelope.get("index") != int(index):
                raise ValueError("entry index mismatch")
            if envelope.get("key") != key:
                raise ValueError("entry key mismatch")
            payload = envelope["payload"]
            if hashlib.sha256(payload).hexdigest() != envelope["checksum"]:
                raise ValueError("payload checksum mismatch")
            pool = pickle.loads(payload)
            if not isinstance(pool, BlockPool):
                raise ValueError(
                    f"payload is {type(pool).__name__}, expected BlockPool"
                )
        except (
            pickle.UnpicklingError,
            EOFError,
            ValueError,
            TypeError,
            KeyError,
            AttributeError,
            ImportError,
            IndexError,
        ):
            self.discard(index)
            return None
        return pool

    def discard(self, index: int) -> None:
        """Quarantine block ``index``'s entry (count + delete)."""
        self.corrupt_entries += 1
        tracer = get_tracer()
        if tracer.is_enabled:
            tracer.event("checkpoint.quarantine", block=int(index))
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc("checkpoint.quarantined")
        self._entry_path(index).unlink(missing_ok=True)
