"""Resilience layer: the pipeline survives faults instead of degrading.

Long multi-block QUEST runs fail in mundane ways — a worker segfaults,
an optimizer never converges, a cache file rots on disk, the whole
process gets OOM-killed — and without this package every one of those
silently downgraded a block to its distance-zero fallback (or lost the
run entirely).  Four cooperating pieces close those holes:

* :mod:`~repro.resilience.journal` — checkpoint/resume: atomically
  persisted per-block pools plus a config-fingerprinted manifest, so a
  killed run resumes bit-identically instead of restarting.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: failed blocks
  retry with deterministic per-attempt seeds (same seed first, then
  ``SeedSequence.spawn`` escalation) and optional budget growth before
  the exact-pool downgrade; every failure lands in a structured log.
* :mod:`~repro.resilience.validation` — candidates from workers, the
  cache, or a checkpoint are health-checked (finite, unitary, distance
  recomputes) and quarantined on failure.
* :mod:`~repro.resilience.faults` — a deterministic fault injector
  (raise / hang / NaN / kill / flip-cache / torn-checkpoint) so each
  recovery path above is exercised in CI, not discovered in production.

:mod:`~repro.resilience.deadline` supplies the cooperative per-block
deadline that bounds inline (``workers == 1``) synthesis, which the hard
process-pool timeout cannot reach.
"""

from repro.resilience.deadline import (
    block_deadline,
    check_deadline,
    deadline_remaining,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    parse_fault_spec,
)
from repro.resilience.journal import (
    JOURNAL_VERSION,
    RunJournal,
    quest_fingerprint,
)
from repro.resilience.retry import (
    FAILURE_KINDS,
    FailureRecord,
    RetryLog,
    RetryPolicy,
)
from repro.resilience.validation import (
    DEFAULT_DISTANCE_TOL,
    DEFAULT_UNITARITY_TOL,
    validate_pool,
    validate_solutions,
)

__all__ = [
    "block_deadline",
    "check_deadline",
    "deadline_remaining",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "parse_fault_spec",
    "JOURNAL_VERSION",
    "RunJournal",
    "quest_fingerprint",
    "FAILURE_KINDS",
    "FailureRecord",
    "RetryLog",
    "RetryPolicy",
    "DEFAULT_DISTANCE_TOL",
    "DEFAULT_UNITARITY_TOL",
    "validate_pool",
    "validate_solutions",
]
