"""Cooperative per-block deadlines for inline synthesis.

The executor's hard per-block timeout is enforced with
``future.result(timeout=...)`` — which only works when the block runs in
a *worker process* that can be abandoned.  The inline (``workers == 1``)
path runs synthesis in the parent, where nothing can preempt a stuck
optimizer, so the deadline is **cooperative**: the executor arms a
deadline around the block's synthesis call and long-running loops (the
LEAP layer/placement loops, the instantiation multistart loop, the fault
injector's hang fault) call :func:`check_deadline`, which raises
:class:`~repro.exceptions.BlockTimeoutError` once the deadline passes.

The deadline lives in a :class:`contextvars.ContextVar`, so nested
blocks compose (the innermost effective deadline is the minimum) and
worker processes — which never arm one — are unaffected.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from repro.exceptions import BlockTimeoutError

#: Monotonic-clock instant after which :func:`check_deadline` raises.
_DEADLINE: ContextVar[float | None] = ContextVar("block_deadline", default=None)


@contextmanager
def block_deadline(seconds: float | None):
    """Arm a cooperative deadline ``seconds`` from now for the body.

    ``None`` means "no deadline" and is a no-op, so callers can pass an
    optional timeout straight through.  Nested deadlines never extend an
    outer one: the effective deadline is the minimum.
    """
    if seconds is None:
        yield
        return
    candidate = time.monotonic() + float(seconds)
    current = _DEADLINE.get()
    token = _DEADLINE.set(candidate if current is None else min(candidate, current))
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def check_deadline() -> None:
    """Raise :class:`BlockTimeoutError` if the armed deadline has passed.

    Cheap enough (one context-var read + one clock read) to call from
    per-layer and per-start loops; a no-op when no deadline is armed.
    """
    deadline = _DEADLINE.get()
    if deadline is not None and time.monotonic() > deadline:
        raise BlockTimeoutError(
            "cooperative block deadline exceeded "
            f"(by {time.monotonic() - deadline:.2f}s)"
        )


def deadline_remaining() -> float | None:
    """Seconds until the armed deadline, or ``None`` when unarmed."""
    deadline = _DEADLINE.get()
    if deadline is None:
        return None
    return deadline - time.monotonic()
