"""Run-scoped metrics: counters, gauges, and histogram summaries.

A :class:`MetricsRegistry` accumulates three shapes of telemetry:

* **counters** (``inc``) — monotonically growing totals, e.g.
  ``cache.hit``, ``retry.attempts``, ``selection.batch_evals``;
* **gauges** (``gauge``) — last-observed values, e.g.
  ``partition.blocks``;
* **histograms** (``observe``) — streaming summaries (count / sum /
  min / max) of a distribution, e.g. ``synthesis.pool_size``.

:func:`repro.core.quest.run_quest` creates one registry per run (or
adopts the ambient one installed with :func:`use_metrics`), snapshots it
into ``QuestResult.metrics``, and the CLI dumps the same snapshot via
``--metrics-json``.  Worker processes accumulate into their own registry
and return ``snapshot()`` with the synthesis payload; the parent folds
it in with :meth:`MetricsRegistry.merge`.

All mutators take a lock, so threads sharing a registry (the executor's
callbacks) stay consistent; like the tracer, the registry never touches
an RNG, so metrics collection cannot perturb results.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar


class MetricsRegistry:
    """Thread-safe counters / gauges / histogram summaries."""

    is_enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max]
        self._histograms: dict[str, list[float]] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``'s running summary."""
        value = float(value)
        with self._lock:
            entry = self._histograms.get(name)
            if entry is None:
                self._histograms[name] = [1, value, value, value]
            else:
                entry[0] += 1
                entry[1] += value
                entry[2] = min(entry[2], value)
                entry[3] = max(entry[3], value)

    def snapshot(self) -> dict:
        """JSON-serializable copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": entry[0],
                        "sum": entry[1],
                        "min": entry[2],
                        "max": entry[3],
                        "mean": entry[1] / entry[0],
                    }
                    for name, entry in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram summaries combine exactly; gauges adopt
        the merged snapshot's value (last write wins), matching their
        "latest observation" semantics.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.get("gauges", {}))
            for name, summary in snapshot.get("histograms", {}).items():
                entry = self._histograms.get(name)
                if entry is None:
                    self._histograms[name] = [
                        summary["count"],
                        summary["sum"],
                        summary["min"],
                        summary["max"],
                    ]
                else:
                    entry[0] += summary["count"]
                    entry[1] += summary["sum"]
                    entry[2] = min(entry[2], summary["min"])
                    entry[3] = max(entry[3], summary["max"])


class NullMetrics:
    """Disabled registry: all mutators are no-ops, snapshots are empty."""

    is_enabled = False
    __slots__ = ()

    def inc(self, name: str, value: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        return None


NULL_METRICS = NullMetrics()

#: The ambient registry; :data:`NULL_METRICS` unless a run installs one.
_CURRENT_METRICS: ContextVar = ContextVar("repro_metrics", default=NULL_METRICS)


def get_metrics():
    """The metrics registry for the current context (never None)."""
    return _CURRENT_METRICS.get()


@contextmanager
def use_metrics(registry):
    """Install ``registry`` (None = disabled) as the ambient registry."""
    token = _CURRENT_METRICS.set(
        NULL_METRICS if registry is None else registry
    )
    try:
        yield _CURRENT_METRICS.get()
    finally:
        _CURRENT_METRICS.reset(token)
