"""Aggregate a JSON-lines trace into a per-stage breakdown.

``python -m repro trace-summary run.trace`` renders, from the raw
span/event stream, the same wall-time story ``QuestTimings`` tells —
but per span name, with counts, and including worker-side spans the
parent-side timings can only see in aggregate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: QuestTimings stage -> the span name that wraps the same region.
STAGE_SPANS = {
    "partition": "quest.partition",
    "synthesis": "quest.synthesis",
    "selection": "quest.selection",
    "noisy_eval": "quest.noisy_eval",
}


@dataclass
class SpanStats:
    """Aggregate of every closed span sharing one name."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    errors: int = 0

    def add(self, duration: float, failed: bool) -> None:
        self.count += 1
        self.total_seconds += duration
        self.min_seconds = min(self.min_seconds, duration)
        self.max_seconds = max(self.max_seconds, duration)
        if failed:
            self.errors += 1


@dataclass
class TraceSummary:
    """Everything ``trace-summary`` renders."""

    spans: dict[str, SpanStats] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    records: int = 0
    malformed_lines: int = 0

    def stage_totals(self) -> dict[str, float]:
        """Total seconds per QuestTimings stage present in the trace."""
        return {
            stage: self.spans[span].total_seconds
            for stage, span in STAGE_SPANS.items()
            if span in self.spans
        }


def iter_trace_records(path: str | Path):
    """Yield ``(record, None)`` per parsed line, ``(None, line)`` on junk."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                yield None, line
                continue
            if isinstance(record, dict):
                yield record, None
            else:
                yield None, line


def summarize_records(records) -> TraceSummary:
    """Aggregate an iterable of trace record dicts."""
    summary = TraceSummary()
    for record in records:
        summary.records += 1
        kind = record.get("type")
        name = str(record.get("name", "?"))
        if kind == "span":
            stats = summary.spans.setdefault(name, SpanStats())
            stats.add(
                float(record.get("dur", 0.0)),
                record.get("status") == "error",
            )
        elif kind == "event":
            summary.events[name] = summary.events.get(name, 0) + 1
    return summary


def summarize_trace(path: str | Path) -> TraceSummary:
    """Parse and aggregate a JSON-lines trace file."""
    parsed = []
    malformed = 0
    for record, junk in iter_trace_records(path):
        if record is None:
            malformed += 1
        else:
            parsed.append(record)
    summary = summarize_records(parsed)
    summary.malformed_lines = malformed
    return summary


def _table(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.extend(
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows
    )
    return lines


def render_summary(summary: TraceSummary) -> str:
    """Human-readable per-stage wall-time/count breakdown."""
    lines: list[str] = []
    stage_totals = summary.stage_totals()
    if stage_totals:
        lines.append("pipeline stages:")
        lines.extend(
            _table(
                ["stage", "seconds"],
                [
                    [stage, f"{seconds:.3f}"]
                    for stage, seconds in stage_totals.items()
                ],
            )
        )
        lines.append("")
    if summary.spans:
        lines.append("spans:")
        rows = [
            [
                name,
                str(stats.count),
                f"{stats.total_seconds:.3f}",
                f"{stats.total_seconds / stats.count:.3f}",
                f"{stats.max_seconds:.3f}",
                str(stats.errors),
            ]
            for name, stats in sorted(
                summary.spans.items(),
                key=lambda item: -item[1].total_seconds,
            )
        ]
        lines.extend(
            _table(
                ["span", "count", "total s", "mean s", "max s", "errors"],
                rows,
            )
        )
        lines.append("")
    if summary.events:
        lines.append("events:")
        lines.extend(
            _table(
                ["event", "count"],
                [
                    [name, str(count)]
                    for name, count in sorted(
                        summary.events.items(), key=lambda item: -item[1]
                    )
                ],
            )
        )
        lines.append("")
    lines.append(
        f"{summary.records} record(s)"
        + (
            f", {summary.malformed_lines} malformed line(s) skipped"
            if summary.malformed_lines
            else ""
        )
    )
    return "\n".join(lines)
