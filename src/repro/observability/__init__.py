"""Observability substrate: spans, metrics, structured logging.

One consistent event vocabulary threads through every pipeline layer
(see DESIGN.md "Observability layer" for the full table); this package
provides the mechanisms:

* :mod:`repro.observability.trace` — span tracer + JSON-lines sinks;
* :mod:`repro.observability.metrics` — counters / gauges / histograms;
* :mod:`repro.observability.logs` — the ``repro`` logger configuration;
* :mod:`repro.observability.summary` — trace aggregation for the
  ``python -m repro trace-summary`` subcommand.

Tracing and metrics are ambient (context-variable scoped) so inner
layers need no signature changes, and both default to no-op
implementations: an untraced run pays one ``is_enabled`` check per
would-be record.
"""

from repro.observability.logs import configure_logging, get_logger
from repro.observability.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    use_metrics,
)
from repro.observability.summary import (
    STAGE_SPANS,
    SpanStats,
    TraceSummary,
    render_summary,
    summarize_records,
    summarize_trace,
)
from repro.observability.trace import (
    NULL_TRACER,
    TRACE_VERSION,
    JsonlSink,
    ListSink,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "JsonlSink",
    "ListSink",
    "get_tracer",
    "use_tracer",
    "TRACE_VERSION",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "use_metrics",
    "configure_logging",
    "get_logger",
    "TraceSummary",
    "SpanStats",
    "STAGE_SPANS",
    "summarize_trace",
    "summarize_records",
    "render_summary",
]
