"""Structured logging for the CLI and library diagnostics.

The library logs under the ``repro`` logger namespace
(``get_logger("cli")`` -> ``repro.cli``); nothing attaches handlers at
import time, so embedding applications keep full control.  The CLI calls
:func:`configure_logging`, which installs the split-stream convention
UNIX tools use:

* records below WARNING (progress, per-run diagnostics) go to *stdout*;
* WARNING and above (failure records, degradations) go to *stderr*;

both with a bare ``%(message)s`` format, so the CLI's human-readable
output is unchanged while every line now carries a level and flows
through one configurable funnel (``--log-level``).
"""

from __future__ import annotations

import logging
import sys

LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


class _BelowWarning(logging.Filter):
    """Pass only records below WARNING (the stdout side of the split)."""

    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno < logging.WARNING


def configure_logging(
    level: str = "info", stdout=None, stderr=None
) -> logging.Logger:
    """(Re)configure the ``repro`` logger for CLI use.

    Idempotent: existing handlers on the logger are replaced, so a test
    harness calling ``main()`` repeatedly never stacks handlers.  The
    streams default to the *current* ``sys.stdout``/``sys.stderr`` so
    capture fixtures see the output.
    """
    if level not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
        )
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(_LEVELS[level])
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    out_handler = logging.StreamHandler(stdout if stdout is not None else sys.stdout)
    out_handler.addFilter(_BelowWarning())
    out_handler.setFormatter(logging.Formatter("%(message)s"))
    err_handler = logging.StreamHandler(stderr if stderr is not None else sys.stderr)
    err_handler.setLevel(logging.WARNING)
    err_handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(out_handler)
    logger.addHandler(err_handler)
    logger.propagate = False
    return logger
