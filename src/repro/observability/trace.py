"""Span-based tracing with JSON-lines sinks.

The tracer gives every stage of a QUEST run an inspectable record: a
*span* wraps a timed region (``with trace.span("synthesis.block",
block=i): ...``), an *event* marks a point-in-time occurrence (a cache
hit, a retry, an injected fault).  Both are emitted as one JSON object
per line to a pluggable sink, so a full run produces a flat, greppable,
stream-parseable trace (rendered by ``python -m repro trace-summary``).

Design constraints, in order:

**Zero cost when disabled.**  The default tracer is :data:`NULL_TRACER`,
whose ``span``/``event`` are attribute-lookup-cheap no-ops; hot loops
additionally guard on ``tracer.is_enabled`` so the disabled path never
builds an attribute dict.  The pipeline's results must be bit-identical
with tracing on or off — the tracer never touches an RNG.

**Monotonic durations.**  Span durations come from ``time.monotonic()``
(immune to wall-clock steps); the ``ts`` field is wall-clock
``time.time()`` purely for human correlation across processes.

**Nesting and safety.**  The current span lives in a
:class:`~contextvars.ContextVar`, so nesting works per-thread (and
per-``asyncio`` task) without explicit plumbing; span ids embed the pid
plus a locked counter, and :class:`JsonlSink` writes whole lines under a
lock, so concurrent threads interleave records, never bytes.

**Worker marshalling.**  Worker processes cannot share the parent's
sink.  They record into a :class:`ListSink` via a ``Tracer`` constructed
with ``origin="worker"``, return the record list with their payload, and
the parent re-emits it through :meth:`Tracer.replay`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path

#: Bump when the record layout changes incompatibly.
TRACE_VERSION = 1


def _json_default(value):
    """Serialize non-native values: numpy scalars via .item(), rest via str."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


class ListSink:
    """In-memory sink: collects records in a list.

    Used by tests and by worker processes, whose records are marshalled
    back to the parent with the synthesis payload.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Append-only JSON-lines file sink.

    Each record is serialized and written as one complete line under a
    lock, so records from concurrent threads interleave line-wise, never
    byte-wise.  The handle is flushed per record: a crashed run keeps
    every event emitted before the crash.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=_json_default)
        with self._lock:
            if not self._handle.closed:
                self._handle.write(line + "\n")
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


#: Id of the innermost open span in this thread/task (None at top level).
_CURRENT_SPAN: ContextVar[str | None] = ContextVar(
    "repro_current_span", default=None
)


class _NullSpan:
    """Reusable no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``span`` returns a shared singleton context manager and ``event``
    returns immediately, so instrumentation costs one attribute lookup
    and one call on the disabled path; loops that would build attribute
    dicts guard on :attr:`is_enabled` to avoid even that.
    """

    is_enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def replay(self, records) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Span:
    """One timed region; emits a single ``span`` record when it closes.

    The record carries the wall-clock start (``ts``), the monotonic
    duration (``dur``), the span/parent ids, and ``status`` — ``"error"``
    with the exception text when the body raised (the exception still
    propagates).
    """

    __slots__ = (
        "_tracer", "name", "attrs",
        "span_id", "parent_id", "_start", "_wall", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self.parent_id = _CURRENT_SPAN.get()
        self.span_id = self._tracer._new_id()
        self._token = _CURRENT_SPAN.set(self.span_id)
        self._wall = time.time()
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self._start
        _CURRENT_SPAN.reset(self._token)
        record = {
            "type": "span",
            "name": self.name,
            "ts": self._wall,
            "dur": duration,
            "span_id": self.span_id,
            "pid": os.getpid(),
            "status": "ok" if exc_type is None else "error",
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer._emit(record)
        return False


class Tracer:
    """Enabled tracer writing span/event records to ``sink``.

    ``origin`` (e.g. ``"worker"``) is stamped on every record emitted by
    this instance, so marshalled worker records stay distinguishable
    after the parent replays them into the run's sink.
    """

    is_enabled = True

    def __init__(self, sink, origin: str | None = None) -> None:
        self.sink = sink
        self.origin = origin
        self._lock = threading.Lock()
        self._count = 0

    def _new_id(self) -> str:
        with self._lock:
            self._count += 1
            count = self._count
        return f"{os.getpid():x}:{count:x}"

    def _emit(self, record: dict) -> None:
        if self.origin is not None:
            record.setdefault("origin", self.origin)
        self.sink.emit(record)

    def span(self, name: str, **attrs) -> Span:
        """Context manager timing a region; see :class:`Span`."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Emit a point-in-time ``event`` record inside the current span."""
        record = {
            "type": "event",
            "name": name,
            "ts": time.time(),
            "pid": os.getpid(),
        }
        span_id = _CURRENT_SPAN.get()
        if span_id is not None:
            record["span_id"] = span_id
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def replay(self, records) -> None:
        """Re-emit records marshalled back from a worker process.

        Records pass through verbatim (they already carry the worker's
        pid, span ids, and ``origin`` stamp).
        """
        for record in records:
            self.sink.emit(dict(record))

    def close(self) -> None:
        self.sink.close()


#: The ambient tracer; :data:`NULL_TRACER` unless a run installs one.
_CURRENT_TRACER: ContextVar = ContextVar("repro_tracer", default=NULL_TRACER)


def get_tracer():
    """The tracer for the current context (never None)."""
    return _CURRENT_TRACER.get()


@contextmanager
def use_tracer(tracer):
    """Install ``tracer`` (None = disabled) as the ambient tracer."""
    token = _CURRENT_TRACER.set(NULL_TRACER if tracer is None else tracer)
    try:
        yield _CURRENT_TRACER.get()
    finally:
        _CURRENT_TRACER.reset(token)
