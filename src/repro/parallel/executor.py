"""Parallel fan-out of per-block LEAP synthesis.

:class:`BlockSynthesisExecutor` takes the partition's blocks plus one
pre-drawn seed per block and returns one :class:`BlockPool` per block.
Three properties make it a drop-in replacement for the old sequential
loop in :func:`repro.core.quest.run_quest`:

**Determinism.**  Seeds are drawn by the caller *before* dispatch, in
block order, so neither worker count nor completion order can change
which seed a block synthesizes under.  Blocks whose content key (see
:mod:`repro.parallel.cache`) collides are canonicalized to the seed of
the *first* occurrence; since LEAP is deterministic given (target,
config, seed), repeated blocks then produce byte-identical solutions
whether they are recomputed (cache off) or reused (cache on).

**Caching.**  With a :class:`~repro.parallel.cache.PoolCache`, each
unique entry key synthesizes at most once per run; repeats and disk hits
skip straight to pool assembly.  Only the LEAP solution list is cached —
pool assembly (original-block candidate, distance re-measurement, sphere
variants) is cheap and block-specific, so it always runs in the parent.

**Graceful degradation.**  A worker that raises, dies, or exceeds the
hard per-block timeout downgrades its block(s) to the exact-block
singleton pool — the distance-zero fallback QUEST always keeps — with a
:class:`RuntimeWarning`, so one bad block costs approximation quality,
never the run.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.core.pool import (
    BlockPool,
    augment_with_sphere_variants,
    build_pool,
    exact_pool,
)
from repro.parallel.cache import PoolCache, content_key, entry_key
from repro.partition.blocks import CircuitBlock
from repro.synthesis.leap import LeapConfig, SynthesisSolution, synthesize


def leap_config_for_block(
    original_cnots: int, config, seed: int | None
) -> LeapConfig:
    """The per-block LEAP configuration ``run_quest`` has always used.

    ``config`` is duck-typed (any object with the QuestConfig synthesis
    knobs) so this module never imports :mod:`repro.core.quest`.
    """
    return LeapConfig(
        max_layers=min(config.max_layers_per_block, max(original_cnots - 1, 1)),
        solutions_per_layer=config.solutions_per_layer,
        instantiation_starts=config.instantiation_starts,
        max_optimizer_iterations=config.max_optimizer_iterations,
        seed=seed,
        time_budget=config.block_time_budget,
        # Threshold stopping: secondary optimizer starts halt at the
        # per-block threshold, producing dissimilar on-sphere solutions.
        target_distance=config.threshold_per_block,
    )


def _synthesize_solutions_task(
    block: CircuitBlock, config, seed: int
) -> tuple[list[SynthesisSolution], float]:
    """The unit of work shipped to a worker: LEAP on one block's unitary.

    Returns the solution list plus the synthesis wall time measured
    inside the worker (queueing and pickling excluded).
    """
    start = time.perf_counter()
    leap_config = leap_config_for_block(
        block.circuit.cnot_count(), config, seed
    )
    report = synthesize(block.unitary(), leap_config)
    return report.solutions, time.perf_counter() - start


def assemble_pool(
    block: CircuitBlock,
    solutions: list[SynthesisSolution],
    config,
    seed: int,
) -> BlockPool:
    """Build the block's candidate pool from raw LEAP solutions.

    Runs in the parent process: the pool embeds the (position-specific)
    block, so only the solutions themselves are shareable across blocks.
    """
    # No single block may eat more than its per-block share of the total
    # threshold — the per-block analogue of Algorithm 1's rejection line.
    pool = build_pool(
        block,
        solutions,
        max_candidates=config.max_candidates_per_block,
        distance_cap=config.threshold_per_block,
    )
    if config.sphere_variants_per_count > 0:
        augment_with_sphere_variants(
            pool,
            threshold=config.threshold_per_block,
            per_count=config.sphere_variants_per_count,
            rng=seed,
        )
    return pool


def synthesize_block_pool(block: CircuitBlock, config, seed: int) -> BlockPool:
    """Synthesize one block end-to-end, inline (no pool, no cache)."""
    if block.num_qubits == 1 or block.circuit.cnot_count() == 0:
        # Nothing to approximate: the pool is just the block itself.
        return exact_pool(block)
    solutions, _ = _synthesize_solutions_task(block, config, seed)
    return assemble_pool(block, solutions, config, seed)


@dataclass
class BlockSynthesisStats:
    """What the executor did, for the run's telemetry.

    ``cache_hits`` counts blocks served without a synthesis job (within-
    run repeats and disk hits); ``cache_misses`` counts jobs actually
    dispatched.  Trivial (1-qubit / CNOT-free) blocks count as neither.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    #: Indices of blocks downgraded to their exact-block fallback pool.
    fallback_blocks: list[int] = field(default_factory=list)
    #: Per-block synthesis seconds, measured inside the worker; 0.0 for
    #: trivial blocks and cache/repeat hits.
    block_seconds: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class _BlockPlan:
    """Routing decision for one block."""

    trivial: bool
    key: str | None = None  # entry key (None for trivial blocks)
    seed: int = 0  # canonical synthesis seed


class BlockSynthesisExecutor:
    """Fans per-block synthesis out over a process pool, with caching.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) runs every block inline in
        the parent — same results, single process, easiest to debug.
    cache:
        Optional :class:`PoolCache`.  When given, blocks sharing an entry
        key synthesize once per run and may persist across runs.
    hard_timeout:
        Hard per-block wall-clock cap in seconds, enforced via the
        future's result timeout (so only when ``workers > 1``; inline
        execution relies on LEAP's own cooperative ``time_budget``).  A
        block that exceeds it falls back to its exact pool.
    synthesize_fn:
        Override of the worker task, for testing/instrumentation.  Must
        be a module-level callable with the signature of
        :func:`_synthesize_solutions_task`.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: PoolCache | None = None,
        hard_timeout: float | None = None,
        synthesize_fn=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache = cache
        self.hard_timeout = hard_timeout
        self._synthesize_fn = synthesize_fn

    def run(
        self,
        blocks: list[CircuitBlock],
        config,
        seeds: list[int],
    ) -> tuple[list[BlockPool], BlockSynthesisStats]:
        """Synthesize every block; returns (pools, stats) in block order."""
        if len(seeds) != len(blocks):
            raise ValueError(
                f"got {len(seeds)} seeds for {len(blocks)} blocks"
            )
        task = (
            self._synthesize_fn
            if self._synthesize_fn is not None
            else _synthesize_solutions_task
        )
        stats = BlockSynthesisStats(block_seconds=[0.0] * len(blocks))

        # Phase 1: plan. Canonicalize seeds per content key and decide,
        # per entry key, whether a synthesis job is needed.
        plans: list[_BlockPlan] = []
        canonical_seed: dict[str, int] = {}
        resolved: dict[str, list[SynthesisSolution]] = {}
        jobs: dict[str, tuple[int, CircuitBlock, int]] = {}
        for index, (block, seed) in enumerate(zip(blocks, seeds)):
            if block.num_qubits == 1 or block.circuit.cnot_count() == 0:
                plans.append(_BlockPlan(trivial=True))
                continue
            fingerprint = leap_config_for_block(
                block.circuit.cnot_count(), config, seed=None
            ).fingerprint()
            content = content_key(block.unitary(), fingerprint)
            seed = canonical_seed.setdefault(content, seed)
            key = entry_key(content, seed)
            plans.append(_BlockPlan(trivial=False, key=key, seed=seed))
            if self.cache is not None:
                if key in resolved or key in jobs:
                    stats.cache_hits += 1  # within-run repeat
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    resolved[key] = cached
                    stats.cache_hits += 1
                    continue
                jobs[key] = (index, block, seed)
            else:
                # Cache disabled: recompute repeats independently (the
                # canonical seed keeps the results identical anyway).
                if key in jobs:
                    key = f"{key}#{index}"
                jobs[key] = (index, block, seed)
            stats.cache_misses += 1

        # Phase 2: execute the synthesis jobs.
        failures: dict[str, BaseException] = {}
        if jobs:
            if self.workers == 1:
                for key, (index, block, seed) in jobs.items():
                    try:
                        solutions, elapsed = task(block, config, seed)
                    except Exception as exc:
                        failures[key] = exc
                        continue
                    resolved[key] = solutions
                    stats.block_seconds[index] = elapsed
            else:
                self._run_pool(task, config, jobs, resolved, failures, stats)
            if self.cache is not None:
                for key in jobs:
                    if key in resolved:
                        self.cache.put(key, resolved[key])

        # Phase 3: assemble pools (parent process, block order).
        pools: list[BlockPool] = []
        for index, (block, plan) in enumerate(zip(blocks, plans)):
            if plan.trivial:
                pools.append(exact_pool(block))
                continue
            key = plan.key if plan.key in resolved else f"{plan.key}#{index}"
            solutions = resolved.get(key)
            if solutions is None:
                cause = failures.get(key) or failures.get(plan.key)
                warnings.warn(
                    f"block {index}: synthesis unavailable "
                    f"({type(cause).__name__ if cause else 'worker failure'}: "
                    f"{cause}); falling back to the exact block",
                    RuntimeWarning,
                    stacklevel=2,
                )
                stats.fallback_blocks.append(index)
                pools.append(exact_pool(block))
                continue
            pools.append(assemble_pool(block, solutions, config, plan.seed))
        return pools, stats

    def _run_pool(
        self,
        task,
        config,
        jobs: dict[str, tuple[int, CircuitBlock, int]],
        resolved: dict[str, list[SynthesisSolution]],
        failures: dict[str, BaseException],
        stats: BlockSynthesisStats,
    ) -> None:
        """Dispatch ``jobs`` over a process pool, honoring the timeout."""
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(jobs)))
        try:
            futures = {
                key: pool.submit(task, block, config, seed)
                for key, (_, block, seed) in jobs.items()
            }
            for key, future in futures.items():
                index = jobs[key][0]
                try:
                    solutions, elapsed = future.result(
                        timeout=self.hard_timeout
                    )
                except FutureTimeoutError as exc:
                    future.cancel()
                    failures[key] = exc
                except Exception as exc:  # worker raised or pool broke
                    failures[key] = exc
                else:
                    resolved[key] = solutions
                    stats.block_seconds[index] = elapsed
        finally:
            # Never block the run on a hung worker; timed-out processes
            # are abandoned rather than awaited.
            pool.shutdown(wait=False, cancel_futures=True)
