"""Parallel fan-out of per-block LEAP synthesis.

:class:`BlockSynthesisExecutor` takes the partition's blocks plus one
pre-drawn seed per block and returns one :class:`BlockPool` per block.
Four properties make it a drop-in replacement for the old sequential
loop in :func:`repro.core.quest.run_quest`:

**Determinism.**  Seeds are drawn by the caller *before* dispatch, in
block order, so neither worker count nor completion order can change
which seed a block synthesizes under.  Blocks whose content key (see
:mod:`repro.parallel.cache`) collides are canonicalized to the seed of
the *first* occurrence; since LEAP is deterministic given (target,
config, seed), repeated blocks dedup to one synthesis job with
byte-identical results, cache or no cache — and, through a shared
:class:`~repro.batch.workqueue.InflightRegistry`, across concurrently
compiling circuits of a batch.

**Caching.**  With a :class:`~repro.parallel.cache.PoolCache`, each
unique entry key synthesizes at most once per run; repeats and disk hits
skip straight to pool assembly.  Only the LEAP solution list is cached —
pool assembly (original-block candidate, distance re-measurement, sphere
variants) is cheap and block-specific, so it always runs in the parent.

**Resilience.**  With a :class:`~repro.resilience.retry.RetryPolicy`, a
block whose synthesis raises, hangs past the hard timeout, or returns
candidates that fail validation is *retried* — first with the same seed
(so transient faults recover bit-identically), then with
deterministically escalated seeds and optionally larger budgets — before
any downgrade.  Candidate sets from workers, the cache, or a checkpoint
are health-checked via :mod:`repro.resilience.validation` and
quarantined on failure; every failure lands in a structured
:class:`~repro.resilience.retry.FailureRecord` log.  With a
:class:`~repro.resilience.journal.RunJournal`, completed pools are
journaled atomically as they finish, and journaled blocks are skipped on
resume.

**Graceful degradation.**  Only when every attempt is exhausted does a
block downgrade to the exact-block singleton pool — the distance-zero
fallback QUEST always keeps — with a :class:`RuntimeWarning`, so one bad
block costs approximation quality, never the run.

Timeouts come in two flavors: worker processes are bounded by the
future's hard result timeout, while the inline (``workers == 1``) path
arms a *cooperative* deadline (:mod:`repro.resilience.deadline`) that
the synthesis loops check between optimizer runs — the only way to bound
work that runs in the parent process itself.

Worker processes live in a :class:`~repro.parallel.pool_manager.
PersistentWorkerPool` that is reused across retry rounds (and, when the
batch driver supplies one, across circuits); a round that observes a
hung or killed worker marks the pool for recycling rather than paying
construction every round.  With ``shm_transport`` the candidate arrays
come home through checksummed shared-memory envelopes
(:mod:`repro.batch.shm`) instead of the result pipe.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

import numpy as np

from repro.core.pool import (
    BlockPool,
    augment_with_sphere_variants,
    build_pool,
    exact_pool,
)
from repro.exceptions import BlockTimeoutError, ValidationError
from repro.observability import (
    ListSink,
    MetricsRegistry,
    Tracer,
    get_metrics,
    get_tracer,
    use_metrics,
    use_tracer,
)
from repro.parallel.cache import PoolCache, content_key, entry_key
from repro.parallel.pool_manager import PersistentWorkerPool
from repro.partition.blocks import CircuitBlock
from repro.resilience.deadline import block_deadline
from repro.resilience.retry import (
    FAILURE_CHECKPOINT,
    FAILURE_EXCEPTION,
    FAILURE_FALLBACK,
    FAILURE_TIMEOUT,
    FAILURE_VALIDATION,
    FailureRecord,
    RetryLog,
    RetryPolicy,
)
from repro.resilience.validation import validate_pool, validate_solutions
from repro.synthesis.leap import LeapConfig, SynthesisSolution, synthesize


def leap_config_for_block(
    original_cnots: int, config, seed: int | None
) -> LeapConfig:
    """The per-block LEAP configuration ``run_quest`` has always used.

    ``config`` is duck-typed (any object with the QuestConfig synthesis
    knobs) so this module never imports :mod:`repro.core.quest`.
    """
    return LeapConfig(
        max_layers=min(config.max_layers_per_block, max(original_cnots - 1, 1)),
        solutions_per_layer=config.solutions_per_layer,
        instantiation_starts=config.instantiation_starts,
        max_optimizer_iterations=config.max_optimizer_iterations,
        seed=seed,
        time_budget=config.block_time_budget,
        # Threshold stopping: secondary optimizer starts halt at the
        # per-block threshold, producing dissimilar on-sphere solutions.
        target_distance=config.threshold_per_block,
    )


class _ScaledBudgetConfig:
    """Duck-typed config view with a replaced ``block_time_budget``.

    Retry attempts may grow the per-block budget; everything else
    delegates to the wrapped config.  Note the budget is part of the
    LEAP fingerprint, so escalated-budget results are never written to
    the content-addressed cache under the base key.
    """

    def __init__(self, base, block_time_budget) -> None:
        self._base = base
        self.block_time_budget = block_time_budget

    def __getattr__(self, name):
        base = self.__dict__.get("_base")
        if base is None:
            raise AttributeError(name)
        return getattr(base, name)


def _synthesize_solutions_task(
    block: CircuitBlock, config, seed: int
) -> tuple[list[SynthesisSolution], float]:
    """The unit of work shipped to a worker: LEAP on one block's unitary.

    Returns the solution list plus the synthesis wall time measured
    inside the worker (queueing and pickling excluded).
    """
    start = time.perf_counter()
    leap_config = leap_config_for_block(
        block.circuit.cnot_count(), config, seed
    )
    report = synthesize(block.unitary(), leap_config)
    return report.solutions, time.perf_counter() - start


def _faulted_task(task, injector, index, attempt, block, config, seed):
    """Worker-side wrapper firing scheduled faults around ``task``."""
    injector.on_synthesis_start(index, attempt)
    solutions, elapsed = task(block, config, seed)
    return injector.corrupt_solutions(index, attempt, solutions), elapsed


def _observed_task(task, injector, index, attempt, block, config, seed):
    """Worker-side wrapper that marshals observability back to the parent.

    A worker process cannot write the parent's trace sink, so it records
    into a local buffer under its own tracer/metrics pair and ships the
    records home with the candidate payload; the parent replays them into
    the real sink (stamped ``origin="worker"``) and folds the metrics
    snapshot into the run registry.  Only reached when the parent tracer
    or metrics is enabled, so untraced runs keep the plain task pickle.
    """
    sink = ListSink()
    tracer = Tracer(sink, origin="worker")
    metrics = MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        with tracer.span(
            "synthesis.block", block=index, attempt=attempt, seed=seed
        ):
            if injector is not None:
                injector.on_synthesis_start(index, attempt)
            solutions, elapsed = task(block, config, seed)
            if injector is not None:
                solutions = injector.corrupt_solutions(
                    index, attempt, solutions
                )
    return solutions, elapsed, sink.records, metrics.snapshot()


def _discard_late_envelope(future) -> None:
    """Done-callback for abandoned (timed-out) shm tasks.

    The driver gave up on this future; if the worker nonetheless
    finishes and hands back an envelope, unlink its segment so abandoned
    results cannot accumulate in ``/dev/shm``.
    """
    try:
        envelope = future.result(timeout=0)
    except Exception:
        return
    from repro.batch.shm import discard_envelope

    discard_envelope(envelope)


def _note_failure(
    log: RetryLog, index: int, attempt: int, kind: str, message: str
) -> None:
    """Record a failure in the structured log and mirror it as telemetry."""
    log.record(index, attempt, kind, message)
    tracer = get_tracer()
    if tracer.is_enabled:
        tracer.event(
            "synthesis.failure", block=index, attempt=attempt, kind=kind
        )
    metrics = get_metrics()
    if metrics.is_enabled:
        metrics.inc("synthesis.failures")
        metrics.inc(f"synthesis.failures.{kind}")


def assemble_pool(
    block: CircuitBlock,
    solutions: list[SynthesisSolution],
    config,
    seed: int,
    solution_unitaries=None,
) -> BlockPool:
    """Build the block's candidate pool from raw LEAP solutions.

    Runs in the parent process: the pool embeds the (position-specific)
    block, so only the solutions themselves are shareable across blocks.
    ``solution_unitaries`` optionally reuses worker-instantiated
    matrices shipped through the shared-memory transport.
    """
    # No single block may eat more than its per-block share of the total
    # threshold — the per-block analogue of Algorithm 1's rejection line.
    pool = build_pool(
        block,
        solutions,
        max_candidates=config.max_candidates_per_block,
        distance_cap=config.threshold_per_block,
        solution_unitaries=solution_unitaries,
    )
    if config.sphere_variants_per_count > 0:
        augment_with_sphere_variants(
            pool,
            threshold=config.threshold_per_block,
            per_count=config.sphere_variants_per_count,
            rng=seed,
        )
    metrics = get_metrics()
    if metrics.is_enabled:
        metrics.observe("synthesis.pool_size", pool.size)
    return pool


def synthesize_block_pool(block: CircuitBlock, config, seed: int) -> BlockPool:
    """Synthesize one block end-to-end, inline (no pool, no cache)."""
    if block.num_qubits == 1 or block.circuit.cnot_count() == 0:
        # Nothing to approximate: the pool is just the block itself.
        return exact_pool(block)
    solutions, _ = _synthesize_solutions_task(block, config, seed)
    return assemble_pool(block, solutions, config, seed)


@dataclass
class BlockSynthesisStats:
    """What the executor did, for the run's telemetry.

    ``cache_hits`` counts blocks served without a synthesis job (within-
    run repeats and disk hits); ``cache_misses`` counts jobs actually
    dispatched.  Trivial (1-qubit / CNOT-free) blocks count as neither,
    and neither do blocks restored from a run journal
    (``checkpoint_hits``).
    """

    cache_hits: int = 0
    cache_misses: int = 0
    #: Indices of blocks downgraded to their exact-block fallback pool.
    fallback_blocks: list[int] = field(default_factory=list)
    #: Per-block synthesis seconds, measured inside the worker; 0.0 for
    #: trivial blocks and cache/repeat/checkpoint hits.
    block_seconds: list[float] = field(default_factory=list)
    #: Blocks whose pool was restored from the run journal.
    checkpoint_hits: int = 0
    #: Synthesis attempts beyond each block's first, across the run.
    retries: int = 0
    #: Duplicate blocks served by attaching to an existing job instead
    #: of dispatching their own: within-run repeats with the cache
    #: disabled, plus in-flight joins against a shared
    #: :class:`~repro.batch.workqueue.InflightRegistry` (batch mode).
    dedup_joins: int = 0
    #: Disk cache entries that existed but failed integrity checks.
    cache_corrupt_entries: int = 0
    #: Journal entries that existed but failed integrity/health checks.
    checkpoint_corrupt_entries: int = 0
    #: Structured log of every failed attempt (see FailureRecord).
    failure_log: list[FailureRecord] = field(default_factory=list)


@dataclass(frozen=True)
class _BlockPlan:
    """Routing decision for one block."""

    trivial: bool
    key: str | None = None  # entry key (None for trivial blocks)
    seed: int = 0  # canonical synthesis seed


class BlockSynthesisExecutor:
    """Fans per-block synthesis out over a process pool, with caching.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) runs every block inline in
        the parent — same results, single process, easiest to debug.
    cache:
        Optional :class:`PoolCache`.  When given, blocks sharing an entry
        key synthesize once per run and may persist across runs.
    hard_timeout:
        Hard per-block wall-clock cap in seconds.  Enforced via the
        future's result timeout when ``workers > 1`` and via the
        cooperative deadline (:mod:`repro.resilience.deadline`) on the
        inline path.  A block that exceeds it is retried (under the
        retry policy) and ultimately falls back to its exact pool.
    synthesize_fn:
        Override of the worker task, for testing/instrumentation.  Must
        be a module-level callable with the signature of
        :func:`_synthesize_solutions_task`.
    retry_policy:
        Optional :class:`RetryPolicy`.  ``None`` (the default) means one
        attempt per block — the executor's historical behaviour.
    journal:
        Optional :class:`~repro.resilience.journal.RunJournal`.  Blocks
        already journaled (and healthy) are restored without synthesis;
        freshly completed pools are journaled as they finish.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` whose
        scheduled faults fire around each synthesis attempt (tests/CI).
    validate:
        Health-check candidate sets from workers, the cache, and the
        journal (on by default; see :mod:`repro.resilience.validation`).
    independent_validation:
        Harden those health checks into independent certification:
        every candidate's unitary is rebuilt through the certifier's
        own contraction path and must agree with the recorded
        artifacts.  Slower, so off by default; ignored when
        ``validate`` is off.
    worker_pool:
        Optional externally owned :class:`PersistentWorkerPool` (the
        batch driver shares one across every circuit of a sweep).
        ``None`` constructs a run-scoped pool on demand and shuts it
        down when the run finishes.
    inflight:
        Optional shared :class:`~repro.batch.workqueue.InflightRegistry`
        for cross-executor dedup: blocks whose entry key another
        executor already has in flight join that job instead of racing
        it to a cache miss.
    shm_transport:
        Ship worker results through checksummed shared-memory envelopes
        (:mod:`repro.batch.shm`) instead of pickling candidate arrays
        through the result pipe.  Ignored on the inline path.
    shm_min_bytes:
        Array-bytes threshold below which the shm transport falls back
        to an inline pickle (default ``DEFAULT_MIN_BYTES``).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: PoolCache | None = None,
        hard_timeout: float | None = None,
        synthesize_fn=None,
        retry_policy: RetryPolicy | None = None,
        journal=None,
        fault_injector=None,
        validate: bool = True,
        independent_validation: bool = False,
        worker_pool: PersistentWorkerPool | None = None,
        inflight=None,
        shm_transport: bool = False,
        shm_min_bytes: int | None = None,
        sleep_fn=None,
        backoff_rng=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache = cache
        self.hard_timeout = hard_timeout
        self._synthesize_fn = synthesize_fn
        self.retry_policy = retry_policy
        self.journal = journal
        self.fault_injector = fault_injector
        self.validate = validate
        self.independent_validation = independent_validation
        #: Externally owned pool (the batch driver shares one across
        #: circuits); None constructs a run-scoped pool on demand.
        self.worker_pool = worker_pool
        #: Shared :class:`~repro.batch.workqueue.InflightRegistry`, or
        #: None for solo runs (no cross-executor dedup).
        self.inflight = inflight
        #: Ship worker results through shared-memory envelopes
        #: (:mod:`repro.batch.shm`); ignored on the inline path.
        self.shm_transport = bool(shm_transport)
        self.shm_min_bytes = shm_min_bytes
        #: Injectable clock sleep for the retry backoff (tests pin the
        #: schedule under a fake clock); the backoff RNG is separate
        #: from every synthesis RNG, so jitter cannot perturb results.
        self._sleep = time.sleep if sleep_fn is None else sleep_fn
        self._backoff_rng = (
            np.random.default_rng() if backoff_rng is None else backoff_rng
        )

    def run(
        self,
        blocks: list[CircuitBlock],
        config,
        seeds: list[int],
    ) -> tuple[list[BlockPool], BlockSynthesisStats]:
        """Synthesize every block; returns (pools, stats) in block order."""
        if len(seeds) != len(blocks):
            raise ValueError(
                f"got {len(seeds)} seeds for {len(blocks)} blocks"
            )
        task = (
            self._synthesize_fn
            if self._synthesize_fn is not None
            else _synthesize_solutions_task
        )
        policy = self.retry_policy or RetryPolicy(max_attempts=1)
        stats = BlockSynthesisStats(block_seconds=[0.0] * len(blocks))
        log = RetryLog()
        tracer = get_tracer()
        metrics = get_metrics()
        base_budget = getattr(config, "block_time_budget", None)
        cache_corrupt_before = (
            self.cache.corrupt_entries if self.cache is not None else 0
        )

        # Phase 1: plan. Canonicalize seeds per content key; restore
        # journaled blocks; decide, per entry key, whether a synthesis
        # job is needed.
        plans: list[_BlockPlan] = []
        canonical_seed: dict[str, int] = {}
        resolved: dict[str, list[SynthesisSolution]] = {}
        resolved_unitaries: dict[str, list] = {}
        resolved_attempt: dict[str, int] = {}
        jobs: dict[str, tuple[int, CircuitBlock, int]] = {}
        pools_by_index: dict[int, BlockPool] = {}
        for index, (block, seed) in enumerate(zip(blocks, seeds)):
            if block.num_qubits == 1 or block.circuit.cnot_count() == 0:
                plans.append(_BlockPlan(trivial=True))
                continue
            fingerprint = leap_config_for_block(
                block.circuit.cnot_count(), config, seed=None
            ).fingerprint()
            content = content_key(block.unitary(), fingerprint)
            seed = canonical_seed.setdefault(content, seed)
            key = entry_key(content, seed)
            plans.append(_BlockPlan(trivial=False, key=key, seed=seed))
            if self.journal is not None:
                pool = self.journal.load_pool(index, key)
                if pool is not None and self.validate:
                    try:
                        validate_pool(
                            pool, independent=self.independent_validation
                        )
                    except ValidationError as exc:
                        _note_failure(
                            log, index, 0, FAILURE_CHECKPOINT, str(exc)
                        )
                        self.journal.discard(index)
                        pool = None
                if pool is not None:
                    pools_by_index[index] = pool
                    stats.checkpoint_hits += 1
                    if tracer.is_enabled:
                        tracer.event("checkpoint.hit", block=index)
                    if metrics.is_enabled:
                        metrics.inc("checkpoint.hit")
                    continue
            if self.cache is not None:
                if key in resolved or key in jobs:
                    stats.cache_hits += 1  # within-run repeat
                    if tracer.is_enabled:
                        tracer.event("cache.hit", block=index, source="run")
                    if metrics.is_enabled:
                        metrics.inc("cache.hit")
                    continue
                cached = self.cache.get(key)
                if cached is not None and self.validate:
                    try:
                        validate_solutions(
                            block.unitary(),
                            cached,
                            independent=self.independent_validation,
                        )
                    except ValidationError as exc:
                        _note_failure(
                            log,
                            index,
                            0,
                            FAILURE_VALIDATION,
                            f"cache entry quarantined: {exc}",
                        )
                        cached = None
                if cached is not None:
                    resolved[key] = cached
                    resolved_attempt[key] = 0
                    stats.cache_hits += 1
                    if tracer.is_enabled:
                        tracer.event("cache.hit", block=index, source="disk")
                    if metrics.is_enabled:
                        metrics.inc("cache.hit")
                    continue
                jobs[key] = (index, block, seed)
            else:
                # Cache disabled: within-run repeats still dedup to one
                # job (the canonical seed makes their results identical
                # anyway); nothing is persisted.
                if key in jobs:
                    stats.dedup_joins += 1
                    if tracer.is_enabled:
                        tracer.event("dedup.hit", block=index, source="run")
                    if metrics.is_enabled:
                        metrics.inc("dedup.hits")
                    continue
                jobs[key] = (index, block, seed)
            stats.cache_misses += 1
            if metrics.is_enabled:
                metrics.inc("cache.miss")

        def finalize(job_key: str) -> None:
            """Assemble + journal every block the resolved job serves.

            Called as each job completes (journal mode only), so a crash
            mid-run loses at most the blocks still in flight.
            """
            for index, plan in enumerate(plans):
                if plan.trivial or index in pools_by_index:
                    continue
                if job_key != plan.key:
                    continue
                pool = assemble_pool(
                    blocks[index], resolved[job_key], config, plan.seed,
                    solution_unitaries=resolved_unitaries.get(job_key),
                )
                pools_by_index[index] = pool
                self.journal.store_pool(index, plan.key, pool)

        # Phase 2: execute the synthesis jobs, retrying under the policy.
        failures: dict[str, BaseException] = {}
        pending = dict(jobs)
        own_pool: PersistentWorkerPool | None = None
        pool_manager = self.worker_pool
        if self.workers > 1 and pool_manager is None and pending:
            # Run-scoped pool: constructed once, reused across retry
            # rounds, recycled only when a round marks it unhealthy
            # (hung or killed worker — see PersistentWorkerPool).
            own_pool = PersistentWorkerPool(self.workers)
            pool_manager = own_pool
        # One opaque token per run() call: the in-flight registry keys
        # claims by it, so a crashed run releases wholesale in `finally`.
        claim_token = object()
        try:
            for attempt in range(policy.max_attempts):
                if not pending:
                    break
                if attempt > 0:
                    stats.retries += len(pending)
                    if metrics.is_enabled:
                        metrics.inc("retry.attempts", len(pending))
                    if tracer.is_enabled:
                        for pending_key in pending:
                            tracer.event(
                                "retry.attempt",
                                block=pending[pending_key][0],
                                attempt=attempt,
                            )
                    # Full-jitter backoff before the round re-dispatches
                    # (one delay per round, not per block: the round's
                    # jobs fan out together anyway).  Affects wall time
                    # only; seeds and budgets are untouched.
                    delay = policy.backoff_seconds(attempt, self._backoff_rng)
                    if delay > 0:
                        if tracer.is_enabled:
                            tracer.event(
                                "retry.backoff",
                                attempt=attempt,
                                seconds=round(delay, 4),
                            )
                        if metrics.is_enabled:
                            metrics.observe("retry.backoff_seconds", delay)
                        self._sleep(delay)

                # Split this round into jobs we own (we dispatch them)
                # and jobs another executor has in flight (we join and
                # adopt their published result).
                owned = dict(pending)
                joined: dict[str, tuple] = {}
                if self.inflight is not None:
                    for key in list(owned):
                        entry = self.inflight.claim(key, claim_token)
                        if entry is not None:
                            joined[key] = (entry, owned.pop(key))

                def on_success(
                    key: str,
                    attempt: int = attempt,
                    owned: dict = owned,
                ) -> None:
                    # Fires as each job lands (not at round end) so a
                    # crash mid-round has already journaled every
                    # finished block.
                    resolved_attempt[key] = attempt
                    if self.inflight is not None and key in owned:
                        # Same rule as the disk cache: only baseline
                        # results are interchangeable with a solo run's,
                        # so only those are shared with joiners.
                        if policy.is_baseline_attempt(
                            owned[key][2], attempt, base_budget
                        ):
                            self.inflight.publish(
                                key,
                                claim_token,
                                resolved[key],
                                resolved_unitaries.get(key),
                            )
                        else:
                            self.inflight.fail(key, claim_token)
                    if self.journal is not None:
                        finalize(key)

                def run_round(round_jobs, on_success=on_success, attempt=attempt):
                    if not round_jobs:
                        return []
                    if self.workers == 1:
                        return self._run_round_inline(
                            task, config, round_jobs, attempt, policy,
                            base_budget, resolved, stats, log, failures,
                            on_success,
                        )
                    return self._run_round_pool(
                        task, config, round_jobs, attempt, policy,
                        base_budget, resolved, resolved_unitaries, stats,
                        log, failures, on_success, pool_manager,
                    )

                succeeded = run_round(owned)
                if joined:
                    adopted, leftover = self._adopt_joined(
                        joined, policy, resolved, resolved_unitaries,
                        resolved_attempt, stats, finalize,
                    )
                    succeeded += adopted
                    # A join that came back empty (owner failed, or its
                    # result was not publishable) falls back to this
                    # executor's own attempt in the *same* round, so
                    # retry/seed semantics match a solo run exactly.
                    succeeded += run_round(leftover)
                for key in succeeded:
                    del pending[key]
        finally:
            if self.inflight is not None:
                self.inflight.release(claim_token)
            if own_pool is not None:
                own_pool.shutdown()
        if self.cache is not None:
            for key, (_, _, seed) in jobs.items():
                # Only baseline-attempt results (attempt 0's seed and
                # budget) are interchangeable with an unfaulted run's,
                # so only those persist under the content-addressed key.
                if key in resolved and policy.is_baseline_attempt(
                    seed, resolved_attempt.get(key, 0), base_budget
                ):
                    self.cache.put(key, resolved[key])

        # Phase 3: assemble pools (parent process, block order).
        pools: list[BlockPool] = []
        for index, (block, plan) in enumerate(zip(blocks, plans)):
            if plan.trivial:
                pools.append(exact_pool(block))
                continue
            if index in pools_by_index:
                pools.append(pools_by_index[index])
                continue
            solutions = resolved.get(plan.key)
            if solutions is None:
                cause = failures.get(plan.key)
                reason = (
                    f"{type(cause).__name__ if cause else 'worker failure'}: "
                    f"{cause}"
                )
                warnings.warn(
                    f"block {index}: synthesis unavailable ({reason}); "
                    "falling back to the exact block",
                    RuntimeWarning,
                    stacklevel=2,
                )
                # The degradation itself is a structured outcome, not
                # just a warning: downstream consumers (CLI, artifacts,
                # trace) must be able to see *which* blocks shipped the
                # exact fallback and why.
                log.record(
                    index,
                    policy.max_attempts,
                    FAILURE_FALLBACK,
                    f"degraded to exact block after {policy.max_attempts} "
                    f"attempt(s): {reason}",
                )
                if tracer.is_enabled:
                    tracer.event(
                        "executor.fallback",
                        block=index,
                        attempts=policy.max_attempts,
                    )
                if metrics.is_enabled:
                    metrics.inc("synthesis.fallbacks")
                stats.fallback_blocks.append(index)
                pools.append(exact_pool(block))
                continue
            pool = assemble_pool(
                block, solutions, config, plan.seed,
                solution_unitaries=resolved_unitaries.get(plan.key),
            )
            if self.journal is not None:
                self.journal.store_pool(index, plan.key, pool)
            pools.append(pool)

        stats.failure_log = log.records
        if self.cache is not None:
            stats.cache_corrupt_entries = (
                self.cache.corrupt_entries - cache_corrupt_before
            )
        if self.journal is not None:
            stats.checkpoint_corrupt_entries = self.journal.corrupt_entries
        return pools, stats

    # ------------------------------------------------------------------
    # Attempt rounds
    # ------------------------------------------------------------------
    def _attempt_config(self, config, policy: RetryPolicy, base_budget, attempt):
        budget = policy.attempt_budget(base_budget, attempt)
        if budget == base_budget:
            return config
        return _ScaledBudgetConfig(config, budget)

    def _run_round_inline(
        self,
        task,
        config,
        round_jobs: dict[str, tuple[int, CircuitBlock, int]],
        attempt: int,
        policy: RetryPolicy,
        base_budget,
        resolved,
        stats: BlockSynthesisStats,
        log: RetryLog,
        failures: dict[str, BaseException],
        on_success,
    ) -> list[str]:
        """Run one attempt round inline; returns the keys that succeeded."""
        attempt_config = self._attempt_config(config, policy, base_budget, attempt)
        timeout = policy.attempt_budget(self.hard_timeout, attempt)
        tracer = get_tracer()
        succeeded: list[str] = []
        for key, (index, block, seed) in round_jobs.items():
            attempt_seed = policy.attempt_seed(seed, attempt)
            try:
                # The span wraps synthesis *and* validation, so a block
                # that fails either way closes with status="error"; the
                # except clauses below still see the original exception.
                with tracer.span(
                    "synthesis.block",
                    block=index,
                    attempt=attempt,
                    seed=attempt_seed,
                ):
                    with block_deadline(timeout):
                        if self.fault_injector is not None:
                            self.fault_injector.on_synthesis_start(
                                index, attempt
                            )
                        solutions, elapsed = task(
                            block, attempt_config, attempt_seed
                        )
                    if self.fault_injector is not None:
                        solutions = self.fault_injector.corrupt_solutions(
                            index, attempt, solutions
                        )
                    if self.validate:
                        validate_solutions(
                            block.unitary(),
                            solutions,
                            independent=self.independent_validation,
                        )
            except BlockTimeoutError as exc:
                _note_failure(log, index, attempt, FAILURE_TIMEOUT, str(exc))
                failures[key] = exc
            except ValidationError as exc:
                _note_failure(log, index, attempt, FAILURE_VALIDATION, str(exc))
                failures[key] = exc
            except Exception as exc:
                _note_failure(
                    log, index, attempt, FAILURE_EXCEPTION,
                    f"{type(exc).__name__}: {exc}",
                )
                failures[key] = exc
            else:
                resolved[key] = solutions
                stats.block_seconds[index] = elapsed
                succeeded.append(key)
                on_success(key)
        return succeeded

    def _run_round_pool(
        self,
        task,
        config,
        round_jobs: dict[str, tuple[int, CircuitBlock, int]],
        attempt: int,
        policy: RetryPolicy,
        base_budget,
        resolved,
        resolved_unitaries,
        stats: BlockSynthesisStats,
        log: RetryLog,
        failures: dict[str, BaseException],
        on_success,
        pool_manager: PersistentWorkerPool,
    ) -> list[str]:
        """Run one attempt round over the persistent process pool.

        The pool outlives the round.  A round that observes a hard
        timeout (the hung worker still occupies its process) or a broken
        pool (killed worker) marks it unhealthy so the *next* submission
        gets a fresh pool; healthy pools — including ones whose workers
        merely raised — are reused across rounds and, in batch mode,
        across circuits.
        """
        attempt_config = self._attempt_config(config, policy, base_budget, attempt)
        timeout = policy.attempt_budget(self.hard_timeout, attempt)
        tracer = get_tracer()
        metrics = get_metrics()
        # When observability is on, ship the worker-instrumented wrapper
        # instead of the bare task; disabled runs keep the smaller pickle
        # and pay nothing.
        observed = tracer.is_enabled or metrics.is_enabled
        shm = self.shm_transport
        if shm:
            from repro.batch.shm import (
                DEFAULT_MIN_BYTES,
                decode_payload,
                shm_synthesis_task,
            )

            min_bytes = (
                DEFAULT_MIN_BYTES
                if self.shm_min_bytes is None
                else self.shm_min_bytes
            )
        succeeded: list[str] = []
        pool_manager.begin_round()
        futures = {}
        for key, (index, block, seed) in round_jobs.items():
            attempt_seed = policy.attempt_seed(seed, attempt)
            if observed:
                call = (
                    _observed_task, task, self.fault_injector,
                    index, attempt, block, attempt_config, attempt_seed,
                )
            elif self.fault_injector is not None:
                call = (
                    _faulted_task, task, self.fault_injector,
                    index, attempt, block, attempt_config, attempt_seed,
                )
            else:
                call = (task, block, attempt_config, attempt_seed)
            if shm:
                futures[key] = pool_manager.submit(
                    shm_synthesis_task, call[0], min_bytes, *call[1:]
                )
            else:
                futures[key] = pool_manager.submit(*call)
        for key, future in futures.items():
            index = round_jobs[key][0]
            unitaries = None
            try:
                payload = future.result(timeout=timeout)
                if shm:
                    payload, unitaries = decode_payload(payload)
                if observed:
                    solutions, elapsed, records, snapshot = payload
                    # Replay before validation: worker-side events
                    # must land in the trace even when the returned
                    # candidates are quarantined below.
                    tracer.replay(records)
                    metrics.merge(snapshot)
                else:
                    solutions, elapsed = payload
                if self.validate:
                    validate_solutions(
                        round_jobs[key][1].unitary(),
                        solutions,
                        independent=self.independent_validation,
                    )
            except FutureTimeoutError as exc:
                future.cancel()
                # The hung worker still occupies its process; flag the
                # pool so the next submission recycles it.
                pool_manager.mark_unhealthy()
                if shm:
                    # Should the abandoned task ever finish, unlink its
                    # segment instead of leaking it in /dev/shm.
                    future.add_done_callback(_discard_late_envelope)
                _note_failure(
                    log, index, attempt, FAILURE_TIMEOUT,
                    f"hard timeout after {timeout}s",
                )
                failures[key] = exc
            except BrokenExecutor as exc:  # worker process died
                pool_manager.mark_unhealthy()
                _note_failure(
                    log, index, attempt, FAILURE_EXCEPTION,
                    f"{type(exc).__name__}: {exc}",
                )
                failures[key] = exc
            except ValidationError as exc:
                _note_failure(
                    log, index, attempt, FAILURE_VALIDATION, str(exc)
                )
                failures[key] = exc
            except Exception as exc:  # worker raised
                _note_failure(
                    log, index, attempt, FAILURE_EXCEPTION,
                    f"{type(exc).__name__}: {exc}",
                )
                failures[key] = exc
            else:
                resolved[key] = solutions
                if unitaries is not None:
                    resolved_unitaries[key] = unitaries
                stats.block_seconds[index] = elapsed
                succeeded.append(key)
                on_success(key)
        return succeeded

    def _adopt_joined(
        self,
        joined: dict[str, tuple],
        policy: RetryPolicy,
        resolved,
        resolved_unitaries,
        resolved_attempt,
        stats: BlockSynthesisStats,
        finalize,
    ) -> tuple[list[str], dict[str, tuple[int, CircuitBlock, int]]]:
        """Adopt results published by other executors' in-flight jobs.

        Returns ``(adopted_keys, leftover_jobs)``.  Leftover jobs are
        joins whose owner failed (or published nothing usable); the
        caller re-dispatches them as this executor's own attempt in the
        same round.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        if self.hard_timeout is None:
            timeout = None
        else:
            # Generous: the owner may burn through its whole retry
            # budget before the claim resolves either way.  The owner's
            # `finally` release guarantees the event fires eventually.
            timeout = self.hard_timeout * max(policy.max_attempts, 1) + 60.0
        adopted: list[str] = []
        leftover: dict[str, tuple[int, CircuitBlock, int]] = {}
        for key, (entry, job) in joined.items():
            if self.inflight.wait_for(entry, timeout):
                resolved[key] = entry.solutions
                if entry.unitaries is not None:
                    resolved_unitaries[key] = entry.unitaries
                # Published results are baseline by construction, so
                # they stay cache-writable under the plain entry key.
                resolved_attempt[key] = 0
                stats.dedup_joins += 1
                if tracer.is_enabled:
                    tracer.event("dedup.adopt", block=job[0])
                if metrics.is_enabled:
                    metrics.inc("dedup.hits")
                adopted.append(key)
                if self.journal is not None:
                    finalize(key)
            else:
                leftover[key] = job
        return adopted, leftover
