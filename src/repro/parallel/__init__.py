"""Parallel block synthesis and the content-addressed pool cache.

Per-block LEAP synthesis dominates QUEST's wall time (paper Fig. 12) and
the blocks are independent by construction, so this package fans the
per-block work out over a process pool and reuses results across the
many identical blocks that Trotterized circuits produce:

* :mod:`repro.parallel.cache` — a content-addressed store keyed by a
  canonical (global-phase-invariant) hash of the block unitary plus the
  :class:`~repro.synthesis.leap.LeapConfig` fingerprint and seed, with an
  optional checksummed on-disk tier that persists across runs.
* :mod:`repro.parallel.executor` — :class:`BlockSynthesisExecutor`, which
  dispatches blocks to workers (``workers=1`` runs inline), preserves the
  deterministic per-block seed stream so parallel and serial runs select
  byte-identical candidates, and degrades a failed or timed-out block to
  its exact-block singleton pool instead of killing the run.
"""

from repro.parallel.cache import (
    PoolCache,
    canonical_unitary_bytes,
    content_key,
    entry_key,
)
from repro.parallel.executor import (
    BlockSynthesisExecutor,
    BlockSynthesisStats,
    assemble_pool,
    leap_config_for_block,
    synthesize_block_pool,
)

__all__ = [
    "PoolCache",
    "canonical_unitary_bytes",
    "content_key",
    "entry_key",
    "BlockSynthesisExecutor",
    "BlockSynthesisStats",
    "assemble_pool",
    "leap_config_for_block",
    "synthesize_block_pool",
]
