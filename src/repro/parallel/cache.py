"""Content-addressed cache for per-block synthesis results.

Trotterized circuits (TFIM, Heisenberg, XY) partition into many blocks
whose unitaries are *identical*, so LEAP would otherwise re-derive the
same approximation pool over and over.  The cache stores the list of
:class:`~repro.synthesis.leap.SynthesisSolution` objects a block's
synthesis produced, addressed by content:

* ``content_key(unitary, fingerprint)`` — a SHA-256 of the block unitary
  canonicalized up to global phase, mixed with the
  :meth:`LeapConfig.fingerprint` of every behaviour-affecting synthesis
  knob *except* the seed.  Blocks that are equal up to a global phase map
  to the same content key; any change to threshold, layer budget,
  optimizer iterations, etc. maps to a different one.
* ``entry_key(content, seed)`` — the content key mixed with the seed the
  synthesis actually ran under.  Solutions depend on the seed, so the
  stored entry must too; the executor canonicalizes seeds per content key
  (first occurrence wins) so that repeats within a run share an entry.

Entries live in memory for the duration of a run and, when ``cache_dir``
is given, in one file per entry on disk.  Disk entries are a pickled
envelope carrying a format version, the key, and a SHA-256 checksum of
the payload; anything that fails to load, fails the checksum, or carries
the wrong version/key is treated as a miss and recomputed — a corrupt or
partially-written file can cost time, never correctness.

The disk tier can be size-bounded (``max_entries``): after every store
the oldest entries by mtime are evicted until the bound holds, and hits
refresh their entry's mtime, making the policy LRU.  Eviction can only
ever cost a future recomputation, so a concurrent writer racing an
eviction is benign.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path

import numpy as np

from repro.observability import get_metrics, get_tracer
from repro.synthesis.leap import SynthesisSolution

#: Bump when the entry payload layout changes; old files become misses.
CACHE_VERSION = 1

#: Decimal places kept when canonicalizing a unitary for hashing.  Two
#: unitaries closer than ~1e-8 element-wise hash identically, which is far
#: below any distance the pipeline distinguishes.
_CANONICAL_DECIMALS = 8


def canonical_unitary_bytes(
    unitary: np.ndarray, decimals: int = _CANONICAL_DECIMALS
) -> bytes:
    """Serialize ``unitary`` invariantly under global phase.

    The matrix is divided by the phase of its largest-magnitude entry
    (making that entry real-positive), rounded, and serialized together
    with its shape.  ``U`` and ``e^{i theta} U`` therefore produce the
    same bytes.
    """
    matrix = np.ascontiguousarray(unitary, dtype=complex)
    flat_index = int(np.argmax(np.abs(matrix)))
    pivot = matrix.flat[flat_index]
    magnitude = abs(pivot)
    if magnitude > 0.0:
        matrix = matrix / (pivot / magnitude)
    rounded = np.round(matrix, decimals)
    # Normalize -0.0 so that values straddling zero hash consistently.
    rounded = rounded + 0.0
    return repr(rounded.shape).encode() + rounded.tobytes()


def content_key(unitary: np.ndarray, fingerprint: str) -> str:
    """Key identifying *what* is synthesized: target + seedless config."""
    digest = hashlib.sha256()
    digest.update(canonical_unitary_bytes(unitary))
    digest.update(b"\x00")
    digest.update(fingerprint.encode())
    return digest.hexdigest()


def entry_key(content: str, seed: int) -> str:
    """Key identifying a concrete result: content key + synthesis seed."""
    digest = hashlib.sha256()
    digest.update(content.encode())
    digest.update(b"\x00seed=")
    digest.update(str(int(seed)).encode())
    return digest.hexdigest()


class PoolCache:
    """Two-tier (memory + optional disk) store of synthesis solutions.

    ``hits``/``misses`` count :meth:`get` probes for the lifetime of the
    instance; :func:`repro.core.quest.run_quest` creates one instance per
    run, so the counters it reports are per-run.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        fault_injector=None,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._memory: dict[str, list[SynthesisSolution]] = {}
        self._dir: Path | None = None
        if cache_dir is not None:
            self._dir = Path(cache_dir)
            self._dir.mkdir(parents=True, exist_ok=True)
        #: Disk-tier entry bound (None = unbounded); LRU by mtime.
        self.max_entries = max_entries
        # Several executors may share one cache in batch mode; the lock
        # covers the memory dict and the evict scan.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Disk entries evicted to honour ``max_entries``.
        self.evictions = 0
        #: Disk entries that existed but failed an integrity check
        #: (checksum, key, payload type, or unpicklable bytes).  Stale
        #: format versions and missing files are plain misses, not
        #: corruption.
        self.corrupt_entries = 0
        #: Optional :class:`repro.resilience.faults.FaultInjector` whose
        #: ``flip-cache`` faults corrupt entries after publish (tests/CI).
        self.fault_injector = fault_injector

    @property
    def cache_dir(self) -> Path | None:
        """The on-disk tier's directory (None = memory only)."""
        return self._dir

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str) -> list[SynthesisSolution] | None:
        """Return the stored solutions for ``key``, or None on a miss."""
        with self._lock:
            solutions = self._memory.get(key)
        if solutions is None and self._dir is not None:
            solutions = self._load_disk(key)
            if solutions is not None:
                with self._lock:
                    self._memory[key] = solutions
        if solutions is None:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        if self._dir is not None:
            # LRU refresh: a hit keeps the backing disk entry young so
            # eviction targets genuinely cold keys.
            try:
                os.utime(self._path(key))
            except OSError:
                pass
        return solutions

    def put(self, key: str, solutions: list[SynthesisSolution]) -> None:
        """Store ``solutions`` under ``key`` (memory, and disk if enabled)."""
        with self._lock:
            self._memory[key] = list(solutions)
        if self._dir is not None:
            self._store_disk(key, solutions)
            if self.max_entries is not None:
                self._evict_lru()

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.qpool"

    def _store_disk(self, key: str, solutions: list[SynthesisSolution]) -> None:
        payload = pickle.dumps(list(solutions), protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "version": CACHE_VERSION,
            "key": key,
            "checksum": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        path = self._path(key)
        # Atomic publish: a reader never observes a half-written entry
        # under its final name.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_bytes(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, path)
        except OSError:
            # Disk tier is best-effort; the in-memory entry still serves
            # this run.
            tmp.unlink(missing_ok=True)
            return
        if self.fault_injector is not None:
            self.fault_injector.on_cache_write(path)

    def _evict_lru(self) -> None:
        """Drop oldest-by-mtime disk entries until ``max_entries`` holds.

        Only the disk tier is bounded — the memory tier is per-run and
        already deduplicated.  Losing a race with a concurrent writer
        (an entry vanishing mid-scan) is benign: eviction can only cost
        a future recomputation, never correctness.
        """
        assert self._dir is not None and self.max_entries is not None
        with self._lock:
            entries: list[tuple[float, Path]] = []
            for path in self._dir.glob("*.qpool"):
                try:
                    entries.append((path.stat().st_mtime, path))
                except OSError:
                    continue  # Evicted or replaced under us: skip.
            excess = len(entries) - self.max_entries
            if excess <= 0:
                return
            entries.sort(key=lambda item: (item[0], item[1].name))
            evicted = 0
            for _, path in entries[:excess]:
                try:
                    path.unlink()
                except OSError:
                    continue
                evicted += 1
            self.evictions += evicted
        if evicted:
            tracer = get_tracer()
            if tracer.is_enabled:
                tracer.event("cache.evict", count=evicted)
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc("cache.evictions", evicted)

    def _load_disk(self, key: str) -> list[SynthesisSolution] | None:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None  # Missing (or unreadable) file: a plain miss.
        try:
            envelope = pickle.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not a dict")
            if envelope.get("version") != CACHE_VERSION:
                # Stale format from an older build: a miss, not corruption.
                return None
            if envelope.get("key") != key:
                raise ValueError("entry key mismatch")
            payload = envelope["payload"]
            if hashlib.sha256(payload).hexdigest() != envelope["checksum"]:
                raise ValueError("payload checksum mismatch")
            solutions = pickle.loads(payload)
            if not isinstance(solutions, list) or not all(
                isinstance(s, SynthesisSolution) for s in solutions
            ):
                raise ValueError("payload is not a SynthesisSolution list")
        except (
            # Everything a truncated, garbled, or bit-flipped pickle can
            # raise while loading — deliberately *not* a bare Exception,
            # so programming errors (and MemoryError etc.) still surface.
            pickle.UnpicklingError,
            EOFError,
            ValueError,
            TypeError,
            KeyError,
            AttributeError,
            ImportError,
            IndexError,
        ):
            # Corrupt entry: count it and recompute.  The next put()
            # overwrites the bad file.
            self.corrupt_entries += 1
            tracer = get_tracer()
            if tracer.is_enabled:
                tracer.event("cache.corrupt_entry", key=key)
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc("cache.corrupt_entries")
            return None
        return solutions
