"""Content-addressed cache for per-block synthesis results.

Trotterized circuits (TFIM, Heisenberg, XY) partition into many blocks
whose unitaries are *identical*, so LEAP would otherwise re-derive the
same approximation pool over and over.  The cache stores the list of
:class:`~repro.synthesis.leap.SynthesisSolution` objects a block's
synthesis produced, addressed by content:

* ``content_key(unitary, fingerprint)`` — a SHA-256 of the block unitary
  canonicalized up to global phase, mixed with the
  :meth:`LeapConfig.fingerprint` of every behaviour-affecting synthesis
  knob *except* the seed.  Blocks that are equal up to a global phase map
  to the same content key; any change to threshold, layer budget,
  optimizer iterations, etc. maps to a different one.
* ``entry_key(content, seed)`` — the content key mixed with the seed the
  synthesis actually ran under.  Solutions depend on the seed, so the
  stored entry must too; the executor canonicalizes seeds per content key
  (first occurrence wins) so that repeats within a run share an entry.

Entries live in memory for the duration of a run and, when a store (or
``cache_dir``) is given, in the sharded multi-tenant
:class:`~repro.store.ArtifactStore` — one file per entry under
``<root>/<namespace>/<shard>/<key>.qpool``.  Disk entries are a pickled
envelope carrying a format version, the key, and a SHA-256 checksum of
the payload; anything that fails to load, fails the checksum, or carries
the wrong version/key is treated as a miss and recomputed — a corrupt or
partially-written file can cost time, never correctness.  The store
owns all cross-process concerns (atomic publish with writer-unique temp
files, crash-orphan sweeps, per-namespace LRU quotas with an mtime
grace window), so N daemon replicas can share one store root and dedupe
synthesis across replicas.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path

import numpy as np

from repro.observability import get_metrics, get_tracer
from repro.store import DEFAULT_NAMESPACE, ArtifactStore
from repro.synthesis.leap import SynthesisSolution

#: Bump when the entry payload layout changes; old files become misses.
CACHE_VERSION = 1

#: Decimal places kept when canonicalizing a unitary for hashing.  Two
#: unitaries closer than ~1e-8 element-wise hash identically, which is far
#: below any distance the pipeline distinguishes.
_CANONICAL_DECIMALS = 8


def canonical_unitary_bytes(
    unitary: np.ndarray, decimals: int = _CANONICAL_DECIMALS
) -> bytes:
    """Serialize ``unitary`` invariantly under global phase.

    The matrix is divided by the phase of its largest-magnitude entry
    (making that entry real-positive), rounded, and serialized together
    with its shape.  ``U`` and ``e^{i theta} U`` therefore produce the
    same bytes.
    """
    matrix = np.ascontiguousarray(unitary, dtype=complex)
    flat_index = int(np.argmax(np.abs(matrix)))
    pivot = matrix.flat[flat_index]
    magnitude = abs(pivot)
    if magnitude > 0.0:
        matrix = matrix / (pivot / magnitude)
    rounded = np.round(matrix, decimals)
    # Normalize -0.0 so that values straddling zero hash consistently.
    rounded = rounded + 0.0
    return repr(rounded.shape).encode() + rounded.tobytes()


def content_key(unitary: np.ndarray, fingerprint: str) -> str:
    """Key identifying *what* is synthesized: target + seedless config."""
    digest = hashlib.sha256()
    digest.update(canonical_unitary_bytes(unitary))
    digest.update(b"\x00")
    digest.update(fingerprint.encode())
    return digest.hexdigest()


def entry_key(content: str, seed: int) -> str:
    """Key identifying a concrete result: content key + synthesis seed."""
    digest = hashlib.sha256()
    digest.update(content.encode())
    digest.update(b"\x00seed=")
    digest.update(str(int(seed)).encode())
    return digest.hexdigest()


class PoolCache:
    """Two-tier (memory + optional sharded store) cache of solutions.

    ``hits``/``misses`` count :meth:`get` probes for the lifetime of the
    instance; :func:`repro.core.quest.run_quest` creates one instance per
    run, so the counters it reports are per-run.  The disk tier's own
    counters (raw loads, publishes, evictions) live on :attr:`store`.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        fault_injector=None,
        max_entries: int | None = None,
        *,
        namespace: str = DEFAULT_NAMESPACE,
        store: ArtifactStore | None = None,
        grace_seconds: float | None = None,
    ) -> None:
        if store is not None and cache_dir is not None:
            raise ValueError("pass either cache_dir or store, not both")
        if store is None and max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._memory: dict[str, list[SynthesisSolution]] = {}
        #: The sharded disk tier (None = memory only).  Either adopted
        #: from the caller (service replicas share per-tenant stores) or
        #: built over ``cache_dir``.
        self.store = store
        if store is None and cache_dir is not None:
            kwargs = {}
            if grace_seconds is not None:
                kwargs["grace_seconds"] = grace_seconds
            self.store = ArtifactStore(
                cache_dir,
                namespace=namespace,
                max_entries=max_entries,
                **kwargs,
            )
        # Several executors may share one cache in batch/service mode;
        # the lock covers the memory dict and every counter.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Disk entries that existed but failed an integrity check
        #: (checksum, key, payload type, or unpicklable bytes).  Stale
        #: format versions and missing files are plain misses, not
        #: corruption.
        self.corrupt_entries = 0
        #: Optional :class:`repro.resilience.faults.FaultInjector` whose
        #: ``flip-cache`` faults corrupt entries after publish (tests/CI).
        self.fault_injector = fault_injector

    @property
    def cache_dir(self) -> Path | None:
        """The on-disk tier's root directory (None = memory only)."""
        return None if self.store is None else self.store.root

    @property
    def namespace(self) -> str:
        """The tenant namespace of the disk tier (default namespace
        when the cache is memory only)."""
        return DEFAULT_NAMESPACE if self.store is None else self.store.namespace

    @property
    def max_entries(self) -> int | None:
        """Disk-tier entry quota (None = unbounded or memory only)."""
        return None if self.store is None else self.store.max_entries

    @property
    def evictions(self) -> int:
        """Disk entries evicted to honour the store quota."""
        return 0 if self.store is None else self.store.evictions

    def __len__(self) -> int:
        return len(self._memory)

    def get(self, key: str) -> list[SynthesisSolution] | None:
        """Return the stored solutions for ``key``, or None on a miss."""
        with self._lock:
            solutions = self._memory.get(key)
        if solutions is None and self.store is not None:
            solutions = self._load_disk(key)
            if solutions is not None:
                with self._lock:
                    self._memory[key] = solutions
        if solutions is None:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        if self.store is not None:
            # LRU refresh: a hit keeps the backing disk entry young so
            # eviction targets genuinely cold keys.
            self.store.touch(key)
        return solutions

    def put(self, key: str, solutions: list[SynthesisSolution]) -> None:
        """Store ``solutions`` under ``key`` (memory, and disk if enabled)."""
        with self._lock:
            self._memory[key] = list(solutions)
        if self.store is not None:
            self._store_disk(key, solutions)

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _store_disk(self, key: str, solutions: list[SynthesisSolution]) -> None:
        payload = pickle.dumps(list(solutions), protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "version": CACHE_VERSION,
            "key": key,
            "checksum": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        # The store owns atomicity (writer-unique temp file + rename)
        # and quota eviction; False means the disk tier is best-effort
        # unavailable and the in-memory entry still serves this run.
        if not self.store.publish(key, blob):
            return
        if self.fault_injector is not None:
            self.fault_injector.on_cache_write(self.store.path_for(key))

    def _load_disk(self, key: str) -> list[SynthesisSolution] | None:
        raw = self.store.load(key)
        if raw is None:
            return None  # Missing (or unreadable) file: a plain miss.
        try:
            envelope = pickle.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not a dict")
            if envelope.get("version") != CACHE_VERSION:
                # Stale format from an older build: a miss, not corruption.
                return None
            if envelope.get("key") != key:
                raise ValueError("entry key mismatch")
            payload = envelope["payload"]
            if hashlib.sha256(payload).hexdigest() != envelope["checksum"]:
                raise ValueError("payload checksum mismatch")
            solutions = pickle.loads(payload)
            if not isinstance(solutions, list) or not all(
                isinstance(s, SynthesisSolution) for s in solutions
            ):
                raise ValueError("payload is not a SynthesisSolution list")
        except (
            # Everything a truncated, garbled, or bit-flipped pickle can
            # raise while loading — deliberately *not* a bare Exception,
            # so programming errors (and MemoryError etc.) still surface.
            pickle.UnpicklingError,
            EOFError,
            ValueError,
            TypeError,
            KeyError,
            AttributeError,
            ImportError,
            IndexError,
        ):
            # Corrupt entry: count it (under the lock — batch/service
            # substrates probe one cache from many threads) and
            # recompute.  The next put() overwrites the bad file.
            with self._lock:
                self.corrupt_entries += 1
            tracer = get_tracer()
            if tracer.is_enabled:
                tracer.event("cache.corrupt_entry", key=key)
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc("cache.corrupt_entries")
            return None
        return solutions
