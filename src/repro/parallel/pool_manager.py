"""Persistent, recyclable process pool for block synthesis.

Historically :class:`~repro.parallel.executor.BlockSynthesisExecutor`
constructed a fresh :class:`~concurrent.futures.ProcessPoolExecutor` for
every synthesis round — a retry round, or each circuit in a sweep, paid
worker startup (fork + interpreter warm-up) all over again.
:class:`PersistentWorkerPool` keeps one pool alive across rounds *and*
across circuits (the batch driver shares a single instance over a whole
sweep) and recycles it only when it is actually unhealthy:

* a **hung worker** (a future that blew past its hard timeout) still
  occupies its process, so reusing the pool would starve later rounds —
  the round that observed the timeout calls :meth:`mark_unhealthy` and
  the *next* round gets a fresh pool;
* a **killed worker** (the fault injector's ``kill`` spec, an OOM kill)
  breaks the pool outright (``BrokenProcessPool``) — same treatment.

Healthy pools — including ones whose workers merely *raised* — are
reused as-is; a Python-level exception leaves the worker process intact.

Recycling uses ``shutdown(wait=False)`` without cancelling futures, so
in-flight work submitted by *other* threads (concurrent circuits in a
batch) drains in the old pool while new submissions land in the fresh
one.  A truly hung worker's process is abandoned, never awaited — the
same policy the per-round pools always had.

Thread safety: all state transitions take a lock, so the batch driver's
circuit threads can share one instance.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor

from repro.observability import get_metrics


def _warm_worker() -> None:  # pragma: no cover - runs in worker processes
    """Pay the heavy imports once per worker, not once per task."""
    import repro.synthesis.instantiate  # noqa: F401
    import repro.synthesis.leap  # noqa: F401


class PersistentWorkerPool:
    """One process pool, reused across synthesis rounds and circuits.

    Parameters
    ----------
    workers:
        Worker-process count (must be >= 2; a single-worker pipeline
        runs inline and never constructs a pool).
    """

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError(
                f"PersistentWorkerPool needs workers >= 2, got {workers}"
            )
        self.workers = int(workers)
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._unhealthy = False
        self._closed = False
        #: Pools constructed over the lifetime of this manager.
        self.pools_created = 0
        #: Pools torn down because a round marked them unhealthy.
        self.recycles = 0
        #: Synthesis rounds served (a round = one ``begin_round`` call).
        self.rounds_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Return a healthy pool, constructing/recycling as needed."""
        if self._closed:
            raise RuntimeError("PersistentWorkerPool is shut down")
        if self._pool is not None and self._unhealthy:
            # Old pool may hold a hung worker: abandon it without
            # waiting.  Futures already submitted (possibly by another
            # thread) keep draining in the old pool's processes.
            self._pool.shutdown(wait=False)
            self._pool = None
            self.recycles += 1
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc("pool.recycles")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_warm_worker
            )
            self._unhealthy = False
            self.pools_created += 1
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc("pool.created")
        return self._pool

    def begin_round(self) -> None:
        """Mark the start of a synthesis round (accounting only)."""
        with self._lock:
            self.rounds_served += 1
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc("pool.rounds")
                metrics.gauge("pool.reuses", self.reuses)

    def submit(self, fn, /, *args) -> Future:
        """Submit work to the (possibly freshly recycled) pool."""
        with self._lock:
            return self._ensure_pool().submit(fn, *args)

    def mark_unhealthy(self) -> None:
        """Flag the current pool for recycling before its next use.

        Called by a round that saw a hard timeout or a broken pool; the
        flag is sticky until the next submission constructs a fresh
        pool.
        """
        with self._lock:
            self._unhealthy = True

    def shutdown(self) -> None:
        """Tear the pool down; futures in flight are not awaited."""
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def reuses(self) -> int:
        """Rounds served without paying pool construction."""
        return max(self.rounds_served - self.pools_created, 0)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
