"""The Table-1 benchmark algorithm suite."""

from repro.algorithms.arith import (
    adder,
    adder_layout,
    apply_cuccaro_adder,
    multiplier,
    multiplier_layout,
)
from repro.algorithms.hamiltonian import (
    SpinModelParams,
    heisenberg,
    spin_evolution,
    tfim,
    xy_model,
)
from repro.algorithms.hlf import hlf, random_hlf
from repro.algorithms.observables import (
    average_magnetization,
    staggered_magnetization,
)
from repro.algorithms.qft import inverse_qft, qft
from repro.algorithms.variational import qaoa_maxcut, random_qaoa, vqe_ansatz

__all__ = [
    "adder",
    "adder_layout",
    "apply_cuccaro_adder",
    "multiplier",
    "multiplier_layout",
    "qft",
    "inverse_qft",
    "hlf",
    "random_hlf",
    "qaoa_maxcut",
    "random_qaoa",
    "vqe_ansatz",
    "tfim",
    "heisenberg",
    "xy_model",
    "spin_evolution",
    "SpinModelParams",
    "average_magnetization",
    "staggered_magnetization",
]


def benchmark_suite(rng=None):
    """The default small-scale instances of every Table-1 algorithm.

    Returns ``{label: circuit}`` with the qubit count embedded in the
    label, mirroring the paper's "Algorithm N" naming in Fig. 8.
    """
    import numpy as np

    rng = np.random.default_rng(rng)
    circuits = {
        "adder_4": adder(1),
        "heisenberg_4": heisenberg(4, steps=2),
        "hlf_4": random_hlf(4, rng=rng),
        "qft_4": qft(4),
        "qaoa_4": random_qaoa(4, rounds=1, rng=rng),
        "multiplier_6": multiplier(1),
        "tfim_4": tfim(4, steps=2),
        "vqe_4": vqe_ansatz(4, layers=2, rng=rng),
        "xy_4": xy_model(4, steps=2),
    }
    return circuits
