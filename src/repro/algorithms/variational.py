"""Variational circuits: QAOA (MaxCut) and a hardware-efficient VQE ansatz."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def qaoa_maxcut(
    graph: nx.Graph,
    gammas: list[float],
    betas: list[float],
) -> Circuit:
    """QAOA for MaxCut on ``graph`` with per-round angles.

    One round applies ``RZZ(2*gamma)`` on every edge (the cost layer) and
    ``RX(2*beta)`` on every node (the mixer layer), after an initial
    uniform superposition.
    """
    if len(gammas) != len(betas) or not gammas:
        raise CircuitError("QAOA needs equal, non-zero numbers of angles")
    nodes = sorted(graph.nodes)
    if nodes != list(range(len(nodes))):
        raise CircuitError("graph nodes must be 0..n-1")
    circuit = Circuit(len(nodes))
    for q in nodes:
        circuit.h(q)
    for gamma, beta in zip(gammas, betas):
        for a, b in sorted(graph.edges):
            circuit.rzz(2.0 * gamma, a, b)
        for q in nodes:
            circuit.rx(2.0 * beta, q)
    return circuit


def random_qaoa(
    num_qubits: int,
    rounds: int = 1,
    edge_probability: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """A random-graph MaxCut QAOA instance with random angles."""
    rng = np.random.default_rng(rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            if rng.random() < edge_probability:
                graph.add_edge(a, b)
    if graph.number_of_edges() == 0:
        graph.add_edge(0, 1 % num_qubits)
    gammas = list(rng.uniform(0.0, np.pi, size=rounds))
    betas = list(rng.uniform(0.0, np.pi / 2.0, size=rounds))
    return qaoa_maxcut(graph, gammas, betas)


def vqe_ansatz(
    num_qubits: int,
    layers: int = 2,
    params: np.ndarray | None = None,
    rng: np.random.Generator | int | None = None,
    entangler: str = "linear",
) -> Circuit:
    """A hardware-efficient VQE ansatz: RY layers + CX entanglement.

    ``params`` has shape ``(layers + 1, num_qubits)``; random angles are
    drawn when omitted (the paper evaluates fixed VQE *circuits*, not the
    outer optimization loop).
    """
    if num_qubits < 2:
        raise CircuitError("VQE ansatz needs at least two qubits")
    rng = np.random.default_rng(rng)
    if params is None:
        params = rng.uniform(-np.pi, np.pi, size=(layers + 1, num_qubits))
    params = np.asarray(params, dtype=float)
    if params.shape != (layers + 1, num_qubits):
        raise CircuitError(
            f"params shape {params.shape} != {(layers + 1, num_qubits)}"
        )
    circuit = Circuit(num_qubits)
    for q in range(num_qubits):
        circuit.ry(float(params[0, q]), q)
    for layer in range(layers):
        if entangler == "linear":
            for q in range(num_qubits - 1):
                circuit.cx(q, q + 1)
        elif entangler == "circular":
            for q in range(num_qubits - 1):
                circuit.cx(q, q + 1)
            circuit.cx(num_qubits - 1, 0)
        else:
            raise CircuitError(f"unknown entangler {entangler!r}")
        for q in range(num_qubits):
            circuit.ry(float(params[layer + 1, q]), q)
    return circuit
