"""Output observables for the spin-model case studies (paper Figs. 1/13/14).

Magnetization is computed from a measured Z-basis distribution: bit 0
means spin up (+1), bit 1 spin down (-1).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError


def _spin_values(num_spins: int) -> np.ndarray:
    """Matrix ``S[state, spin] in {+1, -1}`` for all basis states."""
    states = np.arange(2**num_spins)
    bits = (states[:, None] >> np.arange(num_spins)[None, :]) & 1
    return 1.0 - 2.0 * bits


def average_magnetization(probs: np.ndarray, num_spins: int) -> float:
    """``(1/n) sum_i <Z_i>`` under the given outcome distribution."""
    probs = np.asarray(probs, dtype=float)
    if probs.shape != (2**num_spins,):
        raise ReproError(
            f"distribution length {probs.shape} != 2**{num_spins}"
        )
    spins = _spin_values(num_spins)
    return float(probs @ spins.mean(axis=1))


def staggered_magnetization(probs: np.ndarray, num_spins: int) -> float:
    """``(1/n) sum_i (-1)^i <Z_i>`` (antiferromagnetic order parameter)."""
    probs = np.asarray(probs, dtype=float)
    if probs.shape != (2**num_spins,):
        raise ReproError(
            f"distribution length {probs.shape} != 2**{num_spins}"
        )
    spins = _spin_values(num_spins)
    signs = np.where(np.arange(num_spins) % 2 == 0, 1.0, -1.0)
    return float(probs @ (spins * signs).mean(axis=1))
