"""Quantum arithmetic circuits: Cuccaro ripple-carry adder and multiplier.

The adder follows Cuccaro et al. (2004): MAJ/UMA chains computing
``b <- a + b`` in place with one carry-in and one carry-out ancilla.
The multiplier is a shift-and-add array: each partial product
``a_i AND b`` is computed into a temporary register with Toffolis, added
into the accumulator with the Cuccaro adder, and uncomputed.
Both are verified against classical arithmetic on computational-basis
inputs by the test suite.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def _maj(circuit: Circuit, c: int, b: int, a: int) -> None:
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: Circuit, c: int, b: int, a: int) -> None:
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def apply_cuccaro_adder(
    circuit: Circuit,
    a_bits: list[int],
    b_bits: list[int],
    carry_in: int,
    carry_out: int | None,
) -> None:
    """Append ``b <- a + b`` (mod ``2^n`` if ``carry_out`` is None).

    ``a_bits`` and ``b_bits`` are equal-length LSB-first qubit lists;
    ``carry_in`` must be ``|0>`` for plain addition.
    """
    if len(a_bits) != len(b_bits) or not a_bits:
        raise CircuitError("adder needs equal-length, non-empty registers")
    n = len(a_bits)
    _maj(circuit, carry_in, b_bits[0], a_bits[0])
    for i in range(1, n):
        _maj(circuit, a_bits[i - 1], b_bits[i], a_bits[i])
    if carry_out is not None:
        circuit.cx(a_bits[n - 1], carry_out)
    for i in range(n - 1, 0, -1):
        _uma(circuit, a_bits[i - 1], b_bits[i], a_bits[i])
    _uma(circuit, carry_in, b_bits[0], a_bits[0])


def adder(num_bits: int = 1, with_carry_out: bool = True) -> Circuit:
    """The Cuccaro ripple-carry adder on ``2*num_bits + 2`` qubits.

    Qubit layout (LSB first): ``[cin, a0, b0, a1, b1, ..., cout]``.
    ``num_bits = 1`` gives the 4-qubit "Adder 4" benchmark circuit.
    """
    if num_bits < 1:
        raise CircuitError("adder needs at least one bit")
    num_qubits = 2 * num_bits + (2 if with_carry_out else 1)
    circuit = Circuit(num_qubits)
    a_bits = [1 + 2 * i for i in range(num_bits)]
    b_bits = [2 + 2 * i for i in range(num_bits)]
    carry_out = num_qubits - 1 if with_carry_out else None
    apply_cuccaro_adder(circuit, a_bits, b_bits, 0, carry_out)
    return circuit


def adder_layout(num_bits: int) -> dict[str, list[int]]:
    """Qubit roles of :func:`adder` for test harnesses."""
    return {
        "cin": [0],
        "a": [1 + 2 * i for i in range(num_bits)],
        "b": [2 + 2 * i for i in range(num_bits)],
        "cout": [2 * num_bits + 1],
    }


def multiplier(num_bits: int = 1) -> Circuit:
    """Shift-and-add multiplier: ``out <- a * b`` on ``5*num_bits + 1`` qubits.

    Layout: ``a`` = qubits ``[0, n)``, ``b`` = ``[n, 2n)``, ``out`` =
    ``[2n, 4n)``, temporary partial-product register ``[4n, 5n)``, carry-in
    ancilla ``5n``.  ``num_bits = 1`` reduces to a Toffoli (the smallest
    "Multiplier" benchmark); larger sizes exercise deep CCX/CX structure.
    """
    if num_bits < 1:
        raise CircuitError("multiplier needs at least one bit")
    n = num_bits
    circuit = Circuit(5 * n + 1)
    a_bits = list(range(0, n))
    b_bits = list(range(n, 2 * n))
    out_bits = list(range(2 * n, 4 * n))
    temp_bits = list(range(4 * n, 5 * n))
    carry_in = 5 * n
    for i in range(n):
        # temp <- a_i AND b (bitwise).
        for j in range(n):
            circuit.ccx(a_bits[i], b_bits[j], temp_bits[j])
        if n == 1:
            # Single partial product: out bit 0 accumulates directly.
            circuit.cx(temp_bits[0], out_bits[i])
        else:
            target = out_bits[i : i + n]
            apply_cuccaro_adder(
                circuit,
                temp_bits,
                target,
                carry_in,
                out_bits[i + n] if i + n < len(out_bits) else None,
            )
        # Uncompute temp.
        for j in range(n):
            circuit.ccx(a_bits[i], b_bits[j], temp_bits[j])
    return circuit


def multiplier_layout(num_bits: int) -> dict[str, list[int]]:
    """Qubit roles of :func:`multiplier` for test harnesses."""
    n = num_bits
    return {
        "a": list(range(0, n)),
        "b": list(range(n, 2 * n)),
        "out": list(range(2 * n, 4 * n)),
        "temp": list(range(4 * n, 5 * n)),
        "cin": [5 * n],
    }
