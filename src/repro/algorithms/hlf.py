"""Hidden linear function circuits (Bravyi, Gosset, Koenig 2018).

The 2D HLF problem instance is a symmetric binary matrix ``A``; the
constant-depth quantum circuit is ``H^n . U_q . H^n`` where ``U_q``
applies CZ for every off-diagonal 1 in ``A`` and S for every diagonal 1.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def hlf(adjacency: np.ndarray) -> Circuit:
    """Build the HLF circuit for a symmetric 0/1 matrix ``adjacency``."""
    adjacency = np.asarray(adjacency)
    n = adjacency.shape[0]
    if adjacency.shape != (n, n) or not np.array_equal(adjacency, adjacency.T):
        raise CircuitError("HLF needs a square symmetric 0/1 matrix")
    if not np.isin(adjacency, (0, 1)).all():
        raise CircuitError("HLF matrix entries must be 0 or 1")
    circuit = Circuit(n)
    for q in range(n):
        circuit.h(q)
    for i in range(n):
        for j in range(i + 1, n):
            if adjacency[i, j]:
                circuit.cz(i, j)
    for q in range(n):
        if adjacency[q, q]:
            circuit.s(q)
    for q in range(n):
        circuit.h(q)
    return circuit


def random_hlf(
    num_qubits: int,
    edge_probability: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> Circuit:
    """A random HLF instance (random symmetric adjacency matrix)."""
    rng = np.random.default_rng(rng)
    upper = rng.random((num_qubits, num_qubits)) < edge_probability
    adjacency = np.triu(upper).astype(int)
    adjacency = adjacency | adjacency.T
    return hlf(adjacency)
