"""Quantum Fourier transform circuit."""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def qft(num_qubits: int, with_swaps: bool = True) -> Circuit:
    """The standard QFT: Hadamards and controlled phases, then bit reversal.

    Matches the textbook little-endian QFT matrix
    ``F[j, k] = exp(2*pi*i*j*k / 2^n) / sqrt(2^n)`` when ``with_swaps`` is
    True (verified against the explicit matrix in tests).
    """
    if num_qubits < 1:
        raise CircuitError("QFT needs at least one qubit")
    circuit = Circuit(num_qubits)
    for i in range(num_qubits - 1, -1, -1):
        circuit.h(i)
        for j in range(i - 1, -1, -1):
            circuit.cp(math.pi / float(2 ** (i - j)), j, i)
    if with_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit


def inverse_qft(num_qubits: int, with_swaps: bool = True) -> Circuit:
    """Adjoint of :func:`qft`."""
    return qft(num_qubits, with_swaps=with_swaps).inverse()
