"""Trotterized spin-model time evolution: TFIM, Heisenberg, XY.

These are the materials-simulation workloads the paper's case study
tracks (after ArQTiC, Bassman et al. 2021).  Each model evolves an
``n``-spin chain from the all-up product state; a first-order Trotter
step applies the two-body coupling terms as RXX/RYY/RZZ rotations and
the transverse/longitudinal field as one-qubit rotations.

Hamiltonian conventions (open chain, nearest neighbours)::

    TFIM:        H = -J sum Z_i Z_{i+1} - h sum X_i
    XY:          H = -J sum (X_i X_{i+1} + Y_i Y_{i+1})
    Heisenberg:  H = -sum (Jx XX + Jy YY + Jz ZZ) - h sum Z_i

``exp(-i H dt)`` per Trotter step, so e.g. the ZZ term becomes
``RZZ(-2*J*dt)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


@dataclass(frozen=True)
class SpinModelParams:
    """Couplings and integration step for a spin-chain evolution."""

    num_spins: int
    dt: float = 0.1
    jx: float = 0.0
    jy: float = 0.0
    jz: float = 0.0
    field_x: float = 0.0
    field_z: float = 0.0

    def __post_init__(self) -> None:
        if self.num_spins < 2:
            raise CircuitError("spin chains need at least two spins")
        if self.dt <= 0:
            raise CircuitError("dt must be positive")


def _append_trotter_step(circuit: Circuit, params: SpinModelParams) -> None:
    n = params.num_spins
    dt = params.dt
    for q in range(n - 1):
        if params.jx != 0.0:
            circuit.rxx(-2.0 * params.jx * dt, q, q + 1)
        if params.jy != 0.0:
            circuit.ryy(-2.0 * params.jy * dt, q, q + 1)
        if params.jz != 0.0:
            circuit.rzz(-2.0 * params.jz * dt, q, q + 1)
    for q in range(n):
        if params.field_x != 0.0:
            circuit.rx(-2.0 * params.field_x * dt, q)
        if params.field_z != 0.0:
            circuit.rz(-2.0 * params.field_z * dt, q)


def spin_evolution(params: SpinModelParams, steps: int) -> Circuit:
    """Circuit evolving ``|0...0>`` for ``steps`` Trotter steps."""
    if steps < 0:
        raise CircuitError("steps must be non-negative")
    circuit = Circuit(params.num_spins)
    for _ in range(steps):
        _append_trotter_step(circuit, params)
    return circuit


def tfim(
    num_spins: int,
    steps: int,
    j: float = 1.0,
    h: float = 1.0,
    dt: float = 0.1,
) -> Circuit:
    """Transverse-field Ising model evolution (z coupling + x field)."""
    return spin_evolution(
        SpinModelParams(num_spins=num_spins, dt=dt, jz=j, field_x=h), steps
    )


def heisenberg(
    num_spins: int,
    steps: int,
    jx: float = 1.0,
    jy: float = 1.0,
    jz: float = 1.0,
    h: float = 1.0,
    dt: float = 0.1,
) -> Circuit:
    """Heisenberg model evolution (x, y, z couplings + z field)."""
    return spin_evolution(
        SpinModelParams(
            num_spins=num_spins, dt=dt, jx=jx, jy=jy, jz=jz, field_z=h
        ),
        steps,
    )


def xy_model(
    num_spins: int,
    steps: int,
    j: float = 1.0,
    dt: float = 0.1,
) -> Circuit:
    """XY quantum Heisenberg model evolution (x and y couplings)."""
    return spin_evolution(
        SpinModelParams(num_spins=num_spins, dt=dt, jx=j, jy=j), steps
    )
