"""Multi-circuit compilation driver: one warm substrate, many quests.

:func:`run_quest_batch` compiles a whole circuit family (a TFIM sweep,
a benchmark suite) through :func:`repro.core.quest.run_quest` while
sharing the expensive runtime state across every circuit:

* **one persistent worker pool** — worker processes fork and warm up
  once for the whole batch instead of once per synthesis round
  (:class:`~repro.parallel.pool_manager.PersistentWorkerPool`);
* **one content-addressed cache** — blocks identical across circuits
  resolve from memory/disk instead of re-synthesizing
  (:class:`~repro.parallel.cache.PoolCache`, now thread-safe);
* **one in-flight registry** — blocks identical across *concurrently
  compiling* circuits dedup even before either lands in the cache
  (:class:`~repro.batch.workqueue.InflightRegistry`).

Circuits run on a bounded thread window (``window``), so synthesis of
circuit *i+1* overlaps the parent-side selection/annealing of circuit
*i* while memory stays bounded.  Each circuit still runs the full,
unchanged pipeline: per-circuit selections are **bit-identical** to
running that circuit alone, because every shared result is keyed by the
content-addressed entry key that pins the synthesis seed.

With ``checkpoint_dir``, each circuit journals into its own
subdirectory (``circuit-0000``, ``circuit-0001``, ...); a killed batch
rerun against the same directory resumes every unfinished circuit from
its journaled blocks, bit-identically.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.batch.workqueue import InflightRegistry
from repro.core.quest import QuestConfig, QuestResult, run_quest
from repro.observability import MetricsRegistry, get_metrics, get_tracer
from repro.parallel.cache import PoolCache
from repro.parallel.pool_manager import PersistentWorkerPool


@dataclass
class BatchResources:
    """Batch-scoped runtime state threaded through ``run_quest(shared=)``.

    Duck-typed by :func:`repro.core.quest._run_pipeline`: any object
    with these three attributes works, ``None`` fields simply disable
    that kind of sharing.
    """

    cache: PoolCache | None = None
    worker_pool: PersistentWorkerPool | None = None
    inflight: InflightRegistry | None = None


@dataclass
class BatchResult:
    """Everything a batch compilation produced.

    ``results`` preserves input order regardless of completion order.
    The dedup/pool/shm counters aggregate over every circuit and are
    what the throughput benchmark asserts on.
    """

    results: list[QuestResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Blocks served by attaching to an existing job instead of
    #: synthesizing (within-circuit repeats + cross-circuit joins).
    dedup_joins: int = 0
    #: Subset of ``dedup_joins`` that joined another circuit's
    #: *in-flight* job through the registry.
    inflight_joins: int = 0
    #: Synthesis jobs actually dispatched, batch-wide.
    cache_misses: int = 0
    #: Blocks served from the shared cache (memory or disk tier).
    cache_hits: int = 0
    #: Persistent-pool accounting (0 when ``workers == 1``).
    pools_created: int = 0
    pool_recycles: int = 0
    pool_reuses: int = 0
    #: Array bytes that rode shared memory instead of the result pipe.
    shm_bytes_saved: int = 0
    #: Merged metrics snapshot across every circuit of the batch.
    metrics: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable batch summary."""
        synthesized = self.cache_misses
        text = (
            f"{len(self.results)} circuits in {self.wall_seconds:.2f}s: "
            f"{synthesized} blocks synthesized, "
            f"{self.cache_hits} cache hits, "
            f"{self.dedup_joins} dedup joins "
            f"({self.inflight_joins} in-flight)"
        )
        if self.pools_created:
            text += (
                f"; worker pool created {self.pools_created}x, "
                f"reused {self.pool_reuses} rounds"
            )
        if self.shm_bytes_saved:
            text += f"; {self.shm_bytes_saved} bytes via shared memory"
        return text


def _circuit_checkpoint_dir(
    checkpoint_dir: str | None, index: int
) -> str | None:
    if checkpoint_dir is None:
        return None
    return str(Path(checkpoint_dir) / f"circuit-{index:04d}")


def run_quest_batch(
    circuits,
    config: QuestConfig | None = None,
    *,
    window: int = 2,
    checkpoint_dir: str | None = None,
    resume: bool = True,
    fault_injector=None,
) -> BatchResult:
    """Compile every circuit in ``circuits`` through one shared substrate.

    Parameters
    ----------
    circuits:
        The circuits to compile; results come back in the same order.
    config:
        One :class:`QuestConfig` applied to every circuit (the batch
        shares cache keys only where configs match, so a single config
        is the honest interface).
    window:
        Bounded in-flight window: how many circuits compile
        concurrently.  ``1`` degrades to sequential-with-shared-state;
        larger windows overlap circuit *i*'s selection with circuit
        *i+1*'s synthesis.
    checkpoint_dir:
        Optional batch journal root; each circuit journals into its own
        ``circuit-NNNN`` subdirectory and a rerun resumes from it.
    resume:
        Refuse existing journals when False (passed through per
        circuit).
    fault_injector:
        Shared fault injector (tests/CI), passed through per circuit.

    A circuit that *fails* (raises) aborts the batch after in-flight
    circuits finish; completed results are not returned partially —
    rerun with ``checkpoint_dir`` to resume from the journaled blocks.
    """
    config = config or QuestConfig()
    circuits = list(circuits)
    if not circuits:
        raise ValueError("run_quest_batch needs at least one circuit")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")

    cache = None
    if config.cache:
        cache = PoolCache(
            config.store_dir or config.cache_dir,
            fault_injector=fault_injector,
            max_entries=config.cache_max_entries,
            namespace=config.namespace,
        )
    worker_pool = (
        PersistentWorkerPool(config.workers) if config.workers > 1 else None
    )
    resources = BatchResources(
        cache=cache,
        worker_pool=worker_pool,
        inflight=InflightRegistry(),
    )

    tracer = get_tracer()
    results: list[QuestResult | None] = [None] * len(circuits)
    start = time.perf_counter()
    with tracer.span(
        "quest.batch", circuits=len(circuits), window=window
    ):
        try:
            with ThreadPoolExecutor(
                max_workers=min(window, len(circuits)),
                thread_name_prefix="quest-batch",
            ) as threads:
                futures = [
                    threads.submit(
                        run_quest,
                        circuit,
                        config,
                        checkpoint_dir=_circuit_checkpoint_dir(
                            checkpoint_dir, index
                        ),
                        resume=resume,
                        fault_injector=fault_injector,
                        shared=resources,
                    )
                    for index, circuit in enumerate(circuits)
                ]
                for index, future in enumerate(futures):
                    results[index] = future.result()
        finally:
            if worker_pool is not None:
                worker_pool.shutdown()
    wall = time.perf_counter() - start

    batch = BatchResult(results=results, wall_seconds=wall)
    merged = MetricsRegistry()
    for result in results:
        batch.dedup_joins += result.dedup_joins
        batch.cache_hits += result.cache_hits
        batch.cache_misses += result.cache_misses
        if result.metrics:
            merged.merge(result.metrics)
    batch.inflight_joins = resources.inflight.joins
    if worker_pool is not None:
        batch.pools_created = worker_pool.pools_created
        batch.pool_recycles = worker_pool.recycles
        batch.pool_reuses = worker_pool.reuses
    batch.shm_bytes_saved = int(
        merged.snapshot().get("counters", {}).get("shm.bytes_saved", 0)
    )
    # Fold the batch-level aggregates into the merged snapshot so a
    # ``--metrics-json`` dump is self-contained even when the caller has
    # no ambient metrics registry installed.
    merged.merge(
        {
            "counters": {
                "batch.circuits": len(circuits),
                "batch.dedup_joins": batch.dedup_joins,
                "batch.inflight_joins": batch.inflight_joins,
                "batch.shm_bytes_saved": batch.shm_bytes_saved,
                # Must be 0: a nonzero value means a joiner timed out on
                # an owner that never published, failed, or released.
                "registry.stranded_joiners": resources.inflight.stranded_joiners,
            },
            "gauges": {"batch.pool_reuses": batch.pool_reuses},
        }
    )
    batch.metrics = merged.snapshot()
    metrics = get_metrics()
    if metrics.is_enabled:
        metrics.inc("batch.circuits", len(circuits))
        metrics.inc("batch.dedup_joins", batch.dedup_joins)
        metrics.inc("batch.inflight_joins", batch.inflight_joins)
        metrics.gauge("batch.pool_reuses", batch.pool_reuses)
        metrics.inc("batch.shm_bytes_saved", batch.shm_bytes_saved)
    return batch
