"""Global block work-queue: in-flight dedup across concurrent compiles.

Blocks are content-addressed (see :mod:`repro.parallel.cache`): the
entry key pins the global-phase-canonical unitary, the LeapConfig
fingerprint, and the synthesis seed, so two blocks with equal keys have
byte-identical results.  The warm :class:`~repro.parallel.cache.PoolCache`
already dedupes *resolved* work — but when two circuits of a batch are
compiled concurrently, both can probe the cache before either has
published, and the same block synthesizes twice.  The
:class:`InflightRegistry` closes that window:

* the first executor to reach a key **claims** it and synthesizes;
* any other executor reaching the same key while it is in flight
  **joins** — it blocks on the owner's result instead of racing to a
  cache miss;
* results are **published** only when they are baseline-attempt results
  (same rule as the cache: escalated-seed or escalated-budget retry
  results are not interchangeable with a clean run's), so a joiner can
  adopt them without breaking per-circuit bit-identity;
* a failed or non-publishable attempt **releases** the key — the joiner
  wakes, runs its own attempt (so retry/seed semantics match a solo
  run exactly), and the key can be re-claimed on a later round.

Resolved entries are retained for the registry's lifetime, so a batch
running with the cache disabled still synthesizes each unique key once.

The registry stores ``(solutions, unitaries)`` pairs — the optional
``unitaries`` are the worker-computed candidate matrices moved through
the shared-memory transport (:mod:`repro.batch.shm`), shared with
joiners so deduped blocks skip the parent-side unitary rebuild too.
"""

from __future__ import annotations

import threading

from repro.observability import get_metrics, get_tracer


class InflightEntry:
    """One key's in-flight state: an event plus the published result."""

    __slots__ = ("event", "solutions", "unitaries", "ok")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.solutions = None
        self.unitaries = None
        self.ok = False

    @property
    def resolved(self) -> bool:
        """Whether a publishable result is already available."""
        return self.event.is_set() and self.ok

    def wait(self, timeout: float | None) -> bool:
        """Block until published/released; True iff a result landed."""
        finished = self.event.wait(timeout)
        return bool(finished and self.ok)


class InflightRegistry:
    """Claim/join/publish registry keyed by cache entry key.

    Thread-safe; one instance is shared by every executor of a batch.
    ``owner`` tokens are opaque objects (one per ``executor.run`` call)
    so a crashed run's claims can be released wholesale in a
    ``finally`` — a joiner can block on an owner, never on a corpse.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, tuple[object | None, InflightEntry]] = {}
        #: Keys resolved through the registry (lifetime counters).
        self.published = 0
        self.joins = 0
        #: Joiners whose wait timed out with the entry still unresolved
        #: and unreleased — an owner went missing without its ``finally``
        #: release firing.  Must stay 0; batch/service suites assert it.
        self.stranded_joiners = 0

    def claim(self, key: str, owner: object) -> InflightEntry | None:
        """Claim ``key`` for ``owner``; ``None`` means the caller owns it.

        A non-None return is an entry to join: either already resolved
        (adopt the result immediately) or in flight (wait on it).
        """
        with self._lock:
            held = self._entries.get(key)
            if held is None:
                self._entries[key] = (owner, InflightEntry())
                return None
            if held[0] is owner:
                # Re-claim across retry rounds: still ours to resolve.
                return None
            entry = held[1]
            self.joins += 1
        metrics = get_metrics()
        if metrics.is_enabled:
            metrics.inc("dedup.inflight_joins")
        tracer = get_tracer()
        if tracer.is_enabled:
            tracer.event(
                "dedup.join", key=key[:12], resolved=entry.resolved
            )
        return entry

    def publish(self, key: str, owner: object, solutions, unitaries=None) -> None:
        """Publish ``owner``'s baseline result for ``key``.

        The entry stays in the registry (resolved) so later claims adopt
        it without waiting — the cache-off cross-circuit dedup path.
        """
        with self._lock:
            held = self._entries.get(key)
            if held is None or held[0] is not owner:
                return
            entry = held[1]
            entry.solutions = solutions
            entry.unitaries = unitaries
            entry.ok = True
            # Resolved entries no longer need an owner: nothing will
            # release them, and release(owner) must not drop them.
            self._entries[key] = (None, entry)
            self.published += 1
        entry.event.set()

    def fail(self, key: str, owner: object) -> None:
        """Release ``key`` after a failed / non-publishable attempt.

        Joiners wake with no result and fall back to their own attempt;
        the key becomes claimable again for the next retry round.

        Idempotent: a second invocation (the owner's ``finally`` release
        racing an explicit fail during shutdown), a fail after
        :meth:`publish`, or a fail against a key another owner has since
        re-claimed are all no-ops — a token can only ever drop entries
        it still holds.
        """
        with self._lock:
            held = self._entries.get(key)
            if held is None or held[0] is not owner:
                return
            entry = held[1]
            del self._entries[key]
        entry.event.set()

    def release(self, owner: object) -> None:
        """Release every unresolved key still claimed by ``owner``.

        Called in the executor's ``finally`` so an exception between
        claim and publish can never strand a joiner.  Idempotent for the
        same reason :meth:`fail` is: the second invocation of a
        shutdown race finds no entries held by ``owner`` and does
        nothing, and resolved (published) entries — whose owner slot is
        cleared — are never dropped.
        """
        with self._lock:
            stale = [
                (key, held[1])
                for key, held in self._entries.items()
                if held[0] is owner
            ]
            for key, _ in stale:
                del self._entries[key]
        for _, entry in stale:
            entry.event.set()

    def wait_for(self, entry: InflightEntry, timeout: float | None) -> bool:
        """Join ``entry``: block until published/released, with accounting.

        Returns True iff a publishable result landed.  A wait that
        *times out* with the entry still unresolved means the owner
        vanished without releasing — the invariant the owner-token
        ``finally`` exists to prevent — so it is counted in
        :attr:`stranded_joiners` and mirrored to the ambient metrics as
        ``registry.stranded_joiners``; test suites assert the counter
        stays 0.
        """
        ok = entry.wait(timeout)
        if not ok and not entry.event.is_set():
            with self._lock:
                self.stranded_joiners += 1
            metrics = get_metrics()
            if metrics.is_enabled:
                metrics.inc("registry.stranded_joiners")
            tracer = get_tracer()
            if tracer.is_enabled:
                tracer.event("dedup.stranded", timeout=timeout)
        return ok
