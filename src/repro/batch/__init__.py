"""Batch compilation layer: shared worker pool, dedup, shm transport.

See :mod:`repro.batch.driver` for the entry point
(:func:`run_quest_batch`), :mod:`repro.batch.workqueue` for the
in-flight dedup registry, and :mod:`repro.batch.shm` for the
shared-memory candidate transport.
"""

from repro.batch.driver import BatchResources, BatchResult, run_quest_batch
from repro.batch.shm import (
    ShmEnvelope,
    ShmTransportError,
    decode_payload,
    encode_payload,
    shm_available,
)
from repro.batch.workqueue import InflightRegistry

__all__ = [
    "run_quest_batch",
    "BatchResult",
    "BatchResources",
    "InflightRegistry",
    "ShmEnvelope",
    "ShmTransportError",
    "encode_payload",
    "decode_payload",
    "shm_available",
]
