"""Shared-memory candidate transport between workers and the driver.

A synthesis worker's payload is dominated by arrays: the candidate
unitaries a block's pool assembly needs are ``O(pool_size * dim^2)``
complex entries, and the default process-pool transport pickles all of
them into the result pipe — serialized in the worker, copied through the
OS pipe, parsed in the parent, for every task.

:func:`encode_payload` instead splits the payload with pickle protocol
5's out-of-band buffer machinery: every array is exported *zero-copy*
(``PickleBuffer`` views, no byte-stream serialization) and written into
one ``multiprocessing.shared_memory`` segment; what crosses the pipe is
a tiny :class:`ShmEnvelope` *handle* — segment name, buffer table,
SHA-256 checksum, and the array-free metadata pickle.
:func:`decode_payload` maps the segment in the parent, verifies the
checksum, materializes the buffers with a single bulk copy (so the
segment can be unlinked immediately and arrays stay writable), and
reconstructs the payload.

Degradation is explicit and safe:

* payloads whose array content is below ``min_bytes`` skip shared
  memory entirely (the segment setup would cost more than it saves);
* if shared memory is unavailable (platform, permissions, exhausted
  ``/dev/shm``) the envelope carries an ordinary pickle instead
  (``via="pickle"``);
* a checksum or mapping failure raises :class:`ShmTransportError` in
  the parent, which the executor treats like any worker failure —
  retried under the retry policy, never silently trusted.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field

from repro.exceptions import ReproError
from repro.observability import get_metrics

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None

#: Array payloads smaller than this go inline: a shared-memory segment
#: costs a file descriptor, an mmap, and a resource-tracker round trip,
#: which only pays off once the pickle bytes it replaces are substantial.
DEFAULT_MIN_BYTES = 64 * 1024

#: Bump when the envelope layout changes.
ENVELOPE_VERSION = 1


class ShmTransportError(ReproError):
    """A shared-memory envelope failed to decode (checksum, mapping)."""


@dataclass
class ShmEnvelope:
    """What actually crosses the worker -> driver pipe.

    ``via`` is ``"shm"`` when the arrays live in a shared-memory
    segment, ``"pickle"`` when they are inline (fallback or
    below-threshold payloads).
    """

    version: int
    via: str
    #: Array-free pickle of the payload (out-of-band buffers removed).
    meta: bytes
    #: Shared-memory segment name (``via="shm"`` only).
    segment: str | None = None
    #: ``(offset, length)`` of each out-of-band buffer in the segment.
    buffers: list[tuple[int, int]] = field(default_factory=list)
    #: Total out-of-band bytes moved through shared memory.
    total_bytes: int = 0
    #: SHA-256 of the segment's used range.
    checksum: str | None = None
    #: Inline pickled payload (``via="pickle"`` only).
    payload: bytes | None = None


def shm_available() -> bool:
    """Whether this platform offers POSIX shared memory."""
    return _shared_memory is not None


def _inline_envelope(obj) -> ShmEnvelope:
    return ShmEnvelope(
        version=ENVELOPE_VERSION,
        via="pickle",
        meta=b"",
        payload=pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
    )


def encode_payload(obj, min_bytes: int = DEFAULT_MIN_BYTES) -> ShmEnvelope:
    """Encode ``obj`` for the result pipe (worker side).

    Arrays are extracted zero-copy via protocol-5 ``buffer_callback``
    and written to one shared-memory segment; everything else stays in
    the (small) ``meta`` pickle.  Falls back to an inline pickle when
    shared memory is unavailable, the segment cannot be created, or the
    array content is below ``min_bytes``.
    """
    out_of_band: list[pickle.PickleBuffer] = []
    try:
        meta = pickle.dumps(obj, protocol=5, buffer_callback=out_of_band.append)
    except (pickle.PicklingError, TypeError, ValueError):
        return _inline_envelope(obj)
    views = [buffer.raw() for buffer in out_of_band]
    total = sum(view.nbytes for view in views)
    if _shared_memory is None or total < min_bytes:
        for buffer in out_of_band:
            buffer.release()
        return _inline_envelope(obj)
    try:
        segment = _shared_memory.SharedMemory(create=True, size=max(total, 1))
    except OSError:
        for buffer in out_of_band:
            buffer.release()
        return _inline_envelope(obj)
    table: list[tuple[int, int]] = []
    offset = 0
    digest = hashlib.sha256()
    try:
        for view in views:
            flat = view.cast("B")
            length = flat.nbytes
            segment.buf[offset : offset + length] = flat
            digest.update(segment.buf[offset : offset + length])
            table.append((offset, length))
            offset += length
        envelope = ShmEnvelope(
            version=ENVELOPE_VERSION,
            via="shm",
            meta=meta,
            segment=segment.name,
            buffers=table,
            total_bytes=total,
            checksum=digest.hexdigest(),
        )
    except (OSError, ValueError):
        # Segment write failed mid-way: clean up and degrade.
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - double-fault path
            pass
        for buffer in out_of_band:
            buffer.release()
        return _inline_envelope(obj)
    finally:
        for view in views:
            view.release()
        for buffer in out_of_band:
            buffer.release()
    # Ownership transfers to the parent: it attaches (registering the
    # name with its resource tracker) and unlinks after decoding.  The
    # worker must therefore *un*register its create-time registration,
    # or a spawn-start worker's tracker would unlink the segment when
    # the worker exits — possibly before the parent has read it.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker is an implementation detail
        pass
    segment.close()
    return envelope


def decode_payload(envelope: ShmEnvelope):
    """Decode an envelope in the driver (parent side).

    Returns the reconstructed payload.  ``via="shm"`` envelopes are
    checksum-verified, materialized with one bulk copy into a writable
    buffer, and their segment unlinked before this function returns —
    decode can never leak a segment on the success path.
    """
    if not isinstance(envelope, ShmEnvelope):
        # A transport-disabled worker (or an old cached result) handed
        # back the bare payload; pass it through untouched.
        return envelope
    if envelope.version != ENVELOPE_VERSION:
        raise ShmTransportError(
            f"shm envelope version {envelope.version} unsupported "
            f"(expected {ENVELOPE_VERSION})"
        )
    if envelope.via == "pickle":
        if envelope.payload is None:
            raise ShmTransportError("inline envelope carries no payload")
        return pickle.loads(envelope.payload)
    if envelope.via != "shm":
        raise ShmTransportError(f"unknown transport {envelope.via!r}")
    if _shared_memory is None:  # pragma: no cover - worker had shm, we don't
        raise ShmTransportError("shared memory unavailable in the driver")
    try:
        segment = _shared_memory.SharedMemory(name=envelope.segment)
    except (OSError, ValueError) as exc:
        raise ShmTransportError(
            f"cannot map shm segment {envelope.segment!r}: {exc}"
        ) from exc
    try:
        used = sum(length for _, length in envelope.buffers)
        digest = hashlib.sha256(segment.buf[:used]).hexdigest()
        if digest != envelope.checksum:
            raise ShmTransportError(
                f"shm segment {envelope.segment!r} failed its checksum"
            )
        # One bulk copy into parent-owned, *writable* memory: the
        # segment can be unlinked immediately and no reconstructed
        # array can outlive (or pin) the mapping.
        data = bytearray(segment.buf[:used])
    finally:
        segment.close()
        try:
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass
    window = memoryview(data)
    buffers = [
        window[offset : offset + length]
        for offset, length in envelope.buffers
    ]
    try:
        payload = pickle.loads(envelope.meta, buffers=buffers)
    except (pickle.UnpicklingError, EOFError, ValueError, TypeError) as exc:
        raise ShmTransportError(
            f"shm payload failed to reconstruct: {exc}"
        ) from exc
    metrics = get_metrics()
    if metrics.is_enabled:
        metrics.inc("shm.payloads")
        metrics.inc("shm.bytes_saved", envelope.total_bytes)
    return payload


def shm_synthesis_task(fn, min_bytes: int, *args) -> ShmEnvelope:
    """Worker-side wrapper: run ``fn`` and envelope its result.

    ``fn`` is any of the executor's synthesis tasks (plain, faulted, or
    observed) whose first result element is the solution list.  The
    wrapper additionally *instantiates each solution's unitary in the
    worker* — the matrices pool assembly would otherwise rebuild in the
    driver — and ships ``(result, unitaries)`` through the envelope, so
    the big arrays ride shared memory and the driver-side rebuild is
    skipped.  (``circuit.unitary()`` is a deterministic pure function of
    the circuit, so worker- and driver-computed matrices are
    byte-identical; candidate validation still recomputes its own.)
    """
    import numpy as np

    result = fn(*args)
    solutions = result[0]
    unitaries = [
        np.ascontiguousarray(solution.circuit.unitary())
        for solution in solutions
    ]
    return encode_payload((result, unitaries), min_bytes=min_bytes)


def discard_envelope(envelope) -> None:
    """Unlink an envelope's segment without decoding it.

    Used when the driver drops a result (cancelled round, duplicate)
    so abandoned segments cannot accumulate in ``/dev/shm``.
    """
    if (
        not isinstance(envelope, ShmEnvelope)
        or envelope.via != "shm"
        or _shared_memory is None
    ):
        return
    try:
        segment = _shared_memory.SharedMemory(name=envelope.segment)
    except (OSError, ValueError):
        return
    segment.close()
    try:
        segment.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover
        pass
