"""The end-to-end transpiler pipeline (the paper's "Qiskit" baseline).

``transpile(circuit, backend, optimization_level)`` mirrors the Qiskit
stage order the paper relies on:

1. basis translation to {RX/RY/RZ/P, CX},
2. peephole optimization to a fixed point (1q merge + commutation-aware
   CX cancellation), plus 2-qubit consolidation at level 3,
3. swap routing to the backend topology (if constrained),
4. a final optimization sweep over the routed circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import Circuit
from repro.exceptions import TranspilerError
from repro.noise.backends import Backend
from repro.transpile.basis import lower_to_basis
from repro.transpile.passes import (
    cancel_adjacent_cx,
    consolidate_two_qubit_runs,
    merge_one_qubit_gates,
    remove_identity_rotations,
)
from repro.transpile.routing import route_to_coupling


@dataclass
class TranspileResult:
    """Output of :func:`transpile`.

    ``final_layout`` maps logical to physical qubits; measurements inside
    ``circuit`` already encode it, so
    :func:`repro.sim.readout.logical_distribution` recovers logical-order
    outputs without consulting the layout directly.
    """

    circuit: Circuit
    final_layout: dict[int, int] = field(default_factory=dict)
    swaps_inserted: int = 0

    @property
    def cnot_count(self) -> int:
        """CNOT count of the transpiled circuit."""
        return self.circuit.cnot_count()


def _optimize(circuit: Circuit, level: int, rng) -> Circuit:
    if level < 1:
        return circuit
    previous_cnots = None
    current = circuit
    # Iterate the cheap passes to a fixed point (bounded for safety).
    for _ in range(8):
        current = merge_one_qubit_gates(current)
        current = cancel_adjacent_cx(current)
        current = remove_identity_rotations(current)
        cnots = current.cnot_count()
        if cnots == previous_cnots:
            break
        previous_cnots = cnots
    if level >= 3:
        current = consolidate_two_qubit_runs(current, rng=rng)
        current = merge_one_qubit_gates(current)
        current = remove_identity_rotations(current)
    return current


def transpile(
    circuit: Circuit,
    backend: Backend | None = None,
    optimization_level: int = 3,
    rng: np.random.Generator | int | None = None,
) -> TranspileResult:
    """Compile ``circuit`` for ``backend`` at the given optimization level.

    With no backend (or a fully connected one) routing is skipped and the
    result stays on logical qubits.  Levels follow Qiskit's convention:
    0 = basis translation only, 1/2 = peephole passes, 3 = adds two-qubit
    consolidation (KAK resynthesis).
    """
    if optimization_level not in (0, 1, 2, 3):
        raise TranspilerError(f"bad optimization level {optimization_level}")
    rng = np.random.default_rng(rng)
    lowered = lower_to_basis(circuit)
    optimized = _optimize(lowered, optimization_level, rng)

    needs_routing = backend is not None and not backend.is_fully_connected
    if not needs_routing:
        width = backend.num_qubits if backend is not None else circuit.num_qubits
        if backend is not None and circuit.num_qubits > backend.num_qubits:
            raise TranspilerError(
                f"circuit needs {circuit.num_qubits} qubits; backend has "
                f"{backend.num_qubits}"
            )
        final = optimized
        if width != final.num_qubits:
            final = final.remap(
                {q: q for q in range(final.num_qubits)}, num_qubits=width
            )
        return TranspileResult(
            circuit=final,
            final_layout={q: q for q in range(circuit.num_qubits)},
            swaps_inserted=0,
        )

    routed = route_to_coupling(
        optimized, backend.coupling_map, num_physical=backend.num_qubits
    )
    relowered = lower_to_basis(routed.circuit)
    final = _optimize(relowered, optimization_level, rng)
    return TranspileResult(
        circuit=final,
        final_layout=routed.final_layout,
        swaps_inserted=routed.swaps_inserted,
    )
