"""Interaction-aware initial layout (optional pass).

The paper's related work covers layout-aware mapping: picking which
physical qubit hosts each logical qubit before routing.  This pass ranks
logical qubits by how many two-qubit interactions they carry and assigns
them to physical qubits in decreasing connectivity order, so the busiest
logical qubits sit where the device has the most neighbours — fewer
SWAPs on non-linear topologies, and a deterministic, explainable layout
on linear ones.

The default :func:`repro.transpile.pipeline.transpile` keeps the trivial
layout; pass the result of :func:`interaction_layout` through
``Circuit.remap`` to opt in (see ``tests/test_layout.py``).
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.circuit import Circuit
from repro.exceptions import TranspilerError
from repro.noise.backends import Backend


def interaction_counts(circuit: Circuit) -> dict[int, int]:
    """Number of two-qubit interactions each qubit participates in."""
    counts = {q: 0 for q in range(circuit.num_qubits)}
    for op in circuit.operations:
        if len(op.qubits) >= 2:
            for q in op.qubits:
                counts[q] += 1
    return counts


def interaction_layout(circuit: Circuit, backend: Backend) -> dict[int, int]:
    """Map logical to physical qubits, busiest-to-best-connected.

    Returns a ``{logical: physical}`` dict covering every logical qubit.
    Raises :class:`TranspilerError` if the device is too small.
    """
    if circuit.num_qubits > backend.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits; backend "
            f"{backend.name} has {backend.num_qubits}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(backend.num_qubits))
    graph.add_edges_from(backend.coupling_map)
    # Physical qubits by decreasing degree; ties broken by centrality
    # (distance sum), so chain middles beat chain ends.
    def centrality(node: int) -> float:
        lengths = nx.single_source_shortest_path_length(graph, node)
        return -sum(lengths.values())

    physical_order = sorted(
        graph.nodes, key=lambda n: (graph.degree[n], centrality(n)), reverse=True
    )
    counts = interaction_counts(circuit)
    logical_order = sorted(
        range(circuit.num_qubits), key=lambda q: counts[q], reverse=True
    )
    return {
        logical: physical_order[rank]
        for rank, logical in enumerate(logical_order)
    }


def apply_layout(circuit: Circuit, layout: dict[int, int], num_physical: int) -> Circuit:
    """Remap a circuit onto physical qubits according to ``layout``."""
    if sorted(layout) != list(range(circuit.num_qubits)):
        raise TranspilerError("layout must cover every logical qubit")
    if len(set(layout.values())) != len(layout):
        raise TranspilerError("layout maps two logical qubits to one physical")
    return circuit.remap(dict(layout), num_qubits=num_physical)
