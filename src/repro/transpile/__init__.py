"""Qiskit-like transpiler: basis lowering, peephole passes, routing."""

from repro.transpile.basis import lower_to_basis
from repro.transpile.layout import (
    apply_layout,
    interaction_counts,
    interaction_layout,
)
from repro.transpile.passes import (
    cancel_adjacent_cx,
    consolidate_two_qubit_runs,
    merge_one_qubit_gates,
    remove_identity_rotations,
)
from repro.transpile.pipeline import TranspileResult, transpile
from repro.transpile.routing import RoutingResult, route_to_coupling

__all__ = [
    "interaction_layout",
    "interaction_counts",
    "apply_layout",
    "lower_to_basis",
    "merge_one_qubit_gates",
    "cancel_adjacent_cx",
    "remove_identity_rotations",
    "consolidate_two_qubit_runs",
    "route_to_coupling",
    "RoutingResult",
    "transpile",
    "TranspileResult",
]
