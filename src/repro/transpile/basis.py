"""Basis translation: lower every gate to one-qubit rotations plus CX.

This is the first stage of the Qiskit-like pipeline and also defines the
CNOT accounting used throughout the evaluation: after lowering, the CNOT
count of a circuit is simply its number of ``cx`` operations.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import Gate
from repro.exceptions import TranspilerError

#: Gates already in the {1q rotation, CX} basis.
_NATIVE = frozenset({"cx", "rx", "ry", "rz", "p", "measure", "barrier"})


def _lower_fixed_1q(circuit: Circuit, name: str, qubit: int) -> None:
    # All rules below are exact up to a global phase, which every metric in
    # this library (HS distance, output distributions) is invariant to.
    half_pi = math.pi / 2.0
    if name == "id":
        return
    if name == "x":
        circuit.rx(math.pi, qubit)
    elif name == "y":
        circuit.ry(math.pi, qubit)
    elif name == "z":
        circuit.rz(math.pi, qubit)
    elif name == "h":
        circuit.rz(math.pi, qubit)
        circuit.ry(half_pi, qubit)
    elif name == "s":
        circuit.p(half_pi, qubit)
    elif name == "sdg":
        circuit.p(-half_pi, qubit)
    elif name == "t":
        circuit.p(math.pi / 4.0, qubit)
    elif name == "tdg":
        circuit.p(-math.pi / 4.0, qubit)
    elif name == "sx":
        circuit.rx(half_pi, qubit)
    else:  # pragma: no cover - exhaustive over the gate set
        raise TranspilerError(f"no lowering rule for {name!r}")


def _lower_op(circuit: Circuit, op: Operation) -> None:
    name = op.name
    if name in _NATIVE:
        if name == "measure":
            circuit.measure(op.qubits[0], op.cbit)
        elif name == "barrier":
            circuit.barrier()
        else:
            circuit.append(op)
        return
    if name == "u1":
        circuit.p(op.params[0], op.qubits[0])
        return
    if name in ("u3", "u"):
        theta, phi, lam = op.params
        qubit = op.qubits[0]
        circuit.rz(lam, qubit)
        circuit.ry(theta, qubit)
        circuit.rz(phi, qubit)
        return
    if name == "u2":
        phi, lam = op.params
        qubit = op.qubits[0]
        circuit.rz(lam, qubit)
        circuit.ry(math.pi / 2.0, qubit)
        circuit.rz(phi, qubit)
        return
    if len(op.qubits) == 1:
        _lower_fixed_1q(circuit, name, op.qubits[0])
        return
    if name == "cz":
        control, target = op.qubits
        _lower_fixed_1q(circuit, "h", target)
        circuit.cx(control, target)
        _lower_fixed_1q(circuit, "h", target)
        return
    if name == "swap":
        q0, q1 = op.qubits
        circuit.cx(q0, q1)
        circuit.cx(q1, q0)
        circuit.cx(q0, q1)
        return
    if name == "rzz":
        (theta,) = op.params
        q0, q1 = op.qubits
        circuit.cx(q0, q1)
        circuit.rz(theta, q1)
        circuit.cx(q0, q1)
        return
    if name == "rxx":
        (theta,) = op.params
        q0, q1 = op.qubits
        for q in (q0, q1):
            _lower_fixed_1q(circuit, "h", q)
        circuit.cx(q0, q1)
        circuit.rz(theta, q1)
        circuit.cx(q0, q1)
        for q in (q0, q1):
            _lower_fixed_1q(circuit, "h", q)
        return
    if name == "ryy":
        (theta,) = op.params
        q0, q1 = op.qubits
        for q in (q0, q1):
            circuit.rx(math.pi / 2.0, q)
        circuit.cx(q0, q1)
        circuit.rz(theta, q1)
        circuit.cx(q0, q1)
        for q in (q0, q1):
            circuit.rx(-math.pi / 2.0, q)
        return
    if name == "cp":
        (lam,) = op.params
        control, target = op.qubits
        circuit.p(lam / 2.0, control)
        circuit.cx(control, target)
        circuit.p(-lam / 2.0, target)
        circuit.cx(control, target)
        circuit.p(lam / 2.0, target)
        return
    if name == "ccx":
        c1, c2, t = op.qubits
        _lower_fixed_1q(circuit, "h", t)
        circuit.cx(c2, t)
        circuit.p(-math.pi / 4.0, t)
        circuit.cx(c1, t)
        circuit.p(math.pi / 4.0, t)
        circuit.cx(c2, t)
        circuit.p(-math.pi / 4.0, t)
        circuit.cx(c1, t)
        circuit.p(math.pi / 4.0, c2)
        circuit.p(math.pi / 4.0, t)
        _lower_fixed_1q(circuit, "h", t)
        circuit.cx(c1, c2)
        circuit.p(math.pi / 4.0, c1)
        circuit.p(-math.pi / 4.0, c2)
        circuit.cx(c1, c2)
        return
    if name == "cswap":
        control, x, y = op.qubits
        circuit.cx(y, x)
        _lower_op(circuit, Operation(Gate("ccx"), (control, x, y)))
        circuit.cx(y, x)
        return
    raise TranspilerError(f"no lowering rule for gate {name!r}")


def lower_to_basis(circuit: Circuit) -> Circuit:
    """Rewrite ``circuit`` using only RX/RY/RZ/P and CX (plus pseudo-ops)."""
    lowered = Circuit(circuit.num_qubits)
    for op in circuit.operations:
        _lower_op(lowered, op)
    return lowered
