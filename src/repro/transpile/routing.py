"""Swap routing onto constrained topologies (layout-aware mapping).

A greedy shortest-path router: every two-qubit gate whose logical qubits
sit on non-adjacent physical qubits is preceded by SWAPs that walk one
operand along the shortest path.  Measurements are re-targeted through the
final layout so the classical bit order stays logical — downstream
distribution helpers rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.circuits.circuit import Circuit, Operation
from repro.exceptions import TranspilerError


@dataclass
class RoutingResult:
    """A routed circuit plus the logical-to-physical layout history."""

    circuit: Circuit
    final_layout: dict[int, int] = field(default_factory=dict)
    swaps_inserted: int = 0


def route_to_coupling(
    circuit: Circuit,
    coupling_map: tuple[tuple[int, int], ...],
    num_physical: int | None = None,
) -> RoutingResult:
    """Map ``circuit`` onto the device graph with greedy SWAP insertion."""
    num_physical = num_physical or circuit.num_qubits
    if circuit.num_qubits > num_physical:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits; device has "
            f"{num_physical}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(num_physical))
    graph.add_edges_from(coupling_map)
    if not nx.is_connected(graph):
        raise TranspilerError("coupling graph is not connected")

    logical_to_physical = {q: q for q in range(circuit.num_qubits)}
    physical_to_logical = {q: q for q in range(circuit.num_qubits)}
    out = Circuit(num_physical)
    swaps = 0

    def apply_swap(phys_a: int, phys_b: int) -> None:
        nonlocal swaps
        out.swap(phys_a, phys_b)
        swaps += 1
        log_a = physical_to_logical.get(phys_a)
        log_b = physical_to_logical.get(phys_b)
        if log_a is not None:
            logical_to_physical[log_a] = phys_b
        if log_b is not None:
            logical_to_physical[log_b] = phys_a
        physical_to_logical[phys_a], physical_to_logical[phys_b] = (
            log_b,
            log_a,
        )

    for op in circuit.operations:
        if op.name == "barrier":
            out.barrier()
            continue
        if op.name == "measure":
            out.measure(logical_to_physical[op.qubits[0]], op.cbit)
            continue
        if len(op.qubits) == 1:
            out.append(
                Operation(op.gate, (logical_to_physical[op.qubits[0]],))
            )
            continue
        if len(op.qubits) > 2:
            raise TranspilerError(
                "lower 3+ qubit gates to the CX basis before routing"
            )
        phys_a = logical_to_physical[op.qubits[0]]
        phys_b = logical_to_physical[op.qubits[1]]
        path = nx.shortest_path(graph, phys_a, phys_b)
        # Walk the first operand down the path until adjacent.
        while len(path) > 2:
            apply_swap(path[0], path[1])
            path = path[1:]
        phys_a = logical_to_physical[op.qubits[0]]
        phys_b = logical_to_physical[op.qubits[1]]
        out.append(Operation(op.gate, (phys_a, phys_b)))
    return RoutingResult(
        circuit=out,
        final_layout=dict(logical_to_physical),
        swaps_inserted=swaps,
    )
